"""Micro-benchmarks: real compute throughput of the core kernels.

Unlike the experiment benches (one expensive round each), these use
pytest-benchmark properly — many rounds over hot loops — and guard the
performance envelope the search algorithms depend on: the analytical
models must stay in the sub-millisecond regime (they are called hundreds
of thousands of times per experiment), the CA simulator in the
tens-of-milliseconds regime, and a GP fit on a typical training-set size
well under a second.
"""

import numpy as np
import pytest

from repro.camodel.ascend_sim import simulate_layer
from repro.camodel.mapping import AscendMapping
from repro.costmodel.maestro import analyze_gemm
from repro.costmodel.timeloop import analyze_gemm_loopnest
from repro.hw import SpatialHWConfig, default_ascend_config
from repro.mapping import GemmMapping
from repro.optim.gp import GaussianProcess
from repro.optim.hypervolume import hypervolume
from repro.workloads.layers import GemmShape

HW = SpatialHWConfig(
    pe_x=12, pe_y=12, l1_bytes=6144, l2_kb=512, noc_bw=128, dataflow="ws"
)
SHAPE = GemmShape(m=256, n=3136, k=576)
MAPPING = GemmMapping(tile_m=64, tile_n=56, tile_k=64)


@pytest.mark.benchmark(group="kernels")
def test_speed_analytical_maestro(benchmark):
    result = benchmark(analyze_gemm, HW, MAPPING, SHAPE)
    assert result.feasible
    assert benchmark.stats["mean"] < 0.005  # sub-5ms per query


@pytest.mark.benchmark(group="kernels")
def test_speed_analytical_timeloop(benchmark):
    result = benchmark(analyze_gemm_loopnest, HW, MAPPING, SHAPE)
    assert result.feasible
    assert benchmark.stats["mean"] < 0.005


@pytest.mark.benchmark(group="kernels")
def test_speed_camodel(benchmark):
    hw = default_ascend_config()
    mapping = AscendMapping(tile_m=32, tile_n=128, tile_k=64)
    shape = GemmShape(m=64, n=4096, k=128)
    result = benchmark(simulate_layer, hw, mapping, shape)
    assert result.feasible
    # cycle-level simulation is orders of magnitude slower than analytical,
    # but must stay usable (< 100 ms per layer query)
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="kernels")
def test_speed_gp_fit(benchmark):
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, (60, 6))
    y = np.sin(4 * x[:, 0]) + x[:, 1] ** 2

    def fit():
        return GaussianProcess().fit(x, y, num_restarts=1)

    gp = benchmark(fit)
    assert gp.num_observations == 60
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.benchmark(group="kernels")
def test_speed_hypervolume_3d(benchmark):
    rng = np.random.default_rng(1)
    points = rng.uniform(0, 1, (40, 3))
    value = benchmark(hypervolume, points, [1.1, 1.1, 1.1])
    assert value > 0
    assert benchmark.stats["mean"] < 0.5
