"""Tests for the PR-9 CLI surface: bounded/live ``runs tail``, the hub
subcommands and the fleet dashboard."""

import json

import pytest

from repro.cli import _render_live_event, main
from repro.hub import HubServer
from repro.tracking import RunStore, read_events

WORKLOAD = "fsrcnn_120x320"


@pytest.fixture()
def tracked_run(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    code = main(
        [
            "run", "unico", WORKLOAD, "--preset", "smoke", "--seed", "2",
            "--track", "--runs-dir", runs_dir,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    run_id = out.split("tracked as run ")[1].splitlines()[0].strip()
    return runs_dir, run_id


@pytest.fixture()
def hub(tmp_path):
    server = HubServer(tmp_path / "hubruns", sse_poll_interval_s=0.02)
    server.start()
    try:
        yield server
    finally:
        server.stop()


class TestBoundedTail:
    def test_tail_prints_last_n_json_lines(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        assert main(
            ["runs", "tail", run_id, "-n", "4", "--runs-dir", runs_dir]
        ) == 0
        lines = [
            l for l in capsys.readouterr().out.splitlines() if l.strip()
        ]
        assert len(lines) == 4
        scan = read_events(RunStore(runs_dir).get(run_id).journal_path)
        assert [json.loads(l) for l in lines] == scan.events[-4:]

    def test_tail_warns_on_truncated_journal(self, tracked_run, capsys):
        runs_dir, run_id = tracked_run
        journal = RunStore(runs_dir).get(run_id).journal_path
        with open(journal, "ab") as handle:
            handle.write(b'{"seq": 999, "type": "evalu')
        assert main(
            ["runs", "tail", run_id, "-n", "2", "--runs-dir", runs_dir]
        ) == 0
        captured = capsys.readouterr()
        assert "truncated tail" in captured.err

    def test_follow_terminal_run_prints_backlog_and_exits(
        self, tracked_run, capsys
    ):
        runs_dir, run_id = tracked_run
        assert main(
            [
                "runs", "tail", run_id, "-n", "5", "--follow",
                "--runs-dir", runs_dir,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "run_end" in out
        assert "(run completed)" in out


class TestLiveEventRenderer:
    def test_iteration_end(self):
        line = _render_live_event({
            "seq": 9, "type": "iteration_end",
            "record": {"iteration": 3, "time_s": 3600.0, "uul": 0.25,
                       "num_selected": 4, "num_feasible": 6,
                       "pareto_size": 11, "best_scalar": 0.125},
        })
        assert "iteration_end" in line
        assert "iter   3" in line and "pareto=11" in line

    def test_msh_round(self):
        line = _render_live_event({
            "seq": 2, "type": "msh_round", "iteration": 0, "round_index": 1,
            "candidates": [1, 2, 3], "survivors": [1], "auc_promoted": [],
        })
        assert "3 candidates" in line and "1 survivors" in line

    def test_unknown_type_falls_back_to_compact_json(self):
        line = _render_live_event({"seq": 1, "type": "engine_sample",
                                   "key": "abc"})
        assert "engine_sample" in line and "abc" in line

    def test_run_end(self):
        line = _render_live_event({
            "seq": 40, "type": "run_end", "completed_iterations": 2,
            "total_hw_evaluated": 12, "pareto_size": 9,
            "total_time_s": 360.0,
        })
        assert "2 iterations" in line and "pareto=9" in line


class TestHubCommands:
    def test_serve_submit_runs_cancel_flow(self, hub, capsys):
        # submit through the CLI against the live hub
        assert main(
            [
                "hub", "submit", hub.url, "unico", WORKLOAD,
                "--preset", "smoke", "--seed", "1",
            ]
        ) == 0
        run_id = capsys.readouterr().out.strip()
        assert run_id

        assert main(["hub", "runs", hub.url]) == 0
        out = capsys.readouterr().out
        assert run_id in out

        # wait for completion, then follow over SSE via the CLI
        import time

        from repro.hub import HubClient

        with HubClient(hub.url) as client:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if client.get_run(run_id).get("status") in (
                    "completed", "failed", "cancelled"
                ):
                    break
                time.sleep(0.1)
        assert main(
            ["runs", "tail", run_id, "--follow", "--hub", hub.url]
        ) == 0
        out = capsys.readouterr().out
        assert "run_start" in out and "run_end" in out

    def test_cancel_unknown_run_raises(self, hub):
        from repro.errors import TrackingError

        with pytest.raises(TrackingError):
            main(["hub", "cancel", hub.url, "no-such-run"])

    def test_submit_bad_spec_raises(self, hub):
        from repro.errors import TrackingError

        with pytest.raises(TrackingError, match="400"):
            main(["hub", "submit", hub.url, "unico", "not_a_network"])


class TestFleetDashboard:
    def test_dashboard_without_sources_errors(self, capsys):
        assert main(["fleet", "status", "--watch"]) == 2
        assert "needs replica URLs or --hub" in capsys.readouterr().err

    def test_one_shot_dashboard_via_hub(self, tiny_network, tmp_path,
                                        capsys):
        from repro.costmodel import MaestroEngine
        from repro.costmodel.service import PPAServiceServer

        servers = [
            PPAServiceServer(MaestroEngine(tiny_network)) for _ in range(2)
        ]
        for server in servers:
            server.start()
        try:
            urls = [server.url for server in servers]
            hub = HubServer(tmp_path / "runs", replica_urls=urls)
            hub.start()
            try:
                assert main(["fleet", "status", "--hub", hub.url]) == 0
            finally:
                hub.stop()
            out = capsys.readouterr().out
            assert "2/2 replicas up" in out
            for url in urls:
                assert url.split("//")[1] in out
        finally:
            for server in servers:
                server.stop()

    def test_one_shot_dashboard_exits_nonzero_on_down_replica(
        self, tiny_network, capsys
    ):
        from repro.costmodel import MaestroEngine
        from repro.costmodel.service import PPAServiceServer

        server = PPAServiceServer(MaestroEngine(tiny_network))
        server.start()
        try:
            # without --watch/--hub the original per-URL health check
            # still runs, and a down replica still fails the exit code
            assert main(
                ["fleet", "status", server.url, "http://127.0.0.1:9"]
            ) == 1
        finally:
            server.stop()
