"""Concrete network definitions, grouped by family."""
