"""Tests for layer specs and GEMM lowering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.layers import (
    Conv2D,
    DepthwiseConv2D,
    Gemm,
    GemmShape,
    conv_out_dim,
    pointwise_conv,
)


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_element_counts(self):
        shape = GemmShape(2, 3, 4)
        assert shape.input_a_elems == 8
        assert shape.input_b_elems == 12
        assert shape.output_elems == 6

    def test_rejects_zero_dim(self):
        with pytest.raises(WorkloadError):
            GemmShape(0, 1, 1)

    def test_rejects_bad_penalty(self):
        with pytest.raises(WorkloadError):
            GemmShape(1, 1, 1, reuse_penalty=0.0)
        with pytest.raises(WorkloadError):
            GemmShape(1, 1, 1, reuse_penalty=1.5)

    def test_scaled_keeps_m_k(self):
        shape = GemmShape(4, 100, 8).scaled(0.5)
        assert (shape.m, shape.k) == (4, 8)
        assert shape.n == 50


class TestConvOutDim:
    @pytest.mark.parametrize(
        "in_dim,kernel,stride,padding,expected",
        [
            (224, 3, 1, "same", 224),
            (224, 3, 2, "same", 112),
            (224, 7, 2, "same", 112),
            (224, 16, 16, "valid", 14),
            (5, 3, 1, "valid", 3),
        ],
    )
    def test_values(self, in_dim, kernel, stride, padding, expected):
        assert conv_out_dim(in_dim, kernel, stride, padding) == expected

    def test_unknown_padding(self):
        with pytest.raises(WorkloadError):
            conv_out_dim(10, 3, 1, "reflect")

    def test_valid_too_small(self):
        with pytest.raises(WorkloadError):
            conv_out_dim(2, 3, 1, "valid")


class TestConv2D:
    def test_gemm_lowering_im2col(self):
        conv = Conv2D(
            name="c",
            batch=2,
            in_channels=3,
            out_channels=64,
            in_h=32,
            in_w=32,
            kernel=3,
        )
        gemm = conv.to_gemm()
        assert gemm.m == 64
        assert gemm.n == 2 * 32 * 32
        assert gemm.k == 3 * 3 * 3

    def test_strided_output(self):
        conv = Conv2D(
            name="c", in_channels=3, out_channels=8, in_h=32, in_w=32, kernel=3, stride=2
        )
        assert conv.out_h == 16 and conv.out_w == 16

    def test_macs_formula(self):
        conv = Conv2D(
            name="c", in_channels=4, out_channels=8, in_h=10, in_w=10, kernel=3
        )
        assert conv.macs == 8 * 10 * 10 * 4 * 9

    def test_count_multiplies_total(self):
        conv = Conv2D(
            name="c", count=3, in_channels=4, out_channels=8, in_h=10, in_w=10, kernel=3
        )
        assert conv.total_macs == 3 * conv.macs

    def test_bad_count(self):
        with pytest.raises(WorkloadError):
            Conv2D(name="c", count=0, in_channels=1, out_channels=1, in_h=4, in_w=4)


class TestDepthwiseConv2D:
    def test_gemm_has_reuse_penalty(self):
        dw = DepthwiseConv2D(name="d", channels=32, in_h=16, in_w=16)
        gemm = dw.to_gemm()
        assert gemm.reuse_penalty < 1.0
        assert gemm.m == 32
        assert gemm.k == 9

    def test_macs_much_smaller_than_dense(self):
        dw = DepthwiseConv2D(name="d", channels=32, in_h=16, in_w=16)
        dense = Conv2D(
            name="c", in_channels=32, out_channels=32, in_h=16, in_w=16, kernel=3
        )
        assert dw.macs * 32 == dense.macs


class TestGemm:
    def test_identity_lowering(self):
        gemm = Gemm(name="g", m=5, n=6, k=7)
        shape = gemm.to_gemm()
        assert (shape.m, shape.n, shape.k) == (5, 6, 7)

    def test_with_count(self):
        g2 = Gemm(name="g", m=5, n=6, k=7).with_count(4)
        assert g2.count == 4
        assert g2.name == "g"


class TestPointwiseConv:
    def test_is_1x1(self):
        pw = pointwise_conv("p", 16, 32, 8, 8)
        assert pw.kernel == 1
        gemm = pw.to_gemm()
        assert gemm.k == 16


@given(
    st.integers(1, 64),
    st.integers(1, 64),
    st.integers(4, 64),
    st.integers(1, 5),
    st.integers(1, 2),
)
@settings(max_examples=50)
def test_conv_gemm_macs_match_loop_nest(cin, cout, hw_dim, kernel, stride):
    """im2col lowering preserves the 7D loop's MAC count."""
    conv = Conv2D(
        name="c",
        in_channels=cin,
        out_channels=cout,
        in_h=hw_dim,
        in_w=hw_dim,
        kernel=kernel,
        stride=stride,
    )
    loop_macs = conv.out_h * conv.out_w * cout * cin * kernel * kernel
    assert conv.to_gemm().macs == loop_macs
