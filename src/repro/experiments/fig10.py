"""Figure 10: ablation of UNICO's two algorithmic features.

Four variants run on each workload of {UNET, SRGAN, BERT, VIT}:

* ``hasco``        — ChampionUpdate, no successive halving,
* ``sh_champion``  — vanilla SH + ChampionUpdate,
* ``msh_champion`` — modified SH + ChampionUpdate,
* ``unico``        — MSH + HighFidelityUpdate (+ robustness).

Reported: final hypervolume per variant against a shared reference, plus
the relative improvements the paper quotes (MSH+Champion ~13.7% over HASCO,
~16% over SH+Champion; full UNICO ~28% over HASCO; SH+Champion *worse*
than HASCO because plain SH prunes promising configurations too early).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from repro.experiments.harness import (
    combined_reference,
    final_hypervolume,
    run_method,
)
from repro.experiments.presets import Preset
from repro.utils.records import RunRecord
from repro.workloads import FIG10_NETWORKS

FIG10_METHODS = ("hasco", "sh_champion", "msh_champion", "unico")


def run_fig10_network(
    network: str,
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    scenario: str = "edge",
    methods: Sequence[str] = FIG10_METHODS,
) -> RunRecord:
    """One workload's ablation panel."""
    results = {
        method: run_method(method, scenario, network, preset, seed=seed)
        for method in methods
    }
    reference = combined_reference(list(results.values()))
    record = RunRecord(f"fig10-{network}")
    record.put("network", network)
    hvs: Dict[str, float] = {}
    for method, result in results.items():
        hv = final_hypervolume(result, reference)
        hvs[method] = hv
        child = record.child(method)
        child.put("final_hv", hv)
        child.put("total_time_h", result.total_time_h)
    base = hvs.get("hasco", 0.0)
    for method, hv in hvs.items():
        if base > 0:
            record.child(method).put(
                "improvement_over_hasco_pct", 100.0 * (hv - base) / base
            )
    return record


def run_fig10(
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    networks: Sequence[str] = FIG10_NETWORKS,
    scenario: str = "edge",
) -> RunRecord:
    """The full ablation across workloads with mean improvements."""
    record = RunRecord("fig10")
    per_method: Dict[str, list] = {method: [] for method in FIG10_METHODS}
    for network in networks:
        panel = run_fig10_network(network, preset, seed=seed, scenario=scenario)
        record.children[network] = panel
        for method in FIG10_METHODS:
            value = panel.children[method].get("improvement_over_hasco_pct")
            if value is not None:
                per_method[method].append(value)
    for method, values in per_method.items():
        if values:
            record.put(
                f"mean_improvement_{method}_pct", float(np.mean(values))
            )
    return record
