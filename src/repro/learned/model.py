"""Pure-NumPy learned cost model: a small MLP/ridge ensemble.

The model predicts ``(log latency, log energy)`` of a candidate mapping
from its :mod:`repro.learned.features` vector, plus a logistic
feasibility probability.  Uncertainty is the ensemble's disagreement
(std across members) scaled by a calibration factor fit on held-out
data, so "one calibrated std" approximates the typical held-out error —
the screening engine uses it to escalate candidates the model is unsure
about.

Everything is deterministic under a fixed seed and serializes to a
single JSON file (no pickle), making model artifacts diffable and safe
to load from untrusted run directories.  Training is full-batch Adam on
standardized inputs/targets; the sample counts this repo produces (1e3 -
1e5 journaled evaluations) fit comfortably in memory.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, EvaluationError
from repro.learned.features import FEATURE_VERSION, feature_dim

#: objective name -> weight over the (log latency, log energy) outputs;
#: "edp" is their sum because the outputs live in log space.
OBJECTIVE_WEIGHTS: Dict[str, Tuple[float, float]] = {
    "latency": (1.0, 0.0),
    "energy": (0.0, 1.0),
    "edp": (1.0, 1.0),
}

_N_OUTPUTS = 2
_STD_FLOOR = 1e-9


def _standardize_fit(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mean = values.mean(axis=0)
    scale = values.std(axis=0)
    scale = np.where(scale < 1e-8, 1.0, scale)
    return mean, scale


def _adam_steps(shapes: Sequence[Tuple[int, ...]]):
    """Stateful Adam update closure over a list of parameter arrays."""
    moments = [
        (np.zeros(shape), np.zeros(shape)) for shape in shapes
    ]
    state = {"t": 0}

    def step(params: List[np.ndarray], grads: List[np.ndarray], lr: float) -> None:
        state["t"] += 1
        t = state["t"]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for index, (param, grad) in enumerate(zip(params, grads)):
            m, v = moments[index]
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / (1.0 - beta1 ** t)
            v_hat = v / (1.0 - beta2 ** t)
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    return step


class _MLPMember:
    """One tanh-hidden-layer regressor; trained with full-batch Adam."""

    kind = "mlp"

    def __init__(self, w1, b1, w2, b2):
        self.w1, self.b1, self.w2, self.b2 = w1, b1, w2, b2

    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        hidden: int,
        epochs: int,
        lr: float,
        seed: int,
    ) -> "_MLPMember":
        rng = np.random.default_rng(seed)
        dim = x.shape[1]
        w1 = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(dim, hidden))
        b1 = np.zeros(hidden)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(hidden), size=(hidden, _N_OUTPUTS))
        b2 = np.zeros(_N_OUTPUTS)
        params = [w1, b1, w2, b2]
        step = _adam_steps([p.shape for p in params])
        count = x.shape[0]
        for _ in range(epochs):
            hidden_act = np.tanh(x @ w1 + b1)
            pred = hidden_act @ w2 + b2
            err = (pred - y) / count
            grad_w2 = hidden_act.T @ err
            grad_b2 = err.sum(axis=0)
            back = (err @ w2.T) * (1.0 - hidden_act * hidden_act)
            grad_w1 = x.T @ back
            grad_b1 = back.sum(axis=0)
            step(params, [grad_w1, grad_b1, grad_w2, grad_b2], lr)
        return cls(w1, b1, w2, b2)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x @ self.w1 + self.b1) @ self.w2 + self.b2

    def grad_input(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """d(weights . outputs)/dx for one standardized sample ``x`` (D,)."""
        hidden_act = np.tanh(x @ self.w1 + self.b1)
        out_vec = self.w2 @ weights
        return self.w1 @ ((1.0 - hidden_act * hidden_act) * out_vec)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "w1": self.w1.tolist(),
            "b1": self.b1.tolist(),
            "w2": self.w2.tolist(),
            "b2": self.b2.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "_MLPMember":
        return cls(
            np.asarray(data["w1"], dtype=np.float64),
            np.asarray(data["b1"], dtype=np.float64),
            np.asarray(data["w2"], dtype=np.float64),
            np.asarray(data["b2"], dtype=np.float64),
        )


class _RidgeMember:
    """Closed-form linear member; anchors the ensemble and its gradients."""

    kind = "ridge"

    def __init__(self, weights: np.ndarray, bias: np.ndarray):
        self.weights, self.bias = weights, bias

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray, lam: float = 1.0) -> "_RidgeMember":
        dim = x.shape[1]
        gram = x.T @ x + lam * np.eye(dim)
        weights = np.linalg.solve(gram, x.T @ y)
        bias = y.mean(axis=0) - x.mean(axis=0) @ weights
        return cls(weights, bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weights + self.bias

    def grad_input(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return self.weights @ weights

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "weights": self.weights.tolist(),
            "bias": self.bias.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "_RidgeMember":
        return cls(
            np.asarray(data["weights"], dtype=np.float64),
            np.asarray(data["bias"], dtype=np.float64),
        )


_MEMBER_KINDS = {"mlp": _MLPMember, "ridge": _RidgeMember}


class LearnedCostModel:
    """Ensemble cost model with calibrated uncertainty and a feasibility head."""

    def __init__(
        self,
        members: Sequence,
        x_mean: np.ndarray,
        x_scale: np.ndarray,
        y_mean: np.ndarray,
        y_scale: np.ndarray,
        feas_weights: np.ndarray,
        feas_bias: float,
        calibration: float = 1.0,
        meta: Optional[Dict] = None,
    ):
        self.members = list(members)
        self.x_mean, self.x_scale = x_mean, x_scale
        self.y_mean, self.y_scale = y_mean, y_scale
        self.feas_weights, self.feas_bias = feas_weights, feas_bias
        self.calibration = float(calibration)
        self.meta = dict(meta or {})
        self.meta.setdefault("feature_version", FEATURE_VERSION)

    # ------------------------------------------------------------------ train
    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y_latency: np.ndarray,
        y_energy: np.ndarray,
        feasible: np.ndarray,
        seed: int = 0,
        hidden: int = 32,
        ensemble: int = 4,
        epochs: int = 300,
        lr: float = 0.01,
        val_fraction: float = 0.2,
        max_rows: int = 16384,
        meta: Optional[Dict] = None,
    ) -> "LearnedCostModel":
        """Train on raw arrays; regression uses the feasible rows only."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != feature_dim():
            raise ConfigurationError(
                f"expected features of width {feature_dim()}, got {x.shape}"
            )
        feasible = np.asarray(feasible, dtype=bool)
        targets = np.stack(
            [np.asarray(y_latency, dtype=np.float64),
             np.asarray(y_energy, dtype=np.float64)],
            axis=1,
        )
        usable = feasible & np.isfinite(targets).all(axis=1) & (targets > 0).all(axis=1)
        if usable.sum() < 8:
            raise ConfigurationError(
                f"need >= 8 feasible samples to fit, got {int(usable.sum())}"
            )
        rng = np.random.default_rng(seed)
        x_mean, x_scale = _standardize_fit(x)
        xs_all = (x - x_mean) / x_scale

        reg_index = np.flatnonzero(usable)
        if reg_index.size > max_rows:
            reg_index = rng.choice(reg_index, size=max_rows, replace=False)
            reg_index.sort()
        perm = rng.permutation(reg_index.size)
        n_val = int(round(val_fraction * reg_index.size))
        n_val = min(max(n_val, 0), reg_index.size - 8)
        val_rows = reg_index[perm[:n_val]]
        train_rows = reg_index[perm[n_val:]]

        log_targets = np.log(targets[train_rows])
        y_mean, y_scale = _standardize_fit(log_targets)
        ys = (log_targets - y_mean) / y_scale
        xs = xs_all[train_rows]

        members: List = [_RidgeMember.fit(xs, ys)]
        for index in range(max(1, ensemble)):
            members.append(
                _MLPMember.fit(xs, ys, hidden, epochs, lr, seed=seed * 1000 + index)
            )

        # feasibility head: logistic regression over all rows
        feas_weights, feas_bias = _fit_logistic(xs_all, feasible.astype(np.float64))

        model = cls(
            members, x_mean, x_scale, y_mean, y_scale,
            feas_weights, feas_bias, calibration=1.0, meta=meta,
        )
        model.meta.update(
            n_train=int(train_rows.size),
            n_val=int(val_rows.size),
            n_total=int(x.shape[0]),
            n_feasible=int(usable.sum()),
            seed=int(seed),
            hidden=int(hidden),
            ensemble=int(ensemble),
            epochs=int(epochs),
        )
        if val_rows.size >= 8:
            mean, raw_std = model._predict_standardized(xs_all[val_rows])
            pred_log = mean * y_scale + y_mean
            errors = np.abs(pred_log - np.log(targets[val_rows]))
            scaled_std = np.maximum(raw_std * y_scale, 1e-8)
            ratio = errors / scaled_std
            model.calibration = float(np.clip(np.median(ratio), 1e-2, 1e3))
            model.meta["val_mae_log_latency"] = float(errors[:, 0].mean())
            model.meta["val_mae_log_energy"] = float(errors[:, 1].mean())
        return model

    # ---------------------------------------------------------------- predict
    def _check_width(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.x_mean.shape[0]:
            raise EvaluationError(
                f"feature width {x.shape[-1]} does not match model "
                f"({self.x_mean.shape[0]})"
            )
        return x

    def _predict_standardized(self, xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        stack = np.stack([member.predict(xs) for member in self.members])
        return stack.mean(axis=0), stack.std(axis=0)

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and calibrated std of (log latency, log energy), shape (B, 2)."""
        xs = (self._check_width(x) - self.x_mean) / self.x_scale
        mean, raw_std = self._predict_standardized(np.atleast_2d(xs))
        mean = mean * self.y_scale + self.y_mean
        std = np.maximum(raw_std * self.y_scale * self.calibration, _STD_FLOOR)
        return mean, std

    def predict_objective(
        self, x: np.ndarray, objective: str = "latency"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar log-space score (lower is better) and its std, shape (B,)."""
        weights = np.asarray(_objective_weights(objective))
        mean, std = self.predict(x)
        return mean @ weights, np.sqrt((std * std) @ (weights * weights))

    def feasible_proba(self, x: np.ndarray) -> np.ndarray:
        xs = (self._check_width(x) - self.x_mean) / self.x_scale
        logits = np.atleast_2d(xs) @ self.feas_weights + self.feas_bias
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))

    def grad_objective(
        self, x: np.ndarray, objective: str = "latency"
    ) -> Tuple[float, np.ndarray]:
        """Score and d(score)/d(features) for one raw feature vector (D,)."""
        weights = np.asarray(_objective_weights(objective)) * self.y_scale
        xs = (self._check_width(x) - self.x_mean) / self.x_scale
        grads = [member.grad_input(xs, weights) for member in self.members]
        grad_std = np.mean(grads, axis=0) / self.x_scale
        score, _ = self.predict_objective(x.reshape(1, -1), objective)
        return float(score[0]), grad_std

    # ------------------------------------------------------------------- io
    def to_dict(self) -> Dict:
        return {
            "format": "repro.learned.model",
            "format_version": 1,
            "feature_version": int(self.meta.get("feature_version", FEATURE_VERSION)),
            "members": [member.to_dict() for member in self.members],
            "x_mean": self.x_mean.tolist(),
            "x_scale": self.x_scale.tolist(),
            "y_mean": self.y_mean.tolist(),
            "y_scale": self.y_scale.tolist(),
            "feas_weights": self.feas_weights.tolist(),
            "feas_bias": float(self.feas_bias),
            "calibration": self.calibration,
            "meta": self.meta,
        }

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def from_dict(cls, data: Dict) -> "LearnedCostModel":
        if data.get("format") != "repro.learned.model":
            raise ConfigurationError("not a learned cost-model artifact")
        if data.get("feature_version") != FEATURE_VERSION:
            raise ConfigurationError(
                f"model was trained against feature version "
                f"{data.get('feature_version')}, this build uses {FEATURE_VERSION}"
            )
        members = [
            _MEMBER_KINDS[member["kind"]].from_dict(member)
            for member in data["members"]
        ]
        return cls(
            members,
            np.asarray(data["x_mean"], dtype=np.float64),
            np.asarray(data["x_scale"], dtype=np.float64),
            np.asarray(data["y_mean"], dtype=np.float64),
            np.asarray(data["y_scale"], dtype=np.float64),
            np.asarray(data["feas_weights"], dtype=np.float64),
            float(data["feas_bias"]),
            calibration=float(data.get("calibration", 1.0)),
            meta=data.get("meta"),
        )

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "LearnedCostModel":
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(f"cannot load model from {path}: {error}")
        return cls.from_dict(data)


def _objective_weights(objective: str) -> Tuple[float, float]:
    try:
        return OBJECTIVE_WEIGHTS[objective]
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {objective!r}; use one of "
            f"{sorted(OBJECTIVE_WEIGHTS)}"
        )


def _fit_logistic(
    xs: np.ndarray, labels: np.ndarray, epochs: int = 200, lr: float = 0.05,
    l2: float = 1e-3,
) -> Tuple[np.ndarray, float]:
    """L2-regularized logistic regression via full-batch Adam."""
    dim = xs.shape[1]
    weights = np.zeros(dim)
    bias = np.zeros(1)
    step = _adam_steps([(dim,), (1,)])
    count = xs.shape[0]
    for _ in range(epochs):
        logits = xs @ weights + bias[0]
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
        err = (probs - labels) / count
        step(
            [weights, bias],
            [xs.T @ err + l2 * weights, np.asarray([err.sum()])],
            lr,
        )
    return weights, float(bias[0])


__all__ = ["LearnedCostModel", "OBJECTIVE_WEIGHTS"]
