"""Crash-safe resume: rebuild an optimizer from manifest + checkpoint.

``repro runs resume <run-id>`` lands here.  The contract:

1. the run's **manifest** names the cell (method, scenario, workload,
   preset, seed, time budget) — enough to rebuild the exact optimizer via
   :func:`repro.experiments.harness.build_optimizer`;
2. the latest **checkpoint** restores Algorithm 1's inter-iteration state
   (training set, normalizer, UUL selector, Pareto archive, RNG, clock);
3. the **journal** is the ground truth of what already happened — before
   continuing, :func:`verify_run` checks the sequence numbering and
   :func:`resume_run` cross-checks that the journal's replayed
   iteration-record sequence agrees with the checkpoint, refusing to
   continue from inconsistent artifacts.

Because checkpoints are written *after* their ``iteration_end`` journal
event, a kill between the two leaves the journal one iteration ahead of
the checkpoint; the resumed run simply re-executes that iteration and the
replay keeps the latest record per iteration index, so the final replayed
sequence is identical to an uninterrupted run's.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Union

from repro.errors import TrackingError
from repro.tracking.journal import JournalScan, read_events, verify_sequence
from repro.tracking.store import RunHandle, RunStore
from repro.tracking.tracker import JournalTracker

#: manifest keys :func:`resume_run` needs to rebuild the optimizer
REQUIRED_MANIFEST_KEYS = ("method", "scenario", "workload", "preset", "seed")


def replay_iteration_records(
    source: Union[str, pathlib.Path, JournalScan]
) -> List:
    """Reconstruct the :class:`IterationRecord` sequence from a journal.

    A re-executed iteration (kill between ``iteration_end`` and its
    checkpoint) appears twice; the latest record per iteration wins.
    Returns records ordered by iteration index.
    """
    from repro.core.unico import IterationRecord

    scan = source if isinstance(source, JournalScan) else read_events(source)
    by_iteration: Dict[int, IterationRecord] = {}
    for event in scan.of_type("iteration_end"):
        payload = event.get("record") or {}
        try:
            record = IterationRecord(
                iteration=int(payload["iteration"]),
                time_s=float(payload["time_s"]),
                uul=float(payload["uul"]),
                num_selected=int(payload["num_selected"]),
                num_feasible=int(payload["num_feasible"]),
                pareto_size=int(payload["pareto_size"]),
                best_scalar=float(payload["best_scalar"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TrackingError(
                f"malformed iteration_end event (seq {event.get('seq')}): {error}"
            )
        by_iteration[record.iteration] = record
    return [by_iteration[i] for i in sorted(by_iteration)]


def _manifest_preset(manifest: Dict):
    """The preset to rebuild with: full recorded parameters if available.

    ``run_method`` persists ``preset_params`` alongside the name, so runs
    tracked with a custom (unregistered) :class:`Preset` object stay
    resumable; older manifests fall back to name lookup.
    """
    params = manifest.get("preset_params")
    if isinstance(params, dict):
        import dataclasses

        from repro.experiments.presets import Preset

        field_names = [f.name for f in dataclasses.fields(Preset)]
        if all(name in params for name in field_names):
            return Preset(**{name: params[name] for name in field_names})
    return manifest["preset"]


def verify_run(run: RunHandle) -> Dict:
    """Structural consistency check of one run directory.

    Returns a summary dict; raises :class:`TrackingError` on broken
    sequence numbering or missing artifacts.  A truncated journal tail
    (the signature of a kill mid-write) is reported, not rejected.
    """
    manifest = run.read_manifest()
    if not run.journal_path.exists():
        raise TrackingError(f"run {run.run_id} has no journal")
    scan = read_events(run.journal_path)
    verify_sequence(scan)
    records = replay_iteration_records(scan)
    expected = list(range(len(records)))
    if [r.iteration for r in records] != expected:
        raise TrackingError(
            f"run {run.run_id}: journal iteration records are not contiguous "
            f"({[r.iteration for r in records]})"
        )
    latest = run.latest_checkpoint()
    return {
        "run_id": run.run_id,
        "status": manifest.get("status", "created"),
        "num_events": len(scan.events),
        "truncated_tail": scan.truncated_tail,
        "journal_iterations": len(records),
        "num_checkpoints": len(run.checkpoints()),
        "latest_checkpoint": latest.name if latest else None,
    }


def _restore_screen(optimizer, run: RunHandle, manifest: Dict) -> None:
    """Re-wrap the optimizer's engine if the run was screened.

    A screened run's manifest carries the model path; without re-wrapping,
    the resumed half would consume analytical evaluations the original run
    would have screened away, silently changing the cost accounting.  A
    recorded model that no longer exists on disk is a hard error —
    resuming unscreened would not be the same experiment.
    """
    screen = manifest.get("screen")
    if not screen:
        return
    path = screen.get("model_path")
    if not path:
        raise TrackingError(
            f"run {run.run_id} was screened by an in-memory model (no "
            "model_path recorded); it cannot be resumed faithfully"
        )
    if not pathlib.Path(path).exists():
        raise TrackingError(
            f"run {run.run_id} was screened by {path}, which no longer "
            "exists; restore the model file before resuming"
        )
    from repro.learned import LearnedCostModel, ScreeningPPAEngine

    optimizer.engine = ScreeningPPAEngine(
        optimizer.engine,
        model=LearnedCostModel.load(path),
        topk=screen.get("topk"),
    )


def resume_run(
    run: Union[RunHandle, str, pathlib.Path],
    store: Optional[RunStore] = None,
    max_iterations: Optional[int] = None,
    checkpoint_every: int = 1,
    fsync: bool = False,
):
    """Continue an interrupted tracked run; returns its final result.

    ``run`` is a :class:`RunHandle`, a run id (requires ``store``), or a
    run directory path.  ``max_iterations`` overrides the manifest's
    recorded budget (e.g. to extend a completed run).
    """
    from repro.experiments.harness import build_optimizer
    from repro.core.checkpoint import load_checkpoint

    if isinstance(run, (str, pathlib.Path)):
        if store is not None:
            run = store.get(str(run))
        else:
            run = RunHandle(run)
    manifest = run.read_manifest()
    missing = [k for k in REQUIRED_MANIFEST_KEYS if k not in manifest]
    if missing:
        raise TrackingError(
            f"run {run.run_id} manifest lacks {missing}; cannot rebuild "
            "the optimizer for resume"
        )
    health = verify_run(run)
    checkpoint = run.latest_checkpoint()
    if checkpoint is None:
        raise TrackingError(
            f"run {run.run_id} has no checkpoint to resume from "
            f"(status {health['status']!r}); re-run it from scratch instead"
        )
    optimizer = build_optimizer(
        manifest["method"],
        manifest["scenario"],
        manifest["workload"],
        _manifest_preset(manifest),
        seed=int(manifest["seed"]),
        time_budget_s=manifest.get("time_budget_s"),
        eval_batch_size=int(manifest.get("eval_batch_size", 1)),
        tool=manifest.get("tool"),
    )
    _restore_screen(optimizer, run, manifest)
    load_checkpoint(optimizer, checkpoint)
    if max_iterations is not None:
        optimizer.config.max_iterations = max_iterations
    completed = int(getattr(optimizer, "completed_iterations", 0))
    if health["journal_iterations"] < completed:
        raise TrackingError(
            f"run {run.run_id}: checkpoint claims {completed} completed "
            f"iterations but the journal only records "
            f"{health['journal_iterations']}; artifacts disagree"
        )
    replayed = replay_iteration_records(run.journal_path)
    if replayed[:completed] != list(optimizer.iteration_records):
        raise TrackingError(
            f"run {run.run_id}: journal replay disagrees with the "
            f"checkpoint's iteration records; refusing to resume"
        )
    tracker = JournalTracker(
        run, checkpoint_every=checkpoint_every, fsync=fsync, resume=True
    )
    optimizer.tracker = tracker
    if manifest.get("record_samples"):
        from repro.tracking.tracker import JournalSampleSink

        optimizer.engine.sample_sink = JournalSampleSink(tracker.journal)
    try:
        result = optimizer.optimize()
    except BaseException as error:
        tracker.on_run_failed(optimizer, error)
        raise
    result.method = manifest["method"]
    result.extras["method_requested"] = manifest["method"]
    result.extras["scenario"] = manifest["scenario"]
    result.extras["run_id"] = run.run_id
    result.extras["resumed_from_iteration"] = completed
    return result


__all__ = [
    "REQUIRED_MANIFEST_KEYS",
    "replay_iteration_records",
    "resume_run",
    "verify_run",
]
