"""Ablation: MOBO batch size N under a fixed simulated-time budget.

UNICO's batch sampling exists to exploit parallel workers: with 8 workers,
larger batches amortize the round makespan.  This bench runs UNICO with
N in {4, 10, 20} under the same simulated time budget and reports achieved
hypervolume — batching should not hurt, and typically helps per unit time.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.experiments import combined_reference, final_hypervolume
from repro.hw import edge_design_space, power_cap_for
from repro.utils.records import RunRecord
from repro.workloads import get_network

BATCH_SIZES = (4, 10, 20)
TIME_BUDGET_S = 3.0 * 3600
NETWORK = "resnet"


def _run_sweep() -> RunRecord:
    network = get_network(NETWORK)
    space = edge_design_space()
    record = RunRecord("ablation-batch")
    results = {}
    for batch in BATCH_SIZES:
        engine = MaestroEngine(network)
        unico = Unico(
            space,
            network,
            engine,
            UnicoConfig(
                batch_size=batch,
                max_iterations=100,  # bounded by the time budget
                max_budget=80,
                workers=8,
                time_budget_s=TIME_BUDGET_S,
            ),
            power_cap_w=power_cap_for("edge"),
            seed=0,
        )
        results[batch] = unico.optimize()
    reference = combined_reference(list(results.values()))
    for batch, result in results.items():
        record.child(f"n_{batch}").update(
            {
                "hv": final_hypervolume(result, reference),
                "hw_evaluated": result.total_hw_evaluated,
                "time_h": result.total_time_h,
            }
        )
    return record


@pytest.mark.benchmark(group="ablation")
def test_ablation_batch_size(benchmark, results_dir):
    record = run_once(benchmark, _run_sweep)
    save_record(results_dir, "ablation_batch", record)
    print(f"\n=== Ablation: batch size N on {NETWORK}, "
          f"{TIME_BUDGET_S / 3600:.0f} simulated hours, 8 workers ===")
    for batch in BATCH_SIZES:
        child = record.children[f"n_{batch}"]
        print(
            f"N = {batch:<3d} hv {child.get('hv'):.4f}  "
            f"hw evaluated {child.get('hw_evaluated'):>3d}  "
            f"used {child.get('time_h'):.2f} h"
        )
    hv_small = record.children[f"n_{BATCH_SIZES[0]}"].get("hv")
    hv_paperish = record.children[f"n_{BATCH_SIZES[1]}"].get("hv")
    # batching for parallel workers should not hurt per-time quality (10%)
    assert hv_paperish >= 0.9 * hv_small
    # larger batches evaluate more hardware in the same simulated time
    evals = [record.children[f"n_{b}"].get("hw_evaluated") for b in BATCH_SIZES]
    assert evals[-1] >= evals[0]
