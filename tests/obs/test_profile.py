"""Tests for profile aggregation: self-time identity, eval bubbling, rendering."""

import pytest

from repro.obs.profile import (
    build_profile,
    render_profile,
    spans_from_journal,
)
from repro.obs.trace import JournalSpanSink, Tracer
from repro.tracking.journal import EventJournal
from repro.utils.clock import SimulatedClock


def _span(name, span_id, parent_id, start, dur, sim=0.0, attrs=None):
    """Hand-built finished-span dict for synthetic trees."""
    return {
        "name": name,
        "trace_id": "t",
        "span_id": span_id,
        "parent_id": parent_id,
        "wall_start_s": start,
        "wall_dur_s": dur,
        "sim_start_s": 0.0,
        "sim_dur_s": sim,
        "thread": 1,
        "attrs": attrs or {},
    }


def synthetic_tree():
    """root(10s) -> search(6s) -> two engine_eval(2s each), plus fit(3s)."""
    return [
        _span("engine_eval", "e1", "s1", 1.0, 2.0, attrs={"layer": "conv"}),
        _span("engine_eval", "e2", "s1", 3.0, 2.0, attrs={"layer": "fc"}),
        _span("mapping_search", "s1", "r1", 0.5, 6.0, sim=60.0),
        _span("gp_fit", "g1", "r1", 6.5, 3.0),
        _span("run", "r1", None, 0.0, 10.0, sim=60.0),
    ]


class TestBuildProfile:
    def test_self_time_sums_to_root_duration(self):
        profile = build_profile(synthetic_tree())
        assert profile.total_wall_s == pytest.approx(10.0)
        assert profile.accounted_wall_s == pytest.approx(10.0)

    def test_self_time_per_phase(self):
        profile = build_profile(synthetic_tree())
        by_name = {p.name: p for p in profile.phases}
        assert by_name["run"].wall_self_s == pytest.approx(10.0 - 6.0 - 3.0)
        assert by_name["mapping_search"].wall_self_s == pytest.approx(6.0 - 4.0)
        assert by_name["engine_eval"].wall_self_s == pytest.approx(4.0)
        assert by_name["gp_fit"].wall_self_s == pytest.approx(3.0)

    def test_evals_bubble_to_every_ancestor(self):
        profile = build_profile(synthetic_tree())
        by_name = {p.name: p for p in profile.phases}
        assert by_name["engine_eval"].evals == 2
        assert by_name["mapping_search"].evals == 2
        assert by_name["run"].evals == 2
        assert by_name["gp_fit"].evals == 0

    def test_batch_span_counts_batch_evals(self):
        spans = [
            _span("engine_eval_batch", "b1", None, 0.0, 1.0,
                  attrs={"batch": 16}),
        ]
        profile = build_profile(spans)
        assert profile.phases[0].evals == 16
        assert profile.phases[0].evals_per_s == pytest.approx(16.0)

    def test_sim_totals_from_roots(self):
        profile = build_profile(synthetic_tree())
        assert profile.total_sim_s == pytest.approx(60.0)

    def test_orphan_spans_count_as_roots(self):
        spans = [_span("stray", "x1", "missing-parent", 0.0, 2.0)]
        profile = build_profile(spans)
        assert profile.total_wall_s == pytest.approx(2.0)
        assert profile.accounted_wall_s == pytest.approx(2.0)

    def test_top_n_slowest(self):
        profile = build_profile(synthetic_tree(), top_n=2)
        assert [s["span_id"] for s in profile.slowest] == ["r1", "s1"]

    def test_empty_spans(self):
        profile = build_profile([])
        assert profile.num_spans == 0
        assert profile.total_wall_s == 0.0
        assert profile.phases == []


class TestLiveTracerIdentity:
    def test_self_time_identity_holds_for_real_traces(self):
        """Sum of self times == root wall time, to float precision."""
        from repro.obs.trace import InMemorySink

        sink = InMemorySink()
        clock = SimulatedClock()
        tracer = Tracer(clock=clock, sinks=[sink])
        with tracer.span("run"):
            for i in range(3):
                with tracer.span("iteration", iteration=i):
                    with tracer.span("mapping_search"):
                        clock.advance(10.0)
                    with tracer.span("gp_fit"):
                        pass
        profile = build_profile(sink.spans)
        assert profile.accounted_wall_s == pytest.approx(
            profile.total_wall_s, rel=1e-9
        )
        assert profile.total_sim_s == pytest.approx(30.0)


class TestJournalLoading:
    def test_spans_from_journal_filters_span_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"run_id": "r1"})
            tracer = Tracer(sinks=[JournalSpanSink(journal)])
            with tracer.span("iteration", iteration=0):
                pass
            journal.append("run_end", {"status": "completed"})
        spans = spans_from_journal(path)
        assert [s["name"] for s in spans] == ["iteration"]
        profile = build_profile(spans)
        assert profile.num_spans == 1


class TestRender:
    def test_render_contains_phases_total_and_slowest(self):
        text = render_profile(build_profile(synthetic_tree()))
        assert "phase" in text and "evals/s" in text
        assert "mapping_search" in text
        assert "total" in text
        assert "slowest spans:" in text
        assert "layer=conv" in text

    def test_render_empty_profile(self):
        text = render_profile(build_profile([]))
        assert "total" in text


class TestZeroEngineEvalSpans:
    """Satellite: a run that traced phases but performed no PPA
    evaluations must render clean output (no NaN evals/s) and report
    ``total_evals == 0`` so the CLI can say so explicitly."""

    def spans(self):
        return [
            _span("gp_fit", "g1", "r1", 0.5, 3.0),
            _span("run", "r1", None, 0.0, 4.0),
        ]

    def test_total_evals_zero(self):
        profile = build_profile(self.spans())
        assert profile.total_evals == 0

    def test_total_evals_counts_engine_spans(self):
        profile = build_profile(synthetic_tree())
        assert profile.total_evals == 2

    def test_render_has_no_nan_and_dashes_rates(self):
        text = render_profile(build_profile(self.spans()))
        assert "nan" not in text.lower()
        assert "-" in text  # evals/s column shows a dash, not 0.0/NaN

    def test_zero_duration_profile_renders(self):
        # degenerate: spans exist but carry zero wall time
        profile = build_profile([_span("run", "r1", None, 0.0, 0.0)])
        text = render_profile(profile)
        assert "nan" not in text.lower()

    def test_cli_reports_no_spans_instead_of_rate(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tracking import RunStore

        handle = RunStore(tmp_path).create_run(
            manifest={"status": "completed", "method": "unico"}
        )
        with EventJournal(handle.journal_path) as journal:
            journal.append("span", {
                "name": "gp_fit", "trace_id": "t", "span_id": "g1",
                "parent_id": None, "wall_start_s": 0.0, "wall_dur_s": 1.0,
                "sim_start_s": 0.0, "sim_dur_s": 0.0, "thread": 1,
                "attrs": {},
            })
        code = main([
            "runs", "profile", handle.run_id, "--runs-dir", str(tmp_path)
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no engine-eval spans recorded" in out
        assert "nan" not in out.lower()
