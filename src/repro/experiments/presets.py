"""Budget presets for the experiment harness.

The paper's runs burn tens of (real) hours per cell; the harness therefore
supports three scales.  Absolute simulated costs still follow the paper's
accounting (every PPA query charges modeled wall-clock) at every scale —
smaller presets just evaluate fewer candidates:

* ``smoke`` — seconds of real time; CI/unit tests.
* ``bench`` — a couple of minutes per experiment; the default for the
  ``benchmarks/`` suite that regenerates each table/figure.
* ``paper`` — the paper's parameters (N = 30, b_max = 300, MaxIter = 10 on
  the open platform; N = 8, MaxIter = 30, b_max = 200 on Ascend-like).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Preset:
    """One budget scale for all methods (open-source platform)."""

    name: str
    # UNICO (and its ablation variants)
    unico_batch: int
    unico_iterations: int
    unico_budget: int
    # HASCO-like
    hasco_candidates: int
    hasco_budget: int
    # NSGA-II
    nsga_population: int
    nsga_generations: int
    nsga_budget: int
    # MOBOHB
    mobohb_budget: int
    mobohb_loops: int
    # Ascend-like deployment (Fig. 11)
    ascend_batch: int
    ascend_iterations: int
    ascend_budget: int
    # robustness-validation SW search budget (Figs. 8-9)
    validation_budget: int


_PRESETS = {
    "smoke": Preset(
        name="smoke",
        unico_batch=6,
        unico_iterations=2,
        unico_budget=30,
        hasco_candidates=6,
        hasco_budget=30,
        nsga_population=6,
        nsga_generations=2,
        nsga_budget=30,
        mobohb_budget=27,
        mobohb_loops=1,
        ascend_batch=4,
        ascend_iterations=2,
        ascend_budget=20,
        validation_budget=30,
    ),
    "bench": Preset(
        name="bench",
        unico_batch=10,
        unico_iterations=4,
        unico_budget=100,
        hasco_candidates=24,
        hasco_budget=100,
        nsga_population=10,
        nsga_generations=5,
        nsga_budget=100,
        mobohb_budget=81,
        mobohb_loops=2,
        ascend_batch=6,
        ascend_iterations=4,
        ascend_budget=60,
        validation_budget=80,
    ),
    "paper": Preset(
        name="paper",
        unico_batch=30,
        unico_iterations=10,
        unico_budget=300,
        hasco_candidates=60,
        hasco_budget=300,
        nsga_population=20,
        nsga_generations=8,
        nsga_budget=300,
        mobohb_budget=243,
        mobohb_loops=3,
        ascend_batch=8,
        ascend_iterations=30,
        ascend_budget=200,
        validation_budget=300,
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name (``smoke`` / ``bench`` / ``paper``)."""
    if name not in _PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        )
    return _PRESETS[name]
