"""Append-only, crash-safe JSONL event journal for tracked search runs.

A search that spans days of simulated MAESTRO / cycle-accurate time is an
experiment whose *trajectory* matters as much as its final front: which
hardware was sampled, which MSH candidates were promoted on TV vs AUC,
which batch members the UUL rule admitted into the surrogate, when the
Pareto front grew.  The journal records those decisions as typed events,
one JSON object per line:

    {"seq": 17, "type": "iteration_end", "time_s": 1234.5, ...payload}

Crash safety comes from two properties:

* **Atomic line appends** — every event is serialized to one complete
  line and written with a single ``os.write`` on an ``O_APPEND`` file
  descriptor, so concurrent writers interleave whole lines and a crash
  can only lose (truncate) the final line, never corrupt earlier ones.
* **Tolerant reads** — :func:`read_events` stops at the first malformed
  or unterminated line and reports it as a truncated tail instead of
  failing, so a journal cut mid-write is still fully usable up to the
  last complete event.

``fsync=True`` additionally flushes each line to stable storage before
returning — the right trade for cycle-accurate runs where one event per
2-10 simulated minutes is cheap insurance.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import TrackingError

#: The journal's own format version, stamped on every ``run_start`` event.
JOURNAL_VERSION = 1

#: Event types emitted by :class:`~repro.tracking.tracker.JournalTracker`,
#: plus ``span``, written by
#: :class:`~repro.obs.trace.JournalSpanSink` and carrying its own
#: ``span_schema`` version so the span payload can grow independently of
#: :data:`JOURNAL_VERSION`.  Readers are type-agnostic (forward-compat):
#: replay/resume tooling filters by the types it understands.
EVENT_TYPES = (
    "run_start",
    "resume",
    "iteration_start",
    "hw_sampled",
    "msh_round",
    "surrogate_update",
    "evaluation",
    "pareto_update",
    "engine_snapshot",
    "checkpoint",
    "iteration_end",
    "run_end",
    "span",
    # additive (journal version unchanged): per-candidate engine samples
    # for learned-model training, and the learned-model provenance stamp
    # of a screened run.  Replay/resume of journals without them — and of
    # journals with them, by older readers — is unaffected because all
    # consumers filter by type.
    "engine_sample",
    "learned_model",
    # additive: per-iteration search-health beacon (hypervolume, front
    # size, screening escalations) consumed by the hub's telemetry
    # pipeline, and alert firing/resolution transitions journalled by
    # the SLO rule engine.  Same forward-compat argument as above.
    "search_health",
    "alert",
)


@dataclass
class JournalScan:
    """Outcome of reading a journal file from disk."""

    events: List[Dict] = field(default_factory=list)
    #: bytes of a trailing partial/corrupt line (crash artifact), if any
    truncated_tail: bool = False
    last_seq: int = -1
    #: byte offset just past the last complete, parseable line — the safe
    #: truncation point when reopening a crash-damaged journal for append
    valid_bytes: int = 0
    #: byte offset the scan started at (0 for a full scan; the cursor for
    #: :func:`read_events_from`)
    start_offset: int = 0
    #: absolute byte offset just past each event's line, parallel to
    #: :attr:`events` — the SSE cursor ids of :mod:`repro.hub.sse`
    event_offsets: List[int] = field(default_factory=list)

    def of_type(self, event_type: str) -> List[Dict]:
        return [e for e in self.events if e.get("type") == event_type]


class EventJournal:
    """Writer for one run's ``journal.jsonl``.

    Sequence numbers are monotonically increasing per journal; a resumed
    run continues from the last complete event's ``seq`` (see
    :meth:`open_resume`).  The writer is thread-safe — the ``thread`` job
    runner backend may surface events from worker threads.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        fsync: bool = False,
        _next_seq: int = 0,
    ):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._next_seq = _next_seq
        self._lock = threading.Lock()
        self._fd: Optional[int] = None

    @classmethod
    def open_resume(
        cls, path: Union[str, pathlib.Path], fsync: bool = False
    ) -> "EventJournal":
        """Open an existing journal, continuing its sequence numbering.

        If the journal carries crash damage (a partial final line, or
        corruption that :func:`read_events` would stop at), the file is
        first truncated back to the end of its last complete line —
        otherwise the next ``O_APPEND`` write would weld onto the partial
        bytes and form one malformed line, poisoning every later event.
        """
        scan = read_events(path)
        if scan.truncated_tail:
            os.truncate(str(path), scan.valid_bytes)
        return cls(path, fsync=fsync, _next_seq=scan.last_seq + 1)

    # ------------------------------------------------------------------ write
    def _ensure_open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, event_type: str, payload: Optional[Dict] = None) -> int:
        """Write one event atomically; returns its sequence number."""
        if event_type not in EVENT_TYPES:
            raise TrackingError(
                f"unknown event type {event_type!r}; use one of {EVENT_TYPES}"
            )
        record = {"seq": 0, "type": event_type}
        record.update(payload or {})
        with self._lock:
            record["seq"] = self._next_seq
            line = json.dumps(record, sort_keys=True, default=_jsonable) + "\n"
            data = line.encode("utf-8")
            fd = self._ensure_open()
            written = os.write(fd, data)
            if written != len(data):  # pragma: no cover - disk-full path
                raise TrackingError(
                    f"short write to journal {self.path} "
                    f"({written}/{len(data)} bytes)"
                )
            if self.fsync:
                os.fsync(fd)
            self._next_seq += 1
            return record["seq"]

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonable(value):
    """Fallback serializer: NumPy scalars/arrays and everything repr-able."""
    from repro.utils.records import to_jsonable

    return to_jsonable(value)


# ---------------------------------------------------------------------- read
def iter_events(path: Union[str, pathlib.Path]) -> Iterator[Dict]:
    """Yield complete events in order; silently stops at a truncated tail."""
    yield from read_events(path).events


def _scan_bytes(raw: bytes, base_offset: int) -> JournalScan:
    """Parse journal bytes that start at ``base_offset`` on a line boundary.

    The shared core of :func:`read_events`, :func:`read_events_from` and
    :func:`read_tail_events`: stops at the first malformed or unterminated
    line and reports it as a truncated tail, exactly like a full scan.
    """
    scan = JournalScan(start_offset=base_offset, valid_bytes=base_offset)
    if not raw:
        return scan
    lines = raw.split(b"\n")
    # a journal written exclusively via atomic line appends ends with "\n";
    # anything after the final newline is a partial (crashed) write
    complete, tail = lines[:-1], lines[-1]
    if tail:
        scan.truncated_tail = True
    for line in complete:
        if not line.strip():
            scan.valid_bytes += len(line) + 1
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # corruption mid-file: everything after it is untrustworthy
            scan.truncated_tail = True
            break
        scan.events.append(event)
        scan.valid_bytes += len(line) + 1
        scan.event_offsets.append(scan.valid_bytes)
    if scan.events:
        scan.last_seq = int(scan.events[-1].get("seq", len(scan.events) - 1))
    return scan


def read_events(path: Union[str, pathlib.Path]) -> JournalScan:
    """Read a journal, tolerating a crash-truncated final line.

    Raises :class:`TrackingError` only if the file is missing — corruption
    confined to the tail is expected after a kill and is reported through
    :attr:`JournalScan.truncated_tail`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TrackingError(f"journal {path} does not exist")
    return _scan_bytes(path.read_bytes(), 0)


def read_events_from(
    path: Union[str, pathlib.Path], offset: int
) -> JournalScan:
    """Read a journal from a byte-offset cursor (an event-line boundary).

    The incremental read behind live tailing: a caller that consumed a
    scan up to ``scan.valid_bytes`` passes that offset back to receive
    only the events appended since, with the same truncation-tolerant
    semantics as :func:`read_events`.  An ``offset`` at or past the
    current end of file yields an empty scan (nothing new yet) — it is
    NOT an error, because a reader's cursor may race an in-flight append.
    """
    if offset < 0:
        raise TrackingError(f"journal offset must be >= 0, got {offset}")
    path = pathlib.Path(path)
    if not path.exists():
        raise TrackingError(f"journal {path} does not exist")
    with open(path, "rb") as handle:
        handle.seek(offset)
        raw = handle.read()
    return _scan_bytes(raw, offset)


def read_tail_events(
    path: Union[str, pathlib.Path],
    limit: int,
    event_type: Optional[str] = None,
    initial_window: int = 65536,
) -> JournalScan:
    """Bounded tail read: the last ``limit`` events without an O(file) scan.

    Reads a window of bytes from the end of the journal (doubling it until
    ``limit`` matching events are found or the window covers the whole
    file), so tailing a multi-gigabyte journal costs a few chunk reads
    instead of parsing every line.  ``event_type`` filters before the
    limit is applied, matching ``repro runs tail --type``.

    The returned scan's :attr:`JournalScan.events` hold only the final
    ``limit`` matching events (sequence numbers are therefore not
    contiguous from 0); :attr:`JournalScan.truncated_tail` reports a
    partial/corrupt final line exactly like a full scan would.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TrackingError(f"journal {path} does not exist")
    if limit < 0:
        raise TrackingError(f"tail limit must be >= 0, got {limit}")
    size = path.stat().st_size
    window = max(4096, initial_window)
    while True:
        start = max(0, size - window)
        with open(path, "rb") as handle:
            handle.seek(start)
            raw = handle.read()
        if start > 0:
            newline = raw.find(b"\n")
            if newline < 0:
                # no complete line inside the window: widen and retry
                window *= 2
                continue
            start += newline + 1
            raw = raw[newline + 1:]
        scan = _scan_bytes(raw, start)
        if event_type is None:
            keep = list(range(len(scan.events)))
        else:
            keep = [
                i for i, e in enumerate(scan.events)
                if e.get("type") == event_type
            ]
        if len(keep) >= limit or start == 0:
            keep = keep[-limit:] if limit else []
            scan.events = [scan.events[i] for i in keep]
            scan.event_offsets = [scan.event_offsets[i] for i in keep]
            scan.last_seq = (
                int(scan.events[-1].get("seq", -1)) if scan.events else -1
            )
            return scan
        window *= 2


def verify_sequence(scan: JournalScan) -> None:
    """Assert the scan's events carry contiguous sequence numbers from 0."""
    for expected, event in enumerate(scan.events):
        seq = event.get("seq")
        if seq != expected:
            raise TrackingError(
                f"journal sequence broken at position {expected}: "
                f"expected seq {expected}, found {seq!r}"
            )


__all__ = [
    "EVENT_TYPES",
    "JOURNAL_VERSION",
    "EventJournal",
    "JournalScan",
    "iter_events",
    "read_events",
    "read_events_from",
    "read_tail_events",
    "verify_sequence",
]
