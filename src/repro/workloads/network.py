"""Network = a named list of tensor operators.

A :class:`Network` is the unit of workload handed to the co-optimizer.  Its
layer list stores one :class:`~repro.workloads.layers.LayerSpec` per *unique*
operator shape, with a ``count`` for repeats — the standard compression used
by accelerator-evaluation papers, since identical shapes share one mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.layers import GemmShape, LayerSpec


@dataclass(frozen=True)
class Network:
    """A DNN workload.

    Attributes
    ----------
    name:
        Canonical lowercase identifier (e.g. ``"resnet"``).
    layers:
        Unique-operator list; ``layer.count`` carries repetition.
    family:
        Coarse family tag (``"cnn"``, ``"transformer"``, ``"sr"``, ...).
    year:
        Publication year, used to characterize "newer" validation networks.
    """

    name: str
    layers: Tuple[LayerSpec, ...]
    family: str = "cnn"
    year: int = 2016
    description: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers")
        seen: set = set()
        for layer in self.layers:
            if layer.name in seen:
                raise WorkloadError(
                    f"duplicate layer name {layer.name!r} in network {self.name!r}"
                )
            seen.add(layer.name)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def num_unique_layers(self) -> int:
        return len(self.layers)

    @property
    def num_layers(self) -> int:
        """Total operator instances including repeats."""
        return sum(layer.count for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.total_macs for layer in self.layers)

    def gemms(self) -> List[Tuple[LayerSpec, GemmShape]]:
        """Lower every unique layer to its GEMM shape."""
        return [(layer, layer.to_gemm()) for layer in self.layers]

    def layer(self, name: str) -> LayerSpec:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"network {self.name!r} has no layer {name!r}")

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "year": self.year,
            "unique_layers": self.num_unique_layers,
            "total_layers": self.num_layers,
            "total_gmacs": self.total_macs / 1e9,
        }


def merge_networks(name: str, networks: Iterable[Network]) -> Network:
    """Concatenate several networks into one multi-workload (Fig. 6a style).

    Layer names are prefixed with their source network to stay unique.
    """
    merged: List[LayerSpec] = []
    members = list(networks)
    if not members:
        raise WorkloadError("merge_networks needs at least one network")
    for network in members:
        for layer in network.layers:
            merged.append(
                layer.__class__(
                    **{
                        **{f.name: getattr(layer, f.name) for f in _fields(layer)},
                        "name": f"{network.name}.{layer.name}",
                    }
                )
            )
    return Network(
        name=name,
        layers=tuple(merged),
        family="multi",
        year=max(network.year for network in members),
        description="merged: " + ", ".join(network.name for network in members),
    )


def _fields(layer: LayerSpec):
    import dataclasses

    return dataclasses.fields(layer)
