"""Tests for the PPA estimation-service layer (caching, clock, aggregation)."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.errors import EvaluationError
from repro.mapping import GemmMapping


@pytest.fixture()
def engine(tiny_network):
    return MaestroEngine(tiny_network)


MAPPING = GemmMapping(8, 16, 8)


class TestEvaluateLayer:
    def test_basic_result(self, engine, sample_hw):
        result = engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert result.feasible
        assert result.latency_s > 0

    def test_unknown_layer_raises(self, engine, sample_hw):
        with pytest.raises(EvaluationError):
            engine.evaluate_layer(sample_hw, MAPPING, "nope")

    def test_cache_hit_on_repeat(self, engine, sample_hw):
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.num_queries == 2
        assert engine.num_cache_hits == 1
        assert engine.cache_hit_rate == 0.5

    def test_clock_charged_per_call_even_cached(self, engine, sample_hw):
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.clock.now_s == pytest.approx(2 * engine.eval_cost_s)

    def test_charge_clock_flag(self, engine, sample_hw):
        engine.charge_clock = False
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert engine.clock.now_s == 0.0
        assert engine.num_queries == 1

    def test_different_hw_not_cached_together(self, engine, sample_hw, edge_space):
        other = edge_space.mutate(sample_hw, seed=0)
        engine.evaluate_layer(sample_hw, MAPPING, "gemm")
        engine.evaluate_layer(other, MAPPING, "gemm")
        assert engine.num_cache_hits == 0


class TestAggregate:
    def _full_mapping(self, engine):
        return {name: GemmMapping(4, 8, 4) for name in engine.layer_shapes}

    def test_network_evaluation(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        ppa = engine.evaluate_network(sample_hw, mappings)
        assert ppa.feasible
        assert ppa.latency_s > 0
        assert ppa.area_mm2 > 0

    def test_counts_weight_latency(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        ppa = engine.evaluate_network(sample_hw, mappings)
        gemm_result = ppa.layer_results["gemm"]
        # gemm has count=2 so contributes twice
        manual = sum(
            count * ppa.layer_results[name].latency_s
            for name, (_shape, count) in engine.layer_shapes.items()
        )
        assert ppa.latency_s == pytest.approx(manual)
        assert gemm_result.feasible

    def test_aggregate_does_not_charge_clock(self, engine, sample_hw):
        mappings = self._full_mapping(engine)
        engine.evaluate_network(sample_hw, mappings)
        before = engine.clock.now_s
        engine.aggregate(sample_hw, mappings)
        assert engine.clock.now_s == before

    def test_partial_mapping_infeasible(self, engine, sample_hw):
        ppa = engine.aggregate(sample_hw, {"gemm": MAPPING})
        assert not ppa.feasible
        assert np.isinf(ppa.latency_s)
