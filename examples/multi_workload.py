#!/usr/bin/env python
"""Multi-workload co-optimization (Fig. 6a): one HW, one SW job per DNN.

Finds a single hardware configuration serving BERT *and* MobileNet: each
sampled candidate spawns one software-mapping job per workload (they run
in parallel in the deployment; the simulated clock accounts for that) and
its quality aggregates both — so the search cannot overfit the accelerator
to either network alone.

Run:  python examples/multi_workload.py
"""

from repro.core import Unico, UnicoConfig, multi_workload_trial_factory
from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space, power_cap_for
from repro.workloads import get_network


def main() -> None:
    networks = [get_network("bert"), get_network("mobilenet")]
    print("Co-optimizing one accelerator for: "
          + ", ".join(n.description for n in networks))

    engine, factory = multi_workload_trial_factory(
        networks,
        lambda net, clock: MaestroEngine(net, clock=clock),
    )
    space = edge_design_space()
    unico = Unico(
        space,
        engine.network,
        engine,
        UnicoConfig(batch_size=6, max_iterations=3, max_budget=50, workers=8),
        trial_factory=factory,
        power_cap_w=power_cap_for("edge"),
        seed=0,
    )
    result = unico.optimize()

    print(f"\n{result.total_hw_evaluated} hardware candidates, "
          f"{result.total_time_h:.2f} simulated hours "
          f"({engine.num_queries} PPA queries across both workloads)")
    best = result.best_design()
    if best is None:
        print("no feasible design at this tiny budget")
        return
    print(f"selected HW: {best.hw}")
    print(
        f"aggregate: {best.ppa.latency_s * 1e3:.2f} ms total, "
        f"{best.ppa.power_w * 1e3:.0f} mW, {best.ppa.area_mm2:.2f} mm2, "
        f"worst-case R = {best.robustness.r_value:.4f}"
    )
    print("\nPer-workload latency share of the selected design "
          "(from the merged mapping):")
    for network in networks:
        prefix = network.name + "."
        layers = [k for k in best.mapping if k.startswith(prefix)]
        print(f"  {network.name:<12s} {len(layers)} mapped layers")


if __name__ == "__main__":
    main()
