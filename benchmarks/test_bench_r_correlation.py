"""Extension study: population-level correlation of R with generalization.

Fig. 8 checks the robustness metric on a handful of matched pairs; this
extension tests the paper's underlying hypothesis at population scale:
across *many* hardware designs with full-budget mapping searches, does a
design's sensitivity R on a training workload predict its latency
degradation on a different workload?

Protocol: sample N hardware configs, run a full SW search on the training
workload (recording R and training latency), then a fresh search on the
transfer workload; correlate R with the *generalization gap* — transfer
latency normalized by the design's own training-relative rank.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.core.evaluation import SWSearchTrial
from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space
from repro.utils.records import RunRecord
from repro.workloads import get_network

TRAIN_NET = "srgan"
TRANSFER_NET = "xception"
NUM_DESIGNS = 24
BUDGET = 120


def _spearman(x, y) -> float:
    """Spearman rank correlation (scipy-free fallback kept simple)."""
    rx = np.argsort(np.argsort(x)).astype(float)
    ry = np.argsort(np.argsort(y)).astype(float)
    if rx.std() == 0 or ry.std() == 0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])


def _run_study() -> RunRecord:
    train = get_network(TRAIN_NET)
    transfer = get_network(TRANSFER_NET)
    space = edge_design_space()
    rng_configs = space.sample_batch(NUM_DESIGNS * 3, seed=7)

    record = RunRecord("r-correlation")
    r_values, gaps = [], []
    rows = []
    kept = 0
    for index, hw in enumerate(rng_configs):
        if kept >= NUM_DESIGNS:
            break
        train_engine = MaestroEngine(train)
        train_engine.charge_clock = False
        train_trial = SWSearchTrial(hw, train, train_engine, seed=index)
        train_trial.run(BUDGET)
        train_ppa = train_trial.best_ppa
        robustness = train_trial.robustness()
        if not (train_ppa.feasible and robustness.finite):
            continue
        transfer_engine = MaestroEngine(transfer)
        transfer_engine.charge_clock = False
        transfer_trial = SWSearchTrial(hw, transfer, transfer_engine, seed=index)
        transfer_trial.run(BUDGET)
        transfer_ppa = transfer_trial.best_ppa
        if not transfer_ppa.feasible:
            continue
        kept += 1
        # generalization gap: transfer latency relative to how good the
        # design was on its training workload (both per-MAC normalized)
        train_score = train_ppa.latency_s / train.total_macs
        transfer_score = transfer_ppa.latency_s / transfer.total_macs
        gap = transfer_score / train_score
        r_values.append(robustness.r_value)
        gaps.append(gap)
        rows.append(
            {
                "r": robustness.r_value,
                "gap": gap,
                "train_latency_ms": train_ppa.latency_s * 1e3,
                "transfer_latency_ms": transfer_ppa.latency_s * 1e3,
            }
        )
    record.put("num_designs", kept)
    record.put("spearman_r_vs_gap", _spearman(np.array(r_values), np.array(gaps)))
    record.put("rows", rows)
    # split-half comparison: low-R half vs high-R half transfer gap
    order = np.argsort(r_values)
    half = kept // 2
    low_half = [gaps[i] for i in order[:half]]
    high_half = [gaps[i] for i in order[half:]]
    record.put("low_r_half_mean_gap", float(np.mean(low_half)))
    record.put("high_r_half_mean_gap", float(np.mean(high_half)))
    return record


@pytest.mark.benchmark(group="extension")
def test_r_correlates_with_generalization(benchmark, results_dir):
    record = run_once(benchmark, _run_study)
    save_record(results_dir, "r_correlation", record)
    print("\n=== Extension: population-level R vs generalization gap ===")
    print(f"designs: {record.get('num_designs')}")
    print(f"Spearman(R, gap): {record.get('spearman_r_vs_gap'):+.3f}")
    print(
        f"mean gap, low-R half:  {record.get('low_r_half_mean_gap'):.3f}\n"
        f"mean gap, high-R half: {record.get('high_r_half_mean_gap'):.3f}"
    )
    assert record.get("num_designs") >= 12
    # the paper's hypothesis at population level: robust (low-R) designs
    # transfer at least as well as fragile ones
    assert (
        record.get("low_r_half_mean_gap")
        <= record.get("high_r_half_mean_gap") * 1.10
    )
