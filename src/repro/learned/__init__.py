"""Learned cost-model subsystem distilled from journaled engine samples.

The run store and event journal persist every (hardware config, mapping,
layer) -> PPA evaluation a co-search performs.  This package closes the
loop from that recorded data back into search speed:

* :mod:`repro.learned.features` — fixed-width NumPy featurization of
  (hw, :class:`~repro.mapping.gemm_mapping.GemmMapping`, layer shape),
  including a relaxed differentiable variant over continuous tile sizes.
* :mod:`repro.learned.dataset` — training-array extraction by replaying
  ``engine_sample`` journal events across a
  :class:`~repro.tracking.store.RunStore`.
* :mod:`repro.learned.model` — a small pure-NumPy MLP/ridge ensemble
  with train/predict/save/load and calibrated uncertainty.
* :mod:`repro.learned.screen` — :class:`ScreeningPPAEngine`, which ranks
  candidate batches with the learned model and forwards only the
  most promising (plus uncertainty-escalated) candidates to the wrapped
  analytical engine.  Everything it surfaces carries exact analytical
  PPA; screening disabled is bit-identical to no wrapper at all.
* :mod:`repro.learned.oneloop` — a DOSA-style differentiable one-loop
  mapping search (gradient descent over relaxed tile sizes against the
  learned model, projected back to legal mappings, verified
  analytically), registered as a mapping tool alongside FlexTensor.
"""

from repro.learned.dataset import LearnedDataset, build_dataset, split_by_run
from repro.learned.features import (
    FEATURE_VERSION,
    feature_dim,
    feature_names,
    featurize,
    featurize_batch,
    relaxed_features,
)
from repro.learned.model import LearnedCostModel
from repro.learned.oneloop import OneLoopMappingSearch
from repro.learned.screen import ScreeningPPAEngine

__all__ = [
    "FEATURE_VERSION",
    "LearnedCostModel",
    "LearnedDataset",
    "OneLoopMappingSearch",
    "ScreeningPPAEngine",
    "build_dataset",
    "feature_dim",
    "feature_names",
    "featurize",
    "featurize_batch",
    "relaxed_features",
    "split_by_run",
]
