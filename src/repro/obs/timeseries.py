"""Append-only time-series store for scraped metrics (the telemetry journal).

The hub's scrape loop (:mod:`repro.hub.telemetry`) polls every replica's
``/metrics`` on an interval; this module is where those samples land and
how they are asked about afterwards.  One :class:`MetricsStore` holds one
append-only JSONL file per *target* (a replica ``host:port``, the
``fleet`` rollup, ``hub``, or a ``run:<run-id>`` search-health stream):

    {"t": 1723111845.2, "s": {"up": 1, "engine_queries_total": 4102, ...}}

The file discipline is the :class:`~repro.tracking.journal.EventJournal`
discipline, deliberately:

* **atomic line appends** — each sample is serialized to one complete
  line and written with a single ``os.write`` on an ``O_APPEND``
  descriptor, so a crash can only truncate the final line;
* **truncation-tolerant reads** — scans reuse the journal's
  ``_scan_bytes`` core, stopping at the first partial/corrupt line and
  reporting it instead of failing;
* **byte-offset resume** — :meth:`MetricsStore.read_from` takes the
  ``valid_bytes`` cursor of a previous scan and returns only newer
  samples, and reopening a crash-damaged file for append first truncates
  it back to its last complete line so the next write cannot weld onto
  partial bytes.

On top sits the query layer the alert rules and dashboards consume:
``last``/``avg``/``max``/``min`` over a time window, counter-reset-aware
``rate()`` and ``increase()``, and quantile-from-histogram over windowed
bucket increases.  Recent samples are served from a per-target in-memory
window (the scrape loop is the only writer), so steady-state rule
evaluation never touches disk.

Retention is explicit: :meth:`MetricsStore.compact` downsamples samples
older than ``downsample_after_s`` to one per ``downsample_to_s`` bucket
and drops everything older than ``retention_s``, rewriting the file
atomically (tmp + rename) — the scrape loop calls it periodically.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TrackingError
from repro.tracking.journal import JournalScan, _scan_bytes

__all__ = [
    "MetricsStore",
    "Sample",
    "counter_increase",
    "flatten_families",
    "histogram_quantile",
    "series_key",
]

#: (timestamp, {series_key: value}) — one appended line
Sample = Tuple[float, Dict[str, float]]

#: filename-safe encoding of target names; ``:`` and ``.`` survive
#: (replica targets are ``host:port``), anything else becomes ``_``
_TARGET_UNSAFE = re.compile(r"[^A-Za-z0-9_.:-]")


def _target_filename(target: str) -> str:
    if not target:
        raise TrackingError("metrics target name must be non-empty")
    return _TARGET_UNSAFE.sub("_", target) + ".jsonl"


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Flatten one Prometheus sample name + label set into a series key.

    ``service_requests_total`` + ``{path="/metrics"}`` becomes
    ``service_requests_total{path="/metrics"}``; label order is sorted so
    the key is stable across scrapes.  The ``replica`` label is the
    *target* dimension of the store, never part of a key.
    """
    kept = {k: v for k, v in labels.items() if k != "replica"}
    if not kept:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in sorted(kept.items()))
    return f"{name}{{{body}}}"


def flatten_families(families: Dict[str, Dict]) -> Dict[str, float]:
    """One scrape's parsed metric families → a flat ``{series: value}`` map.

    ``families`` is the output of
    :func:`repro.obs.prom.parse_prometheus_text`.  Histogram series keep
    their ``_bucket{le="..."}``/``_sum``/``_count`` names, so windowed
    quantiles can be computed from bucket increases later.
    """
    flat: Dict[str, float] = {}
    for data in families.values():
        for name, labels, value in data["samples"]:
            flat[series_key(name, labels)] = float(value)
    return flat


# ------------------------------------------------------------------ queries
def counter_increase(points: Sequence[Tuple[float, float]]) -> float:
    """Reset-aware counter increase over ordered ``(t, value)`` points.

    Sums positive deltas only: a counter that falls (replica restart)
    contributes its post-reset value as new growth instead of a negative
    delta, matching Prometheus ``increase()`` semantics closely enough
    for alerting.
    """
    total = 0.0
    for (_t0, v0), (_t1, v1) in zip(points, points[1:]):
        delta = v1 - v0
        total += delta if delta >= 0.0 else v1
    return total


def histogram_quantile(
    q: float, bucket_increases: Dict[str, float]
) -> Optional[float]:
    """Interpolated quantile from cumulative-bucket *increases*.

    ``bucket_increases`` maps ``le`` bound strings (``"0.01"``, ``"+Inf"``)
    to the windowed increase of that cumulative bucket.  Returns ``None``
    when the window saw no observations.  The top bucket clamps to its
    lower finite bound, as Prometheus does.
    """
    if not 0.0 <= q <= 1.0:
        raise TrackingError(f"quantile must be in [0, 1], got {q}")
    bounds: List[Tuple[float, float]] = []
    for le, value in bucket_increases.items():
        bound = math.inf if le == "+Inf" else float(le)
        bounds.append((bound, max(0.0, value)))
    bounds.sort(key=lambda item: item[0])
    if not bounds or not math.isinf(bounds[-1][0]):
        return None
    total = bounds[-1][1]
    if total <= 0.0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0.0
    for bound, cumulative in bounds:
        if cumulative >= rank:
            if math.isinf(bound):
                return previous_bound
            width = bound - previous_bound
            share = cumulative - previous_cum
            if share <= 0.0 or width <= 0.0:
                return bound
            return previous_bound + width * (rank - previous_cum) / share
        previous_bound, previous_cum = bound, cumulative
    return previous_bound


class _Target:
    """One target's append state + in-memory sample window."""

    __slots__ = ("path", "fd", "cache", "cache_complete", "lock")

    def __init__(self, path: Optional[pathlib.Path], cache_samples: int):
        self.path = path
        self.fd: Optional[int] = None
        self.cache: Deque[Sample] = deque(maxlen=cache_samples)
        #: True while the cache holds the file's complete history
        self.cache_complete = path is None or not (
            path.exists() and path.stat().st_size > 0
        )
        self.lock = threading.Lock()


class MetricsStore:
    """Crash-safe per-target sample journals plus their query layer.

    ``root=None`` runs fully in memory (no files) — the mode
    ``repro fleet top`` uses for its ad-hoc local scrape loop.
    """

    def __init__(
        self,
        root: Optional[Union[str, pathlib.Path]] = None,
        cache_samples: int = 16384,
        fsync: bool = False,
    ):
        if cache_samples < 2:
            raise TrackingError(
                f"cache_samples must be >= 2, got {cache_samples}"
            )
        self.root = pathlib.Path(root) if root is not None else None
        self.cache_samples = cache_samples
        self.fsync = fsync
        self._targets: Dict[str, _Target] = {}
        self._lock = threading.Lock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- targets
    def _target(self, target: str) -> _Target:
        with self._lock:
            state = self._targets.get(target)
            if state is None:
                path = (
                    self.root / _target_filename(target)
                    if self.root is not None
                    else None
                )
                state = self._targets[target] = _Target(
                    path, self.cache_samples
                )
            return state

    def targets(self) -> List[str]:
        """Every target with samples (on disk or in memory), sorted."""
        names = set(self._targets)
        if self.root is not None:
            names.update(
                path.name[: -len(".jsonl")]
                for path in self.root.glob("*.jsonl")
            )
        return sorted(names)

    def path_for(self, target: str) -> Optional[pathlib.Path]:
        """The target's journal path (None for a memory-only store)."""
        if self.root is None:
            return None
        return self.root / _target_filename(target)

    # -------------------------------------------------------------- append
    def append(self, target: str, t: float, series: Dict[str, float]) -> int:
        """Append one sample atomically; returns the byte offset past it.

        A memory-only store returns ``-1``.  The first append to an
        existing file truncates any crash-damaged tail back to the last
        complete line, so the write never welds onto partial bytes.
        """
        state = self._target(target)
        record = {"t": float(t), "s": {k: float(v) for k, v in series.items()}}
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with state.lock:
            state.cache.append((record["t"], record["s"]))
            if state.path is None:
                return -1
            if state.fd is None:
                if state.path.exists() and state.path.stat().st_size > 0:
                    scan = _scan_file(state.path)
                    if scan.truncated_tail:
                        os.truncate(str(state.path), scan.valid_bytes)
                state.fd = os.open(
                    str(state.path),
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
            written = os.write(state.fd, line)
            if written != len(line):  # pragma: no cover - disk-full path
                raise TrackingError(
                    f"short write to metrics journal {state.path} "
                    f"({written}/{len(line)} bytes)"
                )
            if self.fsync:
                os.fsync(state.fd)
            return state.path.stat().st_size

    # --------------------------------------------------------------- reads
    def read_from(self, target: str, offset: int) -> Tuple[List[Sample], JournalScan]:
        """Samples past a byte-offset cursor, truncation-tolerant.

        The incremental read behind exporters: pass a previous scan's
        ``valid_bytes`` back to receive only newer samples.
        """
        path = self.path_for(target)
        if path is None or not path.exists():
            return [], JournalScan(start_offset=offset, valid_bytes=offset)
        if offset < 0:
            raise TrackingError(f"metrics offset must be >= 0, got {offset}")
        with open(path, "rb") as handle:
            handle.seek(offset)
            raw = handle.read()
        scan = _scan_bytes(raw, offset)
        return [_as_sample(event) for event in scan.events], scan

    def samples(
        self,
        target: str,
        start_t: Optional[float] = None,
        end_t: Optional[float] = None,
    ) -> List[Sample]:
        """Samples in ``[start_t, end_t]``, memory-first, disk-complete."""
        state = self._target(target)
        with state.lock:
            cached = list(state.cache)
            complete = state.cache_complete and (
                len(cached) < self.cache_samples
            )
        need_disk = state.path is not None and not complete
        if need_disk and cached and start_t is not None:
            # the cache still covers the window if its oldest sample
            # predates the window start
            need_disk = cached[0][0] > start_t
        if need_disk and state.path is not None and state.path.exists():
            scan = _scan_file(state.path)
            cached = [_as_sample(event) for event in scan.events]
        return [
            (t, s)
            for t, s in cached
            if (start_t is None or t >= start_t)
            and (end_t is None or t <= end_t)
        ]

    def series(
        self,
        target: str,
        name: str,
        start_t: Optional[float] = None,
        end_t: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """One series' ``(t, value)`` points over a window, in time order."""
        return [
            (t, s[name])
            for t, s in self.samples(target, start_t, end_t)
            if name in s
        ]

    def latest(self, target: str) -> Optional[Sample]:
        state = self._target(target)
        with state.lock:
            if state.cache:
                return state.cache[-1]
        points = self.samples(target)
        return points[-1] if points else None

    def series_names(self, target: str, prefix: str = "") -> List[str]:
        """Series keys the target has ever reported (windowed by cache)."""
        names: set = set()
        for _t, series in self.samples(target):
            names.update(k for k in series if k.startswith(prefix))
        return sorted(names)

    # --------------------------------------------------------------- query
    def query(
        self,
        target: str,
        series: str,
        fn: str = "last",
        window_s: float = 60.0,
        now: Optional[float] = None,
        q: Optional[float] = None,
    ) -> Optional[float]:
        """Evaluate one query function over a trailing window.

        ``fn`` is one of ``last``/``avg``/``max``/``min`` (sample
        statistics), ``increase``/``rate`` (counter semantics:
        reset-aware increase over the window, rate = increase divided by
        the window length; a series that exists but has at most one point
        in the window reads as 0 increase — a stopped counter, not a
        missing one), or ``quantile`` (``series`` names a histogram
        family; ``q`` in [0, 1]).  Returns ``None`` when the series has
        never been seen on the target — callers distinguish "no signal"
        from "signal says zero".
        """
        if window_s <= 0.0:
            raise TrackingError(f"window_s must be > 0, got {window_s}")
        if fn == "quantile":
            if q is None:
                raise TrackingError("quantile query needs q=")
            return self.quantile(target, series, q, window_s, now=now)
        if now is None:
            latest = self.latest(target)
            if latest is None:
                return None
            now = latest[0]
        points = self.series(target, series, start_t=now - window_s, end_t=now)
        if fn in ("increase", "rate"):
            if not points and not self._series_ever(target, series, now):
                return None
            increase = counter_increase(points) if len(points) > 1 else 0.0
            return increase / window_s if fn == "rate" else increase
        if not points:
            return None
        values = [v for _t, v in points]
        if fn == "last":
            return values[-1]
        if fn == "avg":
            return sum(values) / len(values)
        if fn == "max":
            return max(values)
        if fn == "min":
            return min(values)
        raise TrackingError(
            f"unknown query fn {fn!r}; use last/avg/max/min/rate/"
            "increase/quantile"
        )

    def _series_ever(self, target: str, name: str, now: float) -> bool:
        """Did the target report this series at any cached point in time?"""
        for t, series in self.samples(target, end_t=now):
            if name in series:
                return True
        return False

    def quantile(
        self,
        target: str,
        family: str,
        q: float,
        window_s: float,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Windowed quantile from a histogram family's bucket increases."""
        if now is None:
            latest = self.latest(target)
            if latest is None:
                return None
            now = latest[0]
        prefix = f"{family}_bucket{{le="
        increases: Dict[str, float] = {}
        per_bucket: Dict[str, List[Tuple[float, float]]] = {}
        for t, series in self.samples(target, start_t=now - window_s, end_t=now):
            for key, value in series.items():
                if key.startswith(prefix):
                    per_bucket.setdefault(key, []).append((t, value))
        for key, points in per_bucket.items():
            le = key[len(prefix):].rstrip("}").strip('"')
            increases[le] = (
                counter_increase(points) if len(points) > 1 else 0.0
            )
        if not increases:
            return None
        return histogram_quantile(q, increases)

    # ----------------------------------------------------------- retention
    def compact(
        self,
        target: str,
        now: float,
        retention_s: float = 7 * 86400.0,
        downsample_after_s: float = 3600.0,
        downsample_to_s: float = 60.0,
    ) -> int:
        """Retention + downsampling rewrite; returns samples kept.

        Samples older than ``retention_s`` are dropped; samples older
        than ``downsample_after_s`` keep only the last one per
        ``downsample_to_s`` bucket; recent samples are kept raw.  The
        rewrite is atomic (tmp file + ``os.replace``) and resets the
        append descriptor so the next append reopens the new file.
        """
        state = self._target(target)
        with state.lock:
            if state.path is None:
                kept = [
                    (t, s) for t, s in state.cache if now - t <= retention_s
                ]
                state.cache.clear()
                state.cache.extend(kept)
                return len(kept)
            if not state.path.exists():
                return 0
            scan = _scan_file(state.path)
            raw_samples = [_as_sample(event) for event in scan.events]
            kept: List[Sample] = []
            buckets: Dict[int, Sample] = {}
            for t, series in raw_samples:
                age = now - t
                if age > retention_s:
                    continue
                if age > downsample_after_s:
                    buckets[int(t // downsample_to_s)] = (t, series)
                else:
                    kept.append((t, series))
            downsampled = [buckets[k] for k in sorted(buckets)]
            final = downsampled + kept
            tmp = state.path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for t, series in final:
                    handle.write(
                        json.dumps({"t": t, "s": series}, sort_keys=True)
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, state.path)
            if state.fd is not None:
                os.close(state.fd)
                state.fd = None
            state.cache.clear()
            state.cache.extend(final[-self.cache_samples:])
            state.cache_complete = len(final) <= self.cache_samples
            return len(final)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        with self._lock:
            for state in self._targets.values():
                with state.lock:
                    if state.fd is not None:
                        os.close(state.fd)
                        state.fd = None

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _scan_file(path: pathlib.Path) -> JournalScan:
    return _scan_bytes(path.read_bytes(), 0)


def _as_sample(event: Dict) -> Sample:
    series = event.get("s") or {}
    return (
        float(event.get("t", 0.0)),
        {str(k): float(v) for k, v in series.items()},
    )
