"""Recorded schedules: replayable primitive sequences over a loop nest.

A :class:`Schedule` is the auto-scheduler-facing object: it records the
primitive calls (split / reorder / bind / fuse) applied to a statement's
canonical nest, can replay them onto a fresh nest, and serializes to plain
JSON for logging search traces.  This mirrors how FlexTensor/Ansor-style
tools persist schedules, and gives the mapping layer a second, equivalent
encoding (mapping <-> primitive trace) exercised by the IR tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import MappingError
from repro.ir.loopnest import LoopNest

_PRIMITIVES = ("split", "reorder", "bind", "fuse")


@dataclass(frozen=True)
class Primitive:
    """One recorded scheduling step."""

    kind: str
    args: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.kind not in _PRIMITIVES:
            raise MappingError(f"unknown primitive {self.kind!r}")


@dataclass
class Schedule:
    """A primitive trace plus its current (applied) nest."""

    base: LoopNest
    nest: LoopNest = None  # type: ignore[assignment]
    trace: List[Primitive] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nest is None:
            self.nest = self.base

    # ---------------------------------------------------------------- actions
    def split(self, name: str, factor: int) -> "Schedule":
        self.nest = self.nest.split(name, factor)
        self.trace.append(Primitive("split", (name, factor)))
        return self

    def reorder(self, order: Sequence[str]) -> "Schedule":
        self.nest = self.nest.reorder(tuple(order))
        self.trace.append(Primitive("reorder", tuple(order)))
        return self

    def bind(self, name: str, binding: str) -> "Schedule":
        self.nest = self.nest.bind(name, binding)
        self.trace.append(Primitive("bind", (name, binding)))
        return self

    def fuse(self, first: str, second: str) -> "Schedule":
        self.nest = self.nest.fuse(first, second)
        self.trace.append(Primitive("fuse", (first, second)))
        return self

    # ------------------------------------------------------------------ tools
    def replay(self, base: LoopNest = None) -> LoopNest:
        """Re-apply the trace to ``base`` (default: the original nest)."""
        nest = base if base is not None else self.base
        for step in self.trace:
            if step.kind == "split":
                nest = nest.split(*step.args)
            elif step.kind == "reorder":
                nest = nest.reorder(step.args)
            elif step.kind == "bind":
                nest = nest.bind(*step.args)
            else:
                nest = nest.fuse(*step.args)
        return nest

    def to_dict(self) -> Dict:
        return {
            "domain": list(self.base.domain),
            "trace": [
                {"kind": step.kind, "args": list(step.args)} for step in self.trace
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Schedule":
        base = LoopNest.from_domain(
            [(dim, size) for dim, size in payload["domain"]]
        )
        schedule = cls(base=base)
        for step in payload["trace"]:
            kind = step["kind"]
            args = step["args"]
            if kind == "split":
                schedule.split(args[0], args[1])
            elif kind == "reorder":
                schedule.reorder(args)
            elif kind == "bind":
                schedule.bind(args[0], args[1])
            elif kind == "fuse":
                schedule.fuse(args[0], args[1])
            else:
                raise MappingError(f"unknown primitive {kind!r} in payload")
        return schedule
