"""MAESTRO-like analytical PPA model for the spatial accelerator.

Given a hardware configuration, a software mapping and a GEMM-shaped
operator, the model produces latency / energy / area the same way the
data-centric analytical frameworks (MAESTRO, Timeloop) do:

1. **Tiling** — the mapping's L1 tile ``(tm, tn, tk)`` is executed per pass
   on the PE array; ``m`` spreads over one array axis, ``n`` over the other
   (per the mapping's ``spatial`` choice).
2. **Reuse analysis** — DRAM<->L2 traffic uses the classic reload-factor
   rule: operand ``X`` is re-fetched once per iteration of every loop that
   does not index ``X`` and sits *outside* the innermost loop that does.
   L2<->L1 (NoC) traffic depends on the dataflow: weight-stationary keeps
   the B (weight) tile resident across passes, output-stationary keeps the
   accumulator in the PE until the reduction completes.
3. **Roofline latency** — compute, NoC and DRAM cycles overlap via double
   buffering, so tile latency is their maximum.
4. **Energy** — per-MAC, per-byte register/L1/L2/DRAM energies from
   :class:`~repro.costmodel.technology.Technology`; SRAM energy grows with
   capacity.
5. **Area** — PEs + banked SRAM + NoC + fixed base.

Capacity feasibility (double-buffered tiles must fit L1 per PE and L2) is
checked first; infeasible mappings return ``feasible=False`` with a reason.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.costmodel.results import LayerPPA, NetworkPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.spatial import SpatialHWConfig
from repro.utils.intmath import round_up_div
from repro.workloads.layers import GemmShape

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.mapping.gemm_mapping import GemmMapping

_STARTUP_CYCLES = 1000.0


def spatial_area_mm2(
    hw: SpatialHWConfig, tech: Technology = DEFAULT_TECHNOLOGY
) -> float:
    """Silicon area of a spatial-accelerator configuration."""
    l1_total_kb = hw.l1_total_bytes / 1024.0
    l2_kb = float(hw.l2_kb)
    l1_area = (
        tech.sram_area_mm2_per_kb
        * l1_total_kb
        * (1.0 + tech.bank_area_overhead * (hw.l1_banks - 1))
    )
    l2_area = (
        tech.sram_area_mm2_per_kb
        * l2_kb
        * (1.0 + tech.bank_area_overhead * (hw.l2_banks - 1))
    )
    pe_area = tech.pe_area_mm2 * hw.num_pes
    noc_area = tech.noc_area_mm2_per_pe_per_lane * hw.num_pes * hw.noc_bw
    return tech.base_area_mm2 + pe_area + l1_area + l2_area + noc_area


def _clipped_tiles(
    mapping: GemmMapping, shape: GemmShape
) -> Tuple[int, int, int]:
    """Tiles can never exceed the problem dimensions."""
    return (
        min(mapping.tile_m, shape.m),
        min(mapping.tile_n, shape.n),
        min(mapping.tile_k, shape.k),
    )


def _reload_factor(
    operand_dims: Tuple[str, ...],
    loop_order: Tuple[str, str, str],
    trips: Dict[str, int],
) -> int:
    """Classic reload rule, see module docstring (step 2)."""
    innermost_pos = max(loop_order.index(dim) for dim in operand_dims)
    factor = 1
    for position, dim in enumerate(loop_order):
        if dim not in operand_dims and position < innermost_pos:
            factor *= trips[dim]
    return factor


def analyze_gemm(
    hw: SpatialHWConfig,
    mapping: GemmMapping,
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> LayerPPA:
    """Analyze one GEMM pass under ``mapping`` on ``hw``.

    Returns an infeasible :class:`LayerPPA` when the double-buffered tile
    working sets overflow L1 (per PE) or L2.
    """
    tm, tn, tk = _clipped_tiles(mapping, shape)
    op_b = tech.operand_bytes
    acc_b = tech.accum_bytes

    if mapping.spatial == "mn":
        pe_m, pe_n = hw.pe_x, hw.pe_y
    else:
        pe_m, pe_n = hw.pe_y, hw.pe_x
    sub_m = round_up_div(tm, pe_m)
    sub_n = round_up_div(tn, pe_n)

    # --- capacity feasibility ------------------------------------------------
    l1_need = 2 * (sub_m * tk + tk * sub_n) * op_b + sub_m * sub_n * acc_b
    if l1_need > hw.l1_bytes:
        return LayerPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            feasible=False,
            infeasible_reason=(
                f"L1 overflow: need {l1_need} B per PE, have {hw.l1_bytes} B"
            ),
        )
    l2_need = 2 * (tm * tk + tk * tn) * op_b + tm * tn * acc_b
    if l2_need > hw.l2_bytes:
        return LayerPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            feasible=False,
            infeasible_reason=(
                f"L2 overflow: need {l2_need} B, have {hw.l2_bytes} B"
            ),
        )

    trips = {
        "m": round_up_div(shape.m, tm),
        "n": round_up_div(shape.n, tn),
        "k": round_up_div(shape.k, tk),
    }
    n_tiles = trips["m"] * trips["n"] * trips["k"]
    order = tuple(mapping.loop_order)
    reuse = shape.reuse_penalty

    # --- DRAM <-> L2 traffic -------------------------------------------------
    reload_a = _reload_factor(("m", "k"), order, trips)
    reload_b = _reload_factor(("k", "n"), order, trips)
    reload_c = _reload_factor(("m", "n"), order, trips)
    dram_a = shape.m * shape.k * op_b * reload_a / reuse
    dram_b = shape.k * shape.n * op_b * reload_b / reuse
    dram_c = shape.m * shape.n * op_b + 2.0 * shape.m * shape.n * acc_b * (
        reload_c - 1
    )
    dram_bytes = dram_a + dram_b + dram_c

    # --- L2 <-> L1 (NoC) traffic ---------------------------------------------
    noc_a = n_tiles * tm * tk * op_b / reuse
    if hw.dataflow == "ws":
        # Weight tile resident in L1 across passes that keep it fixed.
        noc_b = shape.k * shape.n * op_b * reload_b / reuse
        noc_c = n_tiles * tm * tn * acc_b
    else:  # output stationary
        noc_b = n_tiles * tk * tn * op_b / reuse
        if order[2] == "k":
            # Reduction innermost: accumulator completes inside the PE.
            noc_c = shape.m * shape.n * op_b
        else:
            noc_c = shape.m * shape.n * op_b + 2.0 * shape.m * shape.n * acc_b * (
                trips["k"] - 1
            )
    noc_bytes = noc_a + noc_b + noc_c

    # --- latency ---------------------------------------------------------------
    fill = pe_m + pe_n  # systolic array fill/drain per pass
    issue_overhead = 0.25 / mapping.unroll
    compute_cycles = n_tiles * (sub_m * sub_n * tk * (1.0 + issue_overhead) + fill)
    bank_boost = min(hw.l1_banks, 2) / 2.0 + 0.5  # 1.0 at 1 bank, 1.5 at >=2
    noc_cycles = noc_bytes / (hw.noc_bw * bank_boost)
    dram_cycles = dram_bytes / tech.dram_bw_bytes_per_cycle
    latency_cycles = max(compute_cycles, noc_cycles, dram_cycles) + _STARTUP_CYCLES
    latency_s = latency_cycles / tech.frequency_hz

    # --- energy ----------------------------------------------------------------
    macs = shape.macs
    reg_bytes = 2.0 * macs * op_b
    l1_access_bytes = reg_bytes / 4.0 + noc_bytes
    l2_access_bytes = noc_bytes + dram_bytes
    energy_j = (
        macs * tech.mac_energy_j
        + reg_bytes * tech.reg_energy_per_byte_j
        + l1_access_bytes * tech.l1_energy_per_byte(hw.l1_bytes)
        + l2_access_bytes * tech.l2_energy_per_byte(hw.l2_bytes)
        + dram_bytes * tech.dram_energy_per_byte_j
    )

    return LayerPPA(
        latency_s=latency_s,
        energy_j=energy_j,
        feasible=True,
        compute_cycles=compute_cycles,
        noc_cycles=noc_cycles,
        dram_cycles=dram_cycles,
        dram_bytes=dram_bytes,
    )


def evaluate_network(
    hw: SpatialHWConfig,
    layer_shapes: Dict[str, Tuple[GemmShape, int]],
    mappings: Dict[str, GemmMapping],
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> NetworkPPA:
    """Aggregate PPA for a network.

    Parameters
    ----------
    layer_shapes:
        ``layer name -> (GemmShape, repetition count)``.
    mappings:
        ``layer name -> GemmMapping``; must cover every layer.
    """
    area = spatial_area_mm2(hw, tech)
    total_latency = 0.0
    total_energy = 0.0
    feasible = True
    layer_results: Dict[str, LayerPPA] = {}
    for name, (shape, count) in layer_shapes.items():
        mapping = mappings.get(name)
        if mapping is None:
            result = LayerPPA(
                latency_s=float("inf"),
                energy_j=float("inf"),
                feasible=False,
                infeasible_reason=f"no mapping for layer {name!r}",
            )
        else:
            result = analyze_gemm(hw, mapping, shape, tech)
        layer_results[name] = result
        if not result.feasible:
            feasible = False
            continue
        total_latency += count * result.latency_s
        total_energy += count * result.energy_j
    if not feasible or total_latency <= 0.0:
        return NetworkPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            power_w=float("inf"),
            area_mm2=area,
            feasible=False,
            layer_results=layer_results,
        )
    leakage_w = tech.leakage_w_per_mm2 * area
    power_w = total_energy / total_latency + leakage_w
    return NetworkPPA(
        latency_s=total_latency,
        energy_j=total_energy,
        power_w=power_w,
        area_mm2=area,
        feasible=True,
        layer_results=layer_results,
    )
