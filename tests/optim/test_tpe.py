"""Tests for the TPE sampler."""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.hw import edge_design_space
from repro.optim.tpe import ParzenEstimator, TPESampler


@pytest.fixture()
def space():
    return edge_design_space()


class TestParzenEstimator:
    def test_density_peaks_at_data(self):
        points = np.array([[0.2, 0.2], [0.25, 0.2]])
        kde = ParzenEstimator(points)
        near = kde.log_density(np.array([[0.22, 0.2]]))[0]
        far = kde.log_density(np.array([[0.9, 0.9]]))[0]
        assert near > far

    def test_samples_near_data(self, rng):
        points = np.full((5, 3), 0.5)
        kde = ParzenEstimator(points)
        draws = kde.sample(200, rng)
        assert np.all((draws >= 0) & (draws <= 1))
        assert abs(draws.mean() - 0.5) < 0.1

    def test_empty_rejected(self):
        with pytest.raises(SurrogateError):
            ParzenEstimator(np.zeros((0, 2)))


class TestTPESampler:
    def _score(self, space, config):
        """Smooth scalar: low when the first two dims are low."""
        x = space.encode(config)
        return float(x[0] + x[1])

    def test_random_before_min_observations(self, space):
        sampler = TPESampler(space, min_observations=10, seed=0)
        configs = space.sample_batch(4, seed=0)
        scores = np.array([self._score(space, c) for c in configs])
        suggestions = sampler.suggest(configs, scores, count=3)
        assert len(suggestions) == 3

    def test_split_good_fraction(self, space):
        sampler = TPESampler(space, gamma=0.25, seed=0)
        scores = np.arange(20, dtype=float)
        good, bad = sampler.split(scores)
        assert good.size == 5
        assert bad.size == 15
        assert scores[good].max() < scores[bad].min()

    def test_split_ignores_infinite(self, space):
        sampler = TPESampler(space, seed=0)
        scores = np.array([1.0, np.inf, 0.5, np.inf, 2.0])
        good, bad = sampler.split(scores)
        assert not np.isinf(scores[np.concatenate([good, bad])]).any()

    def test_model_guides_toward_good_region(self, space):
        """TPE suggestions score better than uniform random on average."""
        rng = np.random.default_rng(3)
        configs = space.sample_batch(80, seed=1)
        scores = np.array([self._score(space, c) for c in configs])
        sampler = TPESampler(space, seed=2, num_candidates=128)
        suggestions = sampler.suggest(configs, scores, count=12)
        suggested = np.mean([self._score(space, c) for c in suggestions])
        random_configs = space.sample_batch(200, seed=4)
        random_mean = np.mean([self._score(space, c) for c in random_configs])
        assert suggested < random_mean

    def test_invalid_gamma(self, space):
        with pytest.raises(SurrogateError):
            TPESampler(space, gamma=0.0)

    def test_suggestions_in_space(self, space):
        configs = space.sample_batch(30, seed=5)
        scores = np.array([self._score(space, c) for c in configs])
        sampler = TPESampler(space, seed=6)
        for config in sampler.suggest(configs, scores, count=5):
            assert space.contains(config)


class TestMobohbWithTPE:
    def test_end_to_end(self, tiny_network, edge_space):
        from repro.core import MobohbBaseline, MobohbConfig
        from repro.costmodel import MaestroEngine

        engine = MaestroEngine(tiny_network)
        optimizer = MobohbBaseline(
            edge_space,
            tiny_network,
            engine,
            MobohbConfig(
                max_budget=9,
                eta=3.0,
                max_hyperband_loops=2,
                min_observations=3,
                model="tpe",
            ),
            power_cap_w=100.0,
            seed=1,
        )
        result = optimizer.optimize()
        assert result.total_hw_evaluated > 0
        assert len(result.pareto) >= 1
