"""Tests for the crash-safe JSONL event journal."""

import json

import pytest

from repro.errors import TrackingError
from repro.tracking.journal import (
    EventJournal,
    read_events,
    verify_sequence,
)


class TestAppendRead:
    def test_round_trip_preserves_order_and_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for i in range(5):
                seq = journal.append("iteration_start", {"iteration": i})
                assert seq == i
        scan = read_events(path)
        assert len(scan.events) == 5
        assert [e["seq"] for e in scan.events] == list(range(5))
        assert [e["iteration"] for e in scan.events] == list(range(5))
        assert scan.last_seq == 4
        assert not scan.truncated_tail
        verify_sequence(scan)

    def test_unknown_event_type_rejected(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        with pytest.raises(TrackingError):
            journal.append("made_up_event", {})

    def test_numpy_payloads_serialize(self, tmp_path):
        import numpy as np

        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append(
                "evaluation",
                {"objectives": np.array([1.5, 2.5]), "count": np.int64(3)},
            )
        event = read_events(path).events[0]
        assert event["objectives"] == [1.5, 2.5]
        assert event["count"] == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrackingError):
            read_events(tmp_path / "nope.jsonl")


class TestCrashSafety:
    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"a": 1})
            journal.append("iteration_start", {"iteration": 0})
        # simulate a kill mid-write: a partial line with no newline
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        scan = read_events(path)
        assert len(scan.events) == 2
        assert scan.truncated_tail
        verify_sequence(scan)

    def test_corrupt_middle_line_stops_scan(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"seq": 0, "type": "run_start"}),
            "{not json at all",
            json.dumps({"seq": 2, "type": "run_end"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        scan = read_events(path)
        assert len(scan.events) == 1
        assert scan.truncated_tail

    def test_append_is_one_complete_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"x": "y"})
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_fsync_mode_writes_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path, fsync=True) as journal:
            journal.append("run_start", {})
        assert len(read_events(path).events) == 1


class TestResumeSequencing:
    def test_open_resume_continues_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with EventJournal.open_resume(path) as journal:
            seq = journal.append("resume", {})
        assert seq == 2
        scan = read_events(path)
        verify_sequence(scan)
        assert scan.events[-1]["type"] == "resume"

    def test_open_resume_skips_truncated_tail_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 1, "type": "run_e')
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1

    def test_open_resume_truncates_partial_tail_before_append(self, tmp_path):
        """Post-resume appends must not weld onto crash-partial bytes —
        the journal has to be fully readable again afterwards."""
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        with EventJournal.open_resume(path) as journal:
            journal.append("resume", {})
            journal.append("iteration_start", {"iteration": 1})
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["type"] for e in scan.events] == [
            "run_start",
            "iteration_start",
            "resume",
            "iteration_start",
        ]
        verify_sequence(scan)

    def test_open_resume_truncates_mid_file_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b"{garbage line\n")
            handle.write(
                b'{"seq": 99, "type": "run_end"}\n'
            )  # untrustworthy: follows corruption
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["seq"] for e in scan.events] == [0, 1]
        verify_sequence(scan)

    def test_verify_sequence_rejects_gap(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "type": "run_start"})
            + "\n"
            + json.dumps({"seq": 5, "type": "run_end"})
            + "\n"
        )
        with pytest.raises(TrackingError):
            verify_sequence(read_events(path))


class TestConcurrency:
    def test_threaded_appends_interleave_whole_lines(self, tmp_path):
        import threading

        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)

        def writer(tag):
            for _ in range(50):
                journal.append("evaluation", {"tag": tag, "pad": "x" * 200})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        scan = read_events(path)
        assert len(scan.events) == 200
        assert not scan.truncated_tail
        verify_sequence(scan)
