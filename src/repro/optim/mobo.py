"""Multi-objective Bayesian optimization batch sampler (qParEGO style).

Section 3.2: "we sample a batch of N hardware candidates.  Each HW is
sampled with an acquisition function that balances exploration and
exploitation".  This module implements that step:

1. normalize the training objectives (whatever subset the high-fidelity
   update rule admitted) to [0, 1],
2. fit GP hyperparameters once per iteration on a uniform scalarization
   (analytic-gradient marginal likelihood),
3. draw one candidate pool of random configurations plus mutations of
   incumbent Pareto members and encode it once,
4. for each of the N batch slots, draw a random ParEGO weight vector,
   scalarize the training objectives, and maximize Expected Improvement
   over the pool, masking out already-selected candidates,
5. de-duplicate against observed and already-selected configurations.

Random weight vectors give the batch its diversity (each slot optimizes a
different trade-off direction), the EI gives each slot its exploration/
exploitation balance.

The heavy math is structure-of-arrays NumPy over the whole pool: the
kernel Cholesky is factorized once and shared by every slot's scalarized
GP, the pool cross-kernel / posterior variance are computed once, and EI
is evaluated on the full ``(slots, pool)`` matrix.  A slot-by-slot scalar
path (``vectorized=False``) runs the same algorithm through the plain
:class:`~repro.optim.gp.GaussianProcess` fit/predict calls; the two paths
are bit-identical under a fixed seed (``tests/optim/test_mobo_vectorized``
asserts it).  The pre-rewrite implementation survives as
:mod:`repro.optim.mobo_legacy` for the outer-loop benchmark baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SurrogateError
from repro.hw.space import DiscreteDesignSpace
from repro.obs.trace import NULL_TRACER
from repro.optim.acquisition import expected_improvement
from repro.optim.gp import GaussianProcess, GPHyperparameters, factorize
from repro.optim.scalarize import parego_scalars, sample_weight_vector, uniform_weights
from repro.utils.rng import SeedLike, as_generator


class MOBOSampler:
    """Batched hardware sampler guided by a GP surrogate."""

    def __init__(
        self,
        space: DiscreteDesignSpace,
        num_objectives: int,
        seed: SeedLike = None,
        kernel: str = "matern52",
        rho: float = 0.2,
        pool_size: int = 512,
        min_observations: int = 8,
        vectorized: bool = True,
    ):
        self.space = space
        self.num_objectives = num_objectives
        self.rng = as_generator(seed)
        self.kernel = kernel
        self.rho = rho
        self.pool_size = pool_size
        self.min_observations = min_observations
        #: structure-of-arrays acquisition (default) vs the slot-by-slot
        #: scalar path; both run the same algorithm and are bit-identical
        self.vectorized = vectorized
        self._shared_hyper: Optional[GPHyperparameters] = None
        #: span tracer; a traced co-optimizer installs its own at run start
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ pools
    def _candidate_pool(
        self,
        exclude_keys: Set[Tuple],
        incumbents: Sequence,
    ) -> List:
        """Random configs + local mutations of incumbents, de-duplicated.

        Drawn once per :meth:`suggest_batch` call (every slot selects from
        the same pool).  The random part samples grid-index rows in
        batched generator calls instead of one config at a time.
        """
        pool: List = []
        keys = set(exclude_keys)
        attempts = 0
        target_random = self.pool_size
        max_attempts = 20 * target_random
        while len(pool) < target_random and attempts < max_attempts:
            need = min(target_random - len(pool), max_attempts - attempts)
            index_rows = self.space.sample_indices(need, self.rng)
            attempts += need
            for row in index_rows:
                key = self.space.key_from_indices(row)
                if key not in keys:
                    keys.add(key)
                    pool.append(self.space.config_from_indices(row))
        for incumbent in incumbents:
            for _ in range(4):
                candidate = self.space.mutate(incumbent, self.rng, num_moves=1)
                key = self.space.config_key(candidate)
                if key not in keys:
                    keys.add(key)
                    pool.append(candidate)
        return pool

    # ---------------------------------------------------------------- suggest
    def suggest_batch(
        self,
        train_configs: Sequence,
        train_objectives: np.ndarray,
        batch_size: int,
        incumbents: Sequence = (),
    ) -> List:
        """Propose ``batch_size`` new configurations.

        Parameters
        ----------
        train_configs / train_objectives:
            The (high-fidelity) surrogate training set; objectives must be
            normalized to a shared scale and finite.
        incumbents:
            Current Pareto-front configurations, used to bias part of the
            candidate pool toward local refinement.
        """
        observed_keys = {self.space.config_key(c) for c in train_configs}
        if len(train_configs) < self.min_observations:
            return self._random_batch(batch_size, observed_keys)

        x_train = self.space.encode_batch(train_configs)
        y_train = np.asarray(train_objectives, dtype=float)
        if y_train.ndim != 2 or y_train.shape[1] != self.num_objectives:
            raise ValueError(
                f"expected objectives of shape (n, {self.num_objectives}), "
                f"got {y_train.shape}"
            )

        # one marginal-likelihood optimization per iteration, shared across slots
        with self.tracer.span("gp_fit", train_size=len(train_configs)):
            uniform_scalar = parego_scalars(
                y_train, uniform_weights(self.num_objectives), self.rho
            )
            shared_gp = GaussianProcess(self.kernel)
            shared_gp.fit(
                x_train,
                uniform_scalar,
                seed=int(self.rng.integers(0, 2**31)),
                num_restarts=1,
            )
            self._shared_hyper = shared_gp.hyper

        # one pool per iteration, encoded once; every slot selects from it
        with self.tracer.span("candidate_pool"):
            pool = self._candidate_pool(observed_keys, incumbents)
        batch: List = []
        if pool:
            x_pool = self.space.encode_batch(pool)
            slots = min(batch_size, len(pool))
            with self.tracer.span("acquisition", slots=slots, pool=len(pool)):
                factor = factorize(self.kernel, x_train, self._shared_hyper)
                select = (
                    self._select_vectorized
                    if self.vectorized
                    else self._select_reference
                )
                chosen = select(factor, x_pool, y_train, slots)
            batch = [pool[index] for index in chosen]
        # top up with randoms if the pool could not fill the batch
        if len(batch) < batch_size:
            batch_keys = {self.space.config_key(c) for c in batch}
            batch.extend(
                self._random_batch(
                    batch_size - len(batch), observed_keys | batch_keys
                )
            )
        return batch

    # ----------------------------------------------------- slot acquisition
    def _select_vectorized(
        self,
        factor,
        x_pool: np.ndarray,
        y_train: np.ndarray,
        slots: int,
    ) -> List[int]:
        """SoA acquisition: all slots' EI over the pool in matrix form.

        Shares one Cholesky factor, one pool cross-kernel, and one
        posterior-variance computation across the slots; only the
        scalarization-dependent pieces (alpha solve, posterior mean, y
        scaling) run per slot, each a cheap :math:`O(n^2)` /
        :math:`O(n \\cdot |pool|)` operation.
        """
        hyper = factor.hyper
        chol = factor.chol
        weights = [
            sample_weight_vector(self.num_objectives, self.rng)
            for _ in range(slots)
        ]
        # pool posterior pieces shared by every slot (same X, same hyper)
        kernel = GaussianProcess(self.kernel).kernel
        k_star = kernel(x_pool, factor.x, hyper.lengthscales, hyper.variance)
        v = np.linalg.solve(chol, k_star.T)
        var = np.maximum(hyper.variance - np.sum(v**2, axis=0), 1e-12)
        sqrt_var = np.sqrt(var)

        means = np.empty((slots, x_pool.shape[0]))
        stds = np.empty_like(means)
        best = np.empty(slots)
        for k, w in enumerate(weights):
            scalar = parego_scalars(y_train, w, self.rho)
            if not np.all(np.isfinite(scalar)):
                raise SurrogateError("GP training data must be finite")
            y_mean = float(scalar.mean())
            y_sd = float(scalar.std()) if scalar.std() > 1e-12 else 1.0
            alpha = np.linalg.solve(
                chol.T, np.linalg.solve(chol, (scalar - y_mean) / y_sd)
            )
            means[k] = (k_star @ alpha) * y_sd + y_mean
            stds[k] = sqrt_var * y_sd
            best[k] = float(scalar.min())
        ei = expected_improvement(means, stds, best=best[:, None])
        return self._mask_argmax(ei)

    def _select_reference(
        self,
        factor,
        x_pool: np.ndarray,
        y_train: np.ndarray,
        slots: int,
    ) -> List[int]:
        """Slot-by-slot scalar path: one GP refit + predict + EI per slot.

        Runs the identical algorithm through the plain
        :class:`GaussianProcess` API; kept as the bit-exactness reference
        for the vectorized path (and exercised by the parity tests).
        """
        rows = []
        for _ in range(slots):
            w = sample_weight_vector(self.num_objectives, self.rng)
            scalar = parego_scalars(y_train, w, self.rho)
            gp = GaussianProcess(self.kernel)
            gp.fit(factor.x, scalar, hyper=factor.hyper)
            mean, std = gp.predict(x_pool)
            rows.append(
                expected_improvement(mean, std, best=float(scalar.min()))
            )
        return self._mask_argmax(np.vstack(rows))

    @staticmethod
    def _mask_argmax(ei: np.ndarray) -> List[int]:
        """Sequential per-slot argmax, masking already-selected candidates."""
        chosen: List[int] = []
        for row in ei:
            if chosen:
                row = row.copy()
                row[chosen] = -np.inf
            chosen.append(int(np.argmax(row)))
        return chosen

    def _random_batch(self, count: int, exclude_keys: Set[Tuple]) -> List:
        batch: List = []
        keys = set(exclude_keys)
        attempts = 0
        while len(batch) < count and attempts < max(1000, 100 * count):
            candidate = self.space.sample(self.rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                batch.append(candidate)
            attempts += 1
        return batch

    def predict_objectives(
        self,
        train_configs: Sequence,
        train_objectives: np.ndarray,
        query_configs: Sequence,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std per objective at ``query_configs``.

        Fits one GP per objective column, reusing the shared
        hyperparameters of the most recent :meth:`suggest_batch` when
        available — so diagnostics probe the same surrogate the search
        actually used; before any batch has been suggested each column
        falls back to its own marginal-likelihood fit.
        """
        x_train = self.space.encode_batch(train_configs)
        y_train = np.asarray(train_objectives, dtype=float)
        x_query = self.space.encode_batch(query_configs)
        means = np.zeros((x_query.shape[0], self.num_objectives))
        stds = np.zeros_like(means)
        shared = (
            factorize(self.kernel, x_train, self._shared_hyper)
            if self._shared_hyper is not None
            else None
        )
        for j in range(self.num_objectives):
            gp = GaussianProcess(self.kernel)
            if shared is not None:
                gp.fit(x_train, y_train[:, j], factor=shared)
            else:
                gp.fit(x_train, y_train[:, j], seed=j, num_restarts=1)
            means[:, j], stds[:, j] = gp.predict(x_query)
        return means, stds
