"""Software mapping representation and search tools.

The inner level of the bi-level co-optimization: given a fixed hardware
configuration, find per-layer :class:`GemmMapping` schedules minimizing the
network objective.  All tools implement the anytime/resumable contract of
:class:`AnytimeMappingSearch` so successive halving can budget them in
rounds.

* :class:`FlexTensorSearch` — simulated annealing + adaptive layer credit
  (the open-source platform's default, as in the paper),
* :class:`GammaSearch` — genetic (mu + lambda) evolution,
* :class:`RandomMappingSearch` — control baseline,
* :class:`DepthFirstFusionSearch` (:mod:`repro.mapping.fusion`) — the
  Ascend-like platform's depth-first buffer-fusion tool.
"""

from repro.mapping.base import AnytimeMappingSearch, MappingSearchPoint
from repro.mapping.cosa import CosaMapper, construct_mapping
from repro.mapping.exhaustive import ExhaustiveResult, enumerate_layer, optimal_network_mapping
from repro.mapping.flextensor import FlexTensorSearch
from repro.mapping.fusion import DepthFirstFusionSearch
from repro.mapping.gamma import GammaSearch
from repro.mapping.gemm_mapping import (
    LOOP_ORDERS,
    SPATIAL_CHOICES,
    UNROLL_CHOICES,
    GemmMapping,
    GemmMappingSpace,
    NetworkMapping,
    default_network_mapping,
)
from repro.mapping.random_search import RandomMappingSearch

__all__ = [
    "CosaMapper",
    "construct_mapping",
    "ExhaustiveResult",
    "enumerate_layer",
    "optimal_network_mapping",
    "AnytimeMappingSearch",
    "MappingSearchPoint",
    "FlexTensorSearch",
    "GammaSearch",
    "RandomMappingSearch",
    "DepthFirstFusionSearch",
    "GemmMapping",
    "GemmMappingSpace",
    "NetworkMapping",
    "default_network_mapping",
    "LOOP_ORDERS",
    "SPATIAL_CHOICES",
    "UNROLL_CHOICES",
]
