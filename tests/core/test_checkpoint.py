"""Tests for UNICO checkpoint/resume."""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError


def _fresh(tiny_network, edge_space, max_iterations=4, include_robustness=True):
    engine = MaestroEngine(tiny_network)
    return Unico(
        edge_space,
        tiny_network,
        engine,
        UnicoConfig(
            batch_size=4,
            max_iterations=max_iterations,
            max_budget=16,
            include_robustness=include_robustness,
        ),
        power_cap_w=100.0,
        seed=21,
    )


class TestCheckpointRoundTrip:
    def test_resume_equals_uninterrupted(self, tiny_network, edge_space, tmp_path):
        """2 iterations + checkpoint + 2 resumed iterations evaluates the
        same batches as 4 uninterrupted iterations."""
        path = tmp_path / "ckpt.json"
        straight = _fresh(tiny_network, edge_space, max_iterations=4)
        straight_result = straight.optimize()

        first = _fresh(tiny_network, edge_space, max_iterations=2)
        first.optimize()
        save_checkpoint(first, path)

        resumed = _fresh(tiny_network, edge_space, max_iterations=4)
        load_checkpoint(resumed, path)
        resumed_result = resumed.optimize()

        assert resumed_result.total_hw_evaluated == straight_result.total_hw_evaluated
        straight_points = sorted(map(tuple, straight_result.pareto.points.tolist()))
        resumed_points = sorted(map(tuple, resumed_result.pareto.points.tolist()))
        assert resumed_points == straight_points
        assert resumed_result.total_time_s == pytest.approx(
            straight_result.total_time_s, rel=1e-9
        )

    def test_training_set_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert len(restored.train_configs) == len(original.train_configs)
        keys_a = {edge_space.config_key(c) for c in original.train_configs}
        keys_b = {edge_space.config_key(c) for c in restored.train_configs}
        assert keys_a == keys_b
        assert np.allclose(
            np.vstack(restored.train_objectives_raw),
            np.vstack(original.train_objectives_raw),
        )

    def test_selector_state_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert restored.selector.uul == original.selector.uul
        assert restored.selector.best_scalar == original.selector.best_scalar

    def test_timeline_and_records_restored(self, tiny_network, edge_space, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=2)
        original.optimize()
        save_checkpoint(original, path)
        restored = _fresh(tiny_network, edge_space, max_iterations=2)
        load_checkpoint(restored, path)
        assert len(restored.timeline) == len(original.timeline)
        assert len(restored.iteration_records) == 2

    def test_objective_count_mismatch_rejected(
        self, tiny_network, edge_space, tmp_path
    ):
        path = tmp_path / "ckpt.json"
        original = _fresh(tiny_network, edge_space, max_iterations=1)
        original.optimize()
        save_checkpoint(original, path)
        incompatible = _fresh(
            tiny_network, edge_space, max_iterations=1, include_robustness=False
        )
        with pytest.raises(ConfigurationError):
            load_checkpoint(incompatible, path)

    def test_bad_version_rejected(self, tiny_network, edge_space, tmp_path):
        import json

        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 99}))
        fresh = _fresh(tiny_network, edge_space)
        with pytest.raises(ConfigurationError):
            load_checkpoint(fresh, path)
