"""NSGA-II co-design baseline.

The evolutionary comparison of Section 4.2: hardware configurations are the
genomes, fitness is the (latency, power, area) vector obtained by running a
fixed-budget software-mapping search per individual.  Serial evaluation
with clock charging per individual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.base import CoOptimizer, CoSearchResult
from repro.optim.nsga2 import NSGA2


@dataclass
class NSGA2CodesignConfig:
    """Knobs of the NSGA-II co-design baseline."""

    population_size: int = 20
    max_generations: int = 6
    eval_budget: int = 300
    time_budget_s: Optional[float] = None
    crossover_prob: float = 0.9
    mutation_prob: float = 0.3


class NSGA2Codesign(CoOptimizer):
    """NSGA-II over hardware with fixed-budget SW search fitness."""

    method_name = "nsgaii"

    def __init__(
        self, space, network, engine, config: Optional[NSGA2CodesignConfig] = None, **kwargs
    ):
        super().__init__(space, network, engine, include_robustness=False, **kwargs)
        self.config = config or NSGA2CodesignConfig()
        self.engine.charge_clock = False
        self._ga = NSGA2(
            space,
            evaluate=self._evaluate_hw,
            population_size=self.config.population_size,
            seed=self.seeds.generator("nsga2"),
            crossover_prob=self.config.crossover_prob,
            mutation_prob=self.config.mutation_prob,
        )

    def _evaluate_hw(self, hw) -> np.ndarray:
        trial = self.new_trial(hw)
        trial.run(self.config.eval_budget)
        self.clock.advance(
            trial.queries_spent * self.engine.eval_cost_s, label="sw-search"
        )
        evaluation = self.finish_candidate(trial)
        return evaluation.objectives

    def optimize(self) -> CoSearchResult:
        config = self.config
        self._ga.initialize()
        for _generation in range(config.max_generations):
            if (
                config.time_budget_s is not None
                and self.clock.now_s >= config.time_budget_s
            ):
                break
            self._ga.step()
        return self.make_result(
            extras={
                "generations": self._ga.generation,
                "ga_evaluations": self._ga.num_evaluations,
            }
        )
