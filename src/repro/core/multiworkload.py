"""Multi-workload co-optimization (Fig. 6a).

"Parallel implementation of UNICO algorithm to support multi-workload
HW-SW co-optimization": for each sampled hardware configuration, one SW
mapping search **job per workload** runs in parallel; the configuration's
quality aggregates the per-workload outcomes.

Two deliverables here:

* :class:`MultiWorkloadEngine` — a composite facade over one PPA engine
  per workload (shared simulated clock), satisfying the accounting surface
  co-optimizers rely on (``num_queries``, ``eval_cost_s``, ``charge_clock``,
  ``area_mm2``).
* :class:`MultiWorkloadTrial` — the job bundle: drop-in replacement for
  :class:`~repro.core.evaluation.SWSearchTrial` whose ``run(b)`` advances
  *every* workload's search by ``b`` evaluations (jobs execute in parallel
  in the deployment; the co-optimizer's makespan accounting covers this via
  the trial's total query count), and whose aggregate PPA sums latency and
  energy across workloads.

Use :func:`multi_workload_trial_factory` as the ``trial_factory`` of any
co-optimizer; the merged-network alternative (one search over concatenated
layers) remains available via
:func:`repro.workloads.network.merge_networks`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.evaluation import make_search_tool
from repro.core.robustness import RobustnessResult, robustness_metric
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import NetworkPPA
from repro.errors import ConfigurationError
from repro.utils.clock import SimulatedClock
from repro.utils.rng import spawn_generators
from repro.workloads.network import Network, merge_networks


class MultiWorkloadEngine:
    """Composite accounting facade over one engine per workload."""

    def __init__(self, engines: Dict[str, PPAEngine]):
        if not engines:
            raise ConfigurationError("need at least one per-workload engine")
        self.engines = dict(engines)
        first = next(iter(self.engines.values()))
        self.clock: SimulatedClock = first.clock
        for engine in self.engines.values():
            engine.clock = self.clock  # one shared clock
        self.eval_cost_s = first.eval_cost_s
        self.tech = first.tech
        self.metrics = first.metrics
        for engine in self.engines.values():
            engine.metrics = self.metrics  # one shared registry
        self.network = merge_networks(
            "+".join(sorted(self.engines)),
            [engine.network for engine in self.engines.values()],
        )

    @property
    def num_queries(self) -> int:
        return sum(engine.num_queries for engine in self.engines.values())

    def stats(self) -> Dict:
        """Aggregate operational statistics across the per-workload engines."""
        per_workload = {
            name: engine.stats() for name, engine in sorted(self.engines.items())
        }
        return {
            "engine": type(self).__name__,
            "workload": self.network.name,
            "num_queries": self.num_queries,
            "workloads": per_workload,
        }

    @property
    def charge_clock(self) -> bool:
        return next(iter(self.engines.values())).charge_clock

    @charge_clock.setter
    def charge_clock(self, value: bool) -> None:
        for engine in self.engines.values():
            engine.charge_clock = value

    def area_mm2(self, hw) -> float:
        return next(iter(self.engines.values())).area_mm2(hw)


@dataclass
class _SearchView:
    """The minimal 'search' surface co-optimizers read from a trial."""

    best_mapping: Dict
    history: List


class MultiWorkloadTrial:
    """One hardware candidate's bundle of per-workload SW-search jobs."""

    def __init__(
        self,
        hw,
        engine: MultiWorkloadEngine,
        tool: str = "flextensor",
        objective: str = "latency",
        seed=None,
    ):
        self.hw = hw
        self.engine = engine
        names = sorted(engine.engines)
        rngs = spawn_generators(seed, len(names), name="multi-workload")
        queries_before = engine.num_queries
        self.searches = {
            name: make_search_tool(
                tool,
                engine.engines[name].network,
                hw,
                engine.engines[name],
                objective,
                seed=rng,
            )
            for name, rng in zip(names, rngs)
        }
        self.queries_spent = engine.num_queries - queries_before

    # ------------------------------------------------------------------- runs
    def run(self, additional_budget: int) -> "MultiWorkloadTrial":
        """Advance every workload's job by ``additional_budget`` steps."""
        queries_before = self.engine.num_queries
        for search in self.searches.values():
            search.run(additional_budget)
        self.queries_spent += self.engine.num_queries - queries_before
        return self

    @property
    def spent_budget(self) -> int:
        return max(search.spent_budget for search in self.searches.values())

    def best_curve(self) -> np.ndarray:
        """Sum of per-workload best-so-far objectives, step-aligned."""
        curves = [search.best_curve() for search in self.searches.values()]
        if not curves or min(len(c) for c in curves) == 0:
            return np.array([])
        length = min(len(c) for c in curves)
        return np.sum([c[:length] for c in curves], axis=0)

    # ------------------------------------------------------------------ views
    @property
    def best_ppa(self) -> NetworkPPA:
        """Aggregate: latencies and energies add; power over the total run."""
        total_latency = 0.0
        total_energy = 0.0
        feasible = True
        for name, search in self.searches.items():
            ppa = search.best_ppa
            if not ppa.feasible:
                feasible = False
                break
            total_latency += ppa.latency_s
            total_energy += ppa.energy_j
        area = self.engine.area_mm2(self.hw)
        if not feasible or total_latency <= 0:
            return NetworkPPA(
                latency_s=float("inf"),
                energy_j=float("inf"),
                power_w=float("inf"),
                area_mm2=area,
                feasible=False,
            )
        leakage = self.engine.tech.leakage_w_per_mm2 * area
        return NetworkPPA(
            latency_s=total_latency,
            energy_j=total_energy,
            power_w=total_energy / total_latency + leakage,
            area_mm2=area,
            feasible=True,
        )

    def robustness(self, alpha: float = 0.05) -> RobustnessResult:
        """Worst-case sensitivity across workloads.

        A hardware is only as robust as its most mapping-sensitive
        workload, so the aggregate takes the maximum finite R (infinite if
        any workload never reached feasibility).
        """
        results = [
            robustness_metric(search.history, alpha=alpha)
            for search in self.searches.values()
        ]
        for result in results:
            if not result.finite:
                return result
        return max(results, key=lambda result: result.r_value)

    @property
    def search(self) -> _SearchView:
        merged_mapping = {
            f"{name}.{layer}": mapping
            for name, search in self.searches.items()
            for layer, mapping in search.best_mapping.items()
        }
        merged_history = [
            point for search in self.searches.values() for point in search.history
        ]
        return _SearchView(best_mapping=merged_mapping, history=merged_history)


def multi_workload_trial_factory(
    networks: Sequence[Network],
    engine_factory: Callable[[Network, SimulatedClock], PPAEngine],
    tool: str = "flextensor",
    objective: str = "latency",
    clock: Optional[SimulatedClock] = None,
):
    """Build (engine, factory) for multi-workload co-optimization.

    Returns ``(MultiWorkloadEngine, trial_factory)`` ready to pass to a
    co-optimizer::

        engine, factory = multi_workload_trial_factory(
            nets, lambda net, clock: MaestroEngine(net, clock=clock))
        unico = Unico(space, engine.network, engine, config,
                      trial_factory=factory, ...)
    """
    if not networks:
        raise ConfigurationError("need at least one workload")
    shared_clock = clock if clock is not None else SimulatedClock()
    engines = {
        network.name: engine_factory(network, shared_clock)
        for network in networks
    }
    composite = MultiWorkloadEngine(engines)

    def factory(hw, seed_rng) -> MultiWorkloadTrial:
        return MultiWorkloadTrial(
            hw, composite, tool=tool, objective=objective, seed=seed_rng
        )

    return composite, factory
