"""``repro.obs`` — observability: span tracing, run profiling, Prometheus.

The time-attribution layer over the co-search stack.  Flat counters
(:mod:`repro.utils.metrics`) and discrete journal events
(:mod:`repro.tracking`) say *what* happened; this package says *where
the time went*:

* :mod:`repro.obs.trace` — hierarchical :class:`Span`/:class:`Tracer`
  with dual wall/simulated timestamps and pluggable sinks.
* :mod:`repro.obs.chrome` — Chrome-trace-event JSON export
  (``runs/<run-id>/trace.json``, loadable in Perfetto).
* :mod:`repro.obs.profile` — per-phase breakdown behind
  ``repro runs profile``.
* :mod:`repro.obs.prom` — Prometheus text exposition and its validating
  parser, behind ``GET /metrics?format=prom`` and ``repro stats --prom``.
* :mod:`repro.obs.timeseries` — append-only crash-safe metrics journal
  per scrape target with windowed queries (``rate``/``increase``/
  quantile-from-histogram), behind the hub's scrape loop.
* :mod:`repro.obs.alerts` — declarative SLO rules with ``for:`` holds
  and hysteresis, evaluated each scrape tick over the store.
"""

from repro.obs.alerts import Alert, AlertManager, Rule, builtin_rules
from repro.obs.chrome import (
    ChromeTraceSink,
    spans_to_trace_events,
    write_chrome_trace,
)
from repro.obs.profile import (
    RunProfile,
    build_profile,
    render_profile,
    spans_from_journal,
)
from repro.obs.prom import (
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.timeseries import (
    MetricsStore,
    counter_increase,
    flatten_families,
    histogram_quantile,
    series_key,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_SCHEMA_VERSION,
    InMemorySink,
    JournalSpanSink,
    NullTracer,
    Span,
    SpanSink,
    Tracer,
    format_trace_context,
    parse_trace_context,
)

__all__ = [
    "NULL_TRACER",
    "SPAN_SCHEMA_VERSION",
    "Alert",
    "AlertManager",
    "ChromeTraceSink",
    "InMemorySink",
    "JournalSpanSink",
    "MetricsStore",
    "NullTracer",
    "Rule",
    "RunProfile",
    "Span",
    "SpanSink",
    "Tracer",
    "build_profile",
    "builtin_rules",
    "counter_increase",
    "flatten_families",
    "format_trace_context",
    "histogram_quantile",
    "parse_prometheus_text",
    "parse_trace_context",
    "render_profile",
    "render_prometheus",
    "sanitize_metric_name",
    "series_key",
    "spans_from_journal",
    "spans_to_trace_events",
    "write_chrome_trace",
]
