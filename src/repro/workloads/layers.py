"""Tensor operator (layer) specifications and GEMM lowering.

The co-optimizer consumes DNN workloads as lists of tensor operators.  Three
operator families cover every network in the paper's evaluation:

* :class:`Conv2D` — the 7D nested loop (N, K, C, Y, X, R, S) of Fig. 1;
* :class:`DepthwiseConv2D` — per-channel convolution (MobileNet, Xception);
* :class:`Gemm` — general matrix multiply (BERT/ViT projections, FC layers).

The open-source platform's hardware intrinsic is ``GEMMCore`` (Section 4.1),
so every operator is lowered to a GEMM via im2col before mapping:

* ``Conv2D``:  M = K,  N = N * Y_out * X_out,  K_dim = C * R * S
* ``DepthwiseConv2D``: one small GEMM per channel, modeled as a single GEMM
  with M = 1 batched over channels (reduced reuse is reflected by the
  ``reuse_penalty`` attribute consumed by the cost model).
* ``Gemm``: itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import WorkloadError
from repro.utils.intmath import round_up_div


@dataclass(frozen=True)
class GemmShape:
    """An M x K_dim matrix times a K_dim x N matrix.

    ``reuse_penalty`` in (0, 1] scales the achievable operand reuse; 1.0 for
    dense GEMM/conv, < 1.0 for depthwise convolutions whose inner reduction
    is too small to amortize operand fetches.
    """

    m: int
    n: int
    k: int
    reuse_penalty: float = 1.0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise WorkloadError(f"GEMM dims must be >= 1, got {(self.m, self.n, self.k)}")
        if not 0.0 < self.reuse_penalty <= 1.0:
            raise WorkloadError(
                f"reuse_penalty must be in (0, 1], got {self.reuse_penalty}"
            )

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.m * self.n * self.k

    @property
    def input_a_elems(self) -> int:
        return self.m * self.k

    @property
    def input_b_elems(self) -> int:
        return self.k * self.n

    @property
    def output_elems(self) -> int:
        return self.m * self.n

    def scaled(self, factor: float) -> "GemmShape":
        """Return a shape with N scaled by ``factor`` (>=1 result dims)."""
        return GemmShape(
            m=self.m,
            n=max(1, int(round(self.n * factor))),
            k=self.k,
            reuse_penalty=self.reuse_penalty,
        )


@dataclass(frozen=True)
class LayerSpec:
    """Base class for one tensor operator occurring ``count`` times."""

    name: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise WorkloadError(f"layer count must be >= 1, got {self.count}")

    def to_gemm(self) -> GemmShape:
        raise NotImplementedError

    @property
    def macs(self) -> int:
        """MACs of one instance of the operator."""
        return self.to_gemm().macs

    @property
    def total_macs(self) -> int:
        """MACs across all ``count`` instances."""
        return self.macs * self.count

    def with_count(self, count: int) -> "LayerSpec":
        return replace(self, count=count)


def conv_out_dim(in_dim: int, kernel: int, stride: int, padding: str) -> int:
    """Output spatial extent of a convolution."""
    if padding == "same":
        return round_up_div(in_dim, stride)
    if padding == "valid":
        if in_dim < kernel:
            raise WorkloadError(
                f"valid conv needs input >= kernel, got {in_dim} < {kernel}"
            )
        return (in_dim - kernel) // stride + 1
    raise WorkloadError(f"unknown padding mode: {padding!r}")


@dataclass(frozen=True)
class Conv2D(LayerSpec):
    """A standard 2D convolution, the 7D loop nest of Fig. 1."""

    batch: int = 1
    in_channels: int = 1
    out_channels: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 1
    stride: int = 1
    padding: str = "same"

    def __post_init__(self) -> None:
        super().__post_init__()
        dims = (
            self.batch,
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.kernel,
            self.stride,
        )
        if min(dims) < 1:
            raise WorkloadError(f"conv dims must be >= 1: {self.name} {dims}")

    @property
    def out_h(self) -> int:
        return conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    def to_gemm(self) -> GemmShape:
        return GemmShape(
            m=self.out_channels,
            n=self.batch * self.out_h * self.out_w,
            k=self.in_channels * self.kernel * self.kernel,
        )


@dataclass(frozen=True)
class DepthwiseConv2D(LayerSpec):
    """Per-channel 2D convolution (MobileNet / Xception separable convs)."""

    batch: int = 1
    channels: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 3
    stride: int = 1
    padding: str = "same"

    def __post_init__(self) -> None:
        super().__post_init__()
        if min(self.batch, self.channels, self.in_h, self.in_w, self.kernel) < 1:
            raise WorkloadError(f"depthwise conv dims must be >= 1: {self.name}")

    @property
    def out_h(self) -> int:
        return conv_out_dim(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return conv_out_dim(self.in_w, self.kernel, self.stride, self.padding)

    def to_gemm(self) -> GemmShape:
        # Each channel is an independent (1 x R*S) @ (R*S x Y*X) GEMM; we fold
        # channels into the M dimension but flag the reduced reduction depth
        # with a reuse penalty so the cost model does not over-credit reuse.
        return GemmShape(
            m=self.channels,
            n=self.batch * self.out_h * self.out_w,
            k=self.kernel * self.kernel,
            reuse_penalty=0.35,
        )


@dataclass(frozen=True)
class Gemm(LayerSpec):
    """A dense matrix multiply: (m x k) @ (k x n)."""

    m: int = 1
    n: int = 1
    k: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if min(self.m, self.n, self.k) < 1:
            raise WorkloadError(f"gemm dims must be >= 1: {self.name}")

    def to_gemm(self) -> GemmShape:
        return GemmShape(m=self.m, n=self.n, k=self.k)


def pointwise_conv(
    name: str,
    in_channels: int,
    out_channels: int,
    h: int,
    w: int,
    count: int = 1,
    stride: int = 1,
) -> Conv2D:
    """Shorthand for a 1x1 convolution."""
    return Conv2D(
        name=name,
        count=count,
        in_channels=in_channels,
        out_channels=out_channels,
        in_h=h,
        in_w=w,
        kernel=1,
        stride=stride,
    )


_ALL_LAYER_TYPES: Tuple[type, ...] = (Conv2D, DepthwiseConv2D, Gemm)
