"""Fleet metrics aggregation, including the 4-replica acceptance test:
the merged exposition must pass the strict Prometheus parser and every
``fleet:*`` counter total must equal the sum of the per-replica scrapes."""

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer
from repro.fleet.client import ShardedPPAEngine
from repro.hub.aggregate import FleetAggregator
from repro.mapping import GemmMapping
from repro.obs.prom import parse_prometheus_text

MAPPINGS = [
    GemmMapping(4, 8, 4),
    GemmMapping(8, 8, 8),
    GemmMapping(16, 16, 8),
    GemmMapping(4, 16, 16),
    GemmMapping(8, 32, 8),
    GemmMapping(16, 8, 16),
]


@pytest.fixture()
def replicas(tiny_network):
    servers = [
        PPAServiceServer(MaestroEngine(tiny_network)) for _ in range(4)
    ]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


def drive_queries(tiny_network, servers, sample_hw):
    """Push real engine work through every replica via the sharded client."""
    sharded = ShardedPPAEngine(
        tiny_network,
        [server.url for server in servers],
        area_fn=spatial_area_mm2,
        timeout_s=2.0,
        max_network_retries=0,
        batch_size=2,
    )
    try:
        sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
    finally:
        sharded.close()


def counter_total(families, name):
    family = families.get(name)
    if family is None:
        return 0.0
    return sum(value for _n, _l, value in family["samples"])


class TestScrape:
    def test_all_replicas_scraped_in_order(self, replicas):
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            scrapes = aggregator.scrape()
        finally:
            aggregator.close()
        assert [s.ok for s in scrapes] == [True] * 4
        assert [s.name for s in scrapes] == aggregator.replica_names

    def test_duplicate_urls_deduplicated(self, replicas):
        url = replicas[0].url
        aggregator = FleetAggregator([url, url, url + "/"])
        try:
            assert len(aggregator.replica_names) == 1
        finally:
            aggregator.close()

    def test_dead_replica_reported_down(self, replicas):
        aggregator = FleetAggregator(
            [replicas[0].url, "http://127.0.0.1:9"]  # port 9: discard
        )
        try:
            scrapes = aggregator.scrape()
        finally:
            aggregator.close()
        assert scrapes[0].ok
        assert not scrapes[1].ok
        assert scrapes[1].error
        assert aggregator.metrics.counter(
            "hub_fleet_scrape_errors_total"
        ).value == 1


class TestMergeAcceptance:
    def test_four_replica_rollup_sums_and_strict_parse(
        self, tiny_network, replicas, sample_hw
    ):
        """Acceptance: strict-parser-valid merged exposition whose
        ``fleet:*`` counter totals equal the sum of per-replica scrapes."""
        drive_queries(tiny_network, replicas, sample_hw)
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            scrapes = aggregator.scrape()
            merged = aggregator.merge(scrapes)
        finally:
            aggregator.close()

        families = parse_prometheus_text(merged)  # raises if invalid

        rollups = [n for n in families if n.startswith("fleet:")]
        assert "fleet:engine_queries_total" in rollups
        for rollup in rollups:
            base = rollup[len("fleet:"):]
            if families[rollup]["type"] != "counter":
                continue
            expected = sum(
                counter_total(scrape.families, base) for scrape in scrapes
            )
            assert counter_total(families, rollup) == pytest.approx(
                expected
            ), rollup
        # the sharded client spread all six mappings across the fleet
        assert counter_total(
            families, "fleet:engine_queries_total"
        ) == len(MAPPINGS)

    def test_replica_label_disambiguates_series(
        self, tiny_network, replicas, sample_hw
    ):
        drive_queries(tiny_network, replicas, sample_hw)
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            merged = aggregator.merge(aggregator.scrape())
        finally:
            aggregator.close()
        families = parse_prometheus_text(merged)
        labels = {
            sample_labels.get("replica")
            for _n, sample_labels, _v in families["engine_queries_total"][
                "samples"
            ]
        }
        # hash routing may leave a replica idle (no series yet), but every
        # series present must name a real replica, and work did spread
        assert labels <= set(aggregator.replica_names)
        assert len(labels) >= 2

    def test_histogram_rollup_stays_cumulative(
        self, tiny_network, replicas, sample_hw
    ):
        drive_queries(tiny_network, replicas, sample_hw)
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            merged = aggregator.merge(aggregator.scrape())
        finally:
            aggregator.close()
        families = parse_prometheus_text(merged)
        rollup_hists = [
            n for n, f in families.items()
            if n.startswith("fleet:") and f["type"] == "histogram"
        ]
        assert rollup_hists  # engine_compute_seconds at minimum

    def test_down_replica_excluded_but_merge_still_valid(
        self, tiny_network, replicas, sample_hw
    ):
        drive_queries(tiny_network, replicas, sample_hw)
        urls = [s.url for s in replicas]
        replicas[0].stop()
        aggregator = FleetAggregator(urls)
        try:
            scrapes = aggregator.scrape()
            merged = aggregator.merge(scrapes)
        finally:
            aggregator.close()
        assert [s.ok for s in scrapes].count(False) == 1
        families = parse_prometheus_text(merged)
        alive_total = sum(
            counter_total(s.families, "engine_queries_total")
            for s in scrapes if s.ok
        )
        assert counter_total(
            families, "fleet:engine_queries_total"
        ) == pytest.approx(alive_total)

    def test_merge_is_deterministic(self, replicas):
        """Merging the same scrapes twice is byte-identical — family and
        sample ordering is sorted, never dict-order dependent."""
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            scrapes = aggregator.scrape()
            assert aggregator.merge(scrapes) == aggregator.merge(scrapes)
        finally:
            aggregator.close()

    def test_empty_fleet_merges_to_empty(self):
        aggregator = FleetAggregator([])
        try:
            assert aggregator.merge(aggregator.scrape()) == ""
        finally:
            aggregator.close()


class TestStatus:
    def test_status_rolls_up_headline_counters(
        self, tiny_network, replicas, sample_hw
    ):
        drive_queries(tiny_network, replicas, sample_hw)
        aggregator = FleetAggregator([s.url for s in replicas])
        try:
            status = aggregator.status()
        finally:
            aggregator.close()
        assert status["up"] == 4 and status["total"] == 4
        assert status["fleet"]["queries"] == len(MAPPINGS)
        assert sum(
            row["queries"] for row in status["replicas"]
        ) == len(MAPPINGS)


class TestSupervisorAcceptance:
    def test_four_replica_supervisor_fleet(self):
        """The same acceptance invariants against real replica processes
        under the PR-7 FleetSupervisor."""
        from repro.fleet.server import FleetSupervisor, ReplicaSpec
        from repro.workloads import get_network

        spec = ReplicaSpec(network="mobilenetv3_small", cache_capacity=256)
        network = get_network("mobilenetv3_small")
        with FleetSupervisor(spec, replicas=4) as fleet:
            sharded = ShardedPPAEngine(
                network,
                list(fleet.urls),
                area_fn=spatial_area_mm2,
                timeout_s=10.0,
                batch_size=2,
            )
            try:
                from repro.hw import edge_design_space

                hw = edge_design_space().to_config({
                    "pe_x": 8, "pe_y": 8, "l1_bytes": 4096,
                    "l2_kb": 256, "noc_bw": 64, "dataflow": "ws",
                })
                sharded.evaluate_candidates(hw, "fc", MAPPINGS)
            finally:
                sharded.close()
            aggregator = FleetAggregator(list(fleet.urls))
            try:
                scrapes = aggregator.scrape()
                merged = aggregator.merge(scrapes)
            finally:
                aggregator.close()
        assert all(s.ok for s in scrapes)
        families = parse_prometheus_text(merged)
        expected = sum(
            counter_total(s.families, "engine_queries_total")
            for s in scrapes
        )
        assert expected == len(MAPPINGS)
        assert counter_total(
            families, "fleet:engine_queries_total"
        ) == pytest.approx(expected)
