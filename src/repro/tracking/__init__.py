"""Experiment tracking: persistent run store, event journal, resume.

A tracked co-search leaves three durable artifacts in ``runs/<run-id>/``:
a ``manifest.json`` identity card, an append-only ``journal.jsonl`` of
typed search events, and periodic ``checkpoints/`` written with the
:mod:`repro.core.checkpoint` codec.  Together they make a multi-day run
inspectable (``repro runs show/tail/compare``), comparable after the
fact, and resumable after a crash (``repro runs resume``).

* :class:`EventJournal` — crash-safe JSONL appends, tolerant reads,
* :class:`RunStore` / :class:`RunHandle` — run-directory ownership,
* :class:`Tracker` / :class:`JournalTracker` — the hook interface
  threaded through ``Unico.optimize()`` and the experiment harness,
* :func:`resume_run` / :func:`verify_run` / :func:`replay_iteration_records`
  — consistency-checked continuation of interrupted searches.
"""

from repro.tracking.journal import (
    EVENT_TYPES,
    JOURNAL_VERSION,
    EventJournal,
    JournalScan,
    iter_events,
    read_events,
    read_events_from,
    read_tail_events,
    verify_sequence,
)
from repro.tracking.resume import (
    replay_iteration_records,
    resume_run,
    verify_run,
)
from repro.tracking.store import RUN_STATUSES, RunHandle, RunStore
from repro.tracking.tracker import (
    JournalSampleSink,
    JournalTracker,
    NullTracker,
    Tracker,
)

__all__ = [
    "EVENT_TYPES",
    "JOURNAL_VERSION",
    "RUN_STATUSES",
    "EventJournal",
    "JournalScan",
    "JournalSampleSink",
    "JournalTracker",
    "NullTracker",
    "RunHandle",
    "RunStore",
    "Tracker",
    "iter_events",
    "read_events",
    "read_events_from",
    "read_tail_events",
    "replay_iteration_records",
    "resume_run",
    "verify_run",
    "verify_sequence",
]
