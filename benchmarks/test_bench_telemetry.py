"""Telemetry pipeline gates: tick latency, scrape drag, query latency.

Three promises the observability layer makes, measured:

1. **One scrape tick over a 4-replica fleet is cheap.**  A full tick —
   parallel ``/metrics`` scrapes, strict parse, flatten, store appends,
   fleet rollup, SLO rule sweep — must complete in under
   ``MAX_TICK_MS`` (best of ``ROUNDS``; at a 2s scrape interval that is
   >97% idle).

2. **Watching a fleet must not slow the work down.**  The same co-search
   runs with and without a telemetry pipeline scraping 4 live replicas
   at an aggressive interval from the same process, paired round-robin
   with best-of-N per arm, and the telemetered arm must be within
   ``MAX_OVERHEAD`` of the plain arm.

3. **A dashboard window query over deep history feels instant.**  With
   10k samples in one target, a windowed ``rate`` over the whole range
   and a ``quantile`` from histogram series must each answer in under
   ``MAX_QUERY_MS``.

Results land in ``BENCH_telemetry.json``.
"""

import dataclasses
import json
import time

from repro.costmodel import MaestroEngine
from repro.costmodel.service import PPAServiceServer
from repro.experiments.harness import run_method
from repro.experiments.presets import get_preset
from repro.hub.telemetry import TelemetryPipeline
from repro.obs.timeseries import MetricsStore
from repro.workloads import Gemm, Network

WORKLOAD = "fsrcnn_120x320"
ROUNDS = 3
OVERHEAD_ROUNDS = 4
TICK_REPLICAS = 4
MAX_TICK_MS = 50.0     # one 4-replica scrape+append+rules tick
MAX_OVERHEAD = 0.02    # telemetered co-search within 2% of plain
MAX_QUERY_MS = 100.0   # one windowed query over 10k samples
QUERY_SAMPLES = 10_000


def _bench_network():
    return Network(
        name="telembench",
        layers=(Gemm(name="gemm", m=32, n=64, k=48),),
        family="bench",
        year=2023,
    )


def _fleet(count):
    servers = [
        PPAServiceServer(MaestroEngine(_bench_network()))
        for _ in range(count)
    ]
    for server in servers:
        server.start()
    return servers


def _bench_preset():
    """A ~1s co-search for the tick gate's replica traffic."""
    return dataclasses.replace(
        get_preset("smoke"), name="bench",
        unico_batch=12, unico_iterations=8, unico_budget=200,
    )


def _overhead_preset():
    """A multi-second co-search: same-seed runs jitter ~10% at the 1s
    scale, so the 2% drag gate needs runs long enough that best-of-N
    converges to the true floor of each arm."""
    return dataclasses.replace(
        get_preset("smoke"), name="bench-long",
        unico_batch=12, unico_iterations=24, unico_budget=600,
    )


def _write_record(results_dir, key, payload):
    record_path = results_dir / "BENCH_telemetry.json"
    record = (
        json.loads(record_path.read_text()) if record_path.exists() else {}
    )
    record[key] = payload
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True))


def test_four_replica_tick_latency(results_dir, tmp_path):
    servers = _fleet(TICK_REPLICAS)
    pipeline = TelemetryPipeline(
        replica_urls=[s.url for s in servers],
        store=tmp_path / "obs",
        interval_s=2.0,
    )
    try:
        # prime keep-alive connections and replica counters, off the clock
        for server in servers:
            MaestroEngine(_bench_network())  # parity with hub bench warmup
        pipeline.tick()

        best_ms = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            transitions = pipeline.tick()
            elapsed_ms = (time.perf_counter() - start) * 1e3
            assert transitions == []  # a healthy fleet raises nothing
            best_ms = min(best_ms, elapsed_ms)
        status = pipeline.status()
        assert status["ticks"] >= ROUNDS + 1
    finally:
        pipeline.stop()
        for server in servers:
            server.stop()

    _write_record(results_dir, "tick_latency", {
        "replicas": TICK_REPLICAS,
        "rounds": ROUNDS,
        "best_ms": best_ms,
        "rules": len(status["rules"]),
        "targets": len(status["targets"]),
    })
    assert best_ms <= MAX_TICK_MS, (
        f"one {TICK_REPLICAS}-replica telemetry tick took {best_ms:.1f}ms; "
        f"gate is {MAX_TICK_MS:.0f}ms"
    )


def test_scrape_loop_overhead_on_co_search(results_dir, tmp_path):
    def co_search(seed):
        start = time.perf_counter()
        run_method("unico", "edge", WORKLOAD, _overhead_preset(), seed=seed)
        return time.perf_counter() - start

    co_search(seed=99)  # warmup arm, off the clock

    servers = _fleet(TICK_REPLICAS)
    ratios = []
    try:
        for round_index in range(OVERHEAD_ROUNDS):
            # both arms run the SAME seed back to back — identical work,
            # adjacent in time so slow machine drift cancels in the
            # ratio; order alternates to cancel order bias too
            pipeline = TelemetryPipeline(
                replica_urls=[s.url for s in servers],
                store=tmp_path / f"obs-{round_index}",
                interval_s=0.5,
            )

            def scraped_arm():
                pipeline.start()
                try:
                    return co_search(seed=0)
                finally:
                    pipeline.stop()

            if round_index % 2 == 0:
                plain_s = co_search(seed=0)
                scraped_s = scraped_arm()
            else:
                scraped_s = scraped_arm()
                plain_s = co_search(seed=0)
            assert pipeline.status()["ticks"] >= 2  # the loop really ran
            ratios.append(scraped_s / plain_s)
    finally:
        for server in servers:
            server.stop()

    overhead = min(ratios) - 1.0
    _write_record(results_dir, "scrape_overhead", {
        "replicas": TICK_REPLICAS,
        "rounds": OVERHEAD_ROUNDS,
        "paired_ratios": ratios,
        "overhead_fraction": overhead,
    })
    assert overhead <= MAX_OVERHEAD, (
        f"a live telemetry scrape loop slowed the co-search by "
        f"{overhead:.1%} in its best paired round "
        f"(ratios: {[f'{r:.3f}' for r in ratios]}); "
        f"gate is {MAX_OVERHEAD:.0%}"
    )


def test_window_query_latency_10k_samples(results_dir, tmp_path):
    with MetricsStore(tmp_path / "obs") as store:
        for i in range(QUERY_SAMPLES):
            t = float(i)
            store.append("replica:bench", t, {
                "engine_queries_total": float(3 * i),
                'lat_bucket{le="0.1"}': float(i),
                'lat_bucket{le="0.5"}': float(2 * i),
                'lat_bucket{le="+Inf"}': float(2 * i),
            })

        window = float(QUERY_SAMPLES)
        rate_ms = quantile_ms = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            rate = store.query(
                "replica:bench", "engine_queries_total", "rate",
                window, now=window - 1.0,
            )
            rate_ms = min(rate_ms, (time.perf_counter() - start) * 1e3)
            assert rate == 3.0 * (QUERY_SAMPLES - 1) / window

            start = time.perf_counter()
            p50 = store.query(
                "replica:bench", "lat", "quantile",
                window, now=window - 1.0, q=0.5,
            )
            quantile_ms = min(
                quantile_ms, (time.perf_counter() - start) * 1e3
            )
            assert p50 is not None

    _write_record(results_dir, "window_query", {
        "samples": QUERY_SAMPLES,
        "rounds": ROUNDS,
        "rate_best_ms": rate_ms,
        "quantile_best_ms": quantile_ms,
    })
    worst = max(rate_ms, quantile_ms)
    assert worst <= MAX_QUERY_MS, (
        f"a windowed query over {QUERY_SAMPLES} samples took "
        f"{worst:.1f}ms; gate is {MAX_QUERY_MS:.0f}ms"
    )
