"""Job execution backends for the parallel implementation (Section 3.5).

"Within each successive halving round, we run standalone Jobs via
multi-processing in parallel, where each job handles the SW mapping search
for a selected hardware configuration."

Two layers of parallelism are modeled in this reproduction:

* **Simulated-time parallelism** — the co-optimizers always account for the
  worker count through :meth:`SimulatedClock.advance_parallel`; this is what
  the reported Cost(h) columns measure.
* **Real compute parallelism** — :class:`JobRunner` dispatches the actual
  Python work.  The in-process analytical engine is so fast that the serial
  backend is the default; the ``thread`` backend genuinely overlaps
  remote-engine jobs (e.g. several :class:`RemotePPAEngine` clients talking
  to PPA services on slave machines, the deployment of Fig. 6(b)); the
  ``process`` backend is the paper's multi-processing dispatch for
  CPU-bound standalone jobs.

Process dispatch requires picklable jobs (results come back over a pipe,
and mutations of shared objects would be lost in the child).  ``JobRunner``
checks picklability up front and degrades to the thread pool — counting
the fallback — rather than crashing mid-round or silently dropping
side effects.
"""

from __future__ import annotations

import functools
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.utils.metrics import MetricsRegistry

ResultT = TypeVar("ResultT")

BACKENDS = ("serial", "thread", "process")


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


class JobRunner:
    """Run a list of no-argument jobs and return their results in order."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; use one of {BACKENDS}"
            )
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.backend = backend
        self.max_workers = max_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.num_batches = 0
        self.num_jobs = 0
        #: process batches degraded to threads because a job failed to pickle
        self.num_pickle_fallbacks = 0

    def map(self, jobs: Sequence[Callable[[], ResultT]]) -> List[ResultT]:
        """Execute every job; results keep the submission order.

        A failing job propagates its exception (after all submitted jobs
        have been scheduled) — silent partial results would corrupt a
        successive-halving round.
        """
        if not jobs:
            return []
        self.num_batches += 1
        self.num_jobs += len(jobs)
        self.metrics.counter("runner_batches_total").inc()
        self.metrics.counter("runner_jobs_total").inc(len(jobs))
        start = time.perf_counter()
        try:
            if self.backend == "serial" or len(jobs) == 1:
                return [job() for job in jobs]
            if self.backend == "process":
                if self._all_picklable(jobs):
                    return self._map_process(jobs)
                self.num_pickle_fallbacks += 1
                self.metrics.counter("runner_pickle_fallbacks_total").inc()
            return self._map_thread(jobs)
        finally:
            self.metrics.histogram("runner_batch_seconds").observe(
                time.perf_counter() - start
            )

    def stats(self) -> dict:
        """Dispatch counters, JSON-able (journaled by engine snapshots)."""
        return {
            "backend": self.backend,
            "max_workers": self.max_workers,
            "num_batches": self.num_batches,
            "num_jobs": self.num_jobs,
            "num_pickle_fallbacks": self.num_pickle_fallbacks,
        }

    def starmap(
        self, fn: Callable[..., ResultT], args_list: Sequence[tuple]
    ) -> List[ResultT]:
        """Convenience: apply ``fn`` to each argument tuple.

        Jobs are built with :func:`functools.partial`, so a module-level
        ``fn`` with picklable arguments dispatches to real processes.
        """
        return self.map([functools.partial(fn, *args) for args in args_list])

    # ------------------------------------------------------------------ backends
    def _map_thread(self, jobs: Sequence[Callable[[], ResultT]]) -> List[ResultT]:
        workers = min(self.max_workers, len(jobs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]

    def _map_process(self, jobs: Sequence[Callable[[], ResultT]]) -> List[ResultT]:
        workers = min(self.max_workers, len(jobs))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]

    def _all_picklable(self, jobs: Sequence[Callable[[], ResultT]]) -> bool:
        for job in jobs:
            try:
                pickle.dumps(job)
            except Exception as error:
                # expected for closures/local state; surfaced through the
                # metrics path (not swallowed) so operators can see *why*
                # process dispatch degraded to threads
                self.metrics.counter("runner_unpicklable_jobs_total").inc()
                self.metrics.counter(
                    f"runner_unpicklable_{type(error).__name__}_total"
                ).inc()
                return False
        return True
