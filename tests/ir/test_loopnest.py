"""Tests (incl. property-based) for the loop-nest IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.ir import Loop, LoopNest, gemm_domain
from repro.utils.intmath import divisors


@pytest.fixture()
def nest():
    return LoopNest.from_domain(gemm_domain(8, 12, 6))


class TestConstruction:
    def test_canonical_nest(self, nest):
        assert [l.name for l in nest.loops] == ["m.0", "n.0", "k.0"]
        assert nest.volume() == 8 * 12 * 6
        assert nest.is_equivalent_to_domain()

    def test_bad_extent(self):
        with pytest.raises(MappingError):
            Loop(dim="m", name="m.0", extent=0)

    def test_bad_binding(self):
        with pytest.raises(MappingError):
            Loop(dim="m", name="m.0", extent=2, binding="vector")

    def test_duplicate_names_rejected(self):
        loop = Loop(dim="m", name="m.0", extent=2)
        with pytest.raises(MappingError):
            LoopNest(loops=(loop, loop), domain=(("m", 4),))


class TestSplit:
    def test_split_preserves_volume(self, nest):
        split = nest.split("m.0", 4)
        assert split.volume() == nest.volume()
        assert split.is_equivalent_to_domain()

    def test_split_extents(self, nest):
        split = nest.split("m.0", 4)
        assert split.loop("m.0").extent == 2
        assert split.loop("m.1").extent == 4

    def test_split_inserts_adjacent(self, nest):
        split = nest.split("n.0", 3)
        names = [l.name for l in split.loops]
        assert names == ["m.0", "n.0", "n.1", "k.0"]

    def test_non_dividing_factor_rejected(self, nest):
        with pytest.raises(MappingError):
            nest.split("m.0", 3)

    def test_repeated_split_unique_names(self, nest):
        twice = nest.split("m.0", 4).split("m.1", 2)
        names = {l.name for l in twice.loops if l.dim == "m"}
        assert names == {"m.0", "m.1", "m.2"}


class TestReorder:
    def test_permutes(self, nest):
        reordered = nest.reorder(["k.0", "m.0", "n.0"])
        assert [l.name for l in reordered.loops] == ["k.0", "m.0", "n.0"]

    def test_must_be_permutation(self, nest):
        with pytest.raises(MappingError):
            nest.reorder(["m.0", "n.0"])
        with pytest.raises(MappingError):
            nest.reorder(["m.0", "m.0", "k.0"])


class TestBind:
    def test_bind_spatial(self, nest):
        bound = nest.bind("m.0", "spatial_x")
        assert bound.loop("m.0").binding == "spatial_x"
        assert len(bound.spatial_loops()) == 1

    def test_spatial_binding_exclusive(self, nest):
        bound = nest.bind("m.0", "spatial_x")
        with pytest.raises(MappingError):
            bound.bind("n.0", "spatial_x")

    def test_rebind_same_axis_allowed(self, nest):
        bound = nest.bind("m.0", "spatial_x").bind("m.0", "spatial_x")
        assert bound.loop("m.0").binding == "spatial_x"

    def test_unknown_binding(self, nest):
        with pytest.raises(MappingError):
            nest.bind("m.0", "warp")


class TestFuse:
    def test_fuse_inverse_of_split(self, nest):
        roundtrip = nest.split("m.0", 4).fuse("m.0", "m.1")
        assert roundtrip.loop("m.0").extent == 8
        assert roundtrip.volume() == nest.volume()

    def test_fuse_requires_adjacency(self, nest):
        split = nest.split("m.0", 4).reorder(["m.0", "n.0", "m.1", "k.0"])
        with pytest.raises(MappingError):
            split.fuse("m.0", "m.1")

    def test_fuse_requires_same_dim(self, nest):
        with pytest.raises(MappingError):
            nest.fuse("m.0", "n.0")


class TestPretty:
    def test_pretty_mentions_bindings(self, nest):
        text = nest.split("m.0", 4).bind("m.1", "spatial_x").pretty()
        assert "par_x m.1" in text
        assert "for m.0" in text


@given(
    st.integers(2, 256),
    st.integers(2, 256),
    st.integers(2, 256),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50)
def test_random_split_chains_preserve_domain(m, n, k, seed):
    """Any chain of valid splits keeps the nest domain-equivalent."""
    import numpy as np

    rng = np.random.default_rng(seed)
    nest = LoopNest.from_domain(gemm_domain(m, n, k))
    for _ in range(4):
        target = nest.loops[int(rng.integers(0, len(nest.loops)))]
        options = [d for d in divisors(target.extent) if d > 1]
        if not options:
            continue
        factor = int(options[int(rng.integers(0, len(options)))])
        nest = nest.split(target.name, factor)
    assert nest.is_equivalent_to_domain()
    assert nest.volume() == m * n * k
