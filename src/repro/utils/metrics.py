"""Process-local observability primitives: counters and latency histograms.

The production deployment of the Section 3.5 estimation service (Fig. 6b)
needs visibility into what the service is doing — how many queries it
served, how the cache behaves, how long real computations take, how often
clients had to retry.  This module provides the minimal, dependency-free
instruments the rest of the library threads through its hot paths:

* :class:`Counter` — a monotonically increasing count (queries, hits,
  evictions, retries, ...).
* :class:`Histogram` — bucketed observations of *real* elapsed seconds
  (distinct from the :class:`~repro.utils.clock.SimulatedClock`, which
  models search cost; histograms measure the wall time this process
  actually spent).
* :class:`MetricsRegistry` — a named collection of the above, shared by an
  engine, its HTTP server, and the job runner, snapshot as JSON for the
  ``GET /metrics`` endpoint and the ``python -m repro stats`` subcommand.

All instruments are thread-safe: the service server handles requests from
a thread pool and the ``thread`` job-runner backend dispatches concurrent
jobs against a shared engine.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

#: Default latency buckets (seconds), roughly log-spaced like Prometheus'
#: defaults; the last implicit bucket is +Inf.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for batch-size distributions (``engine_batch_size``): powers of
#: two up to the largest batch any search realistically ships at once.
DEFAULT_BATCH_SIZE_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

#: Buckets for *per-candidate* compute latency on the batch path
#: (``engine_batch_compute_seconds_per_item``).  Much finer at the
#: microsecond end than :data:`DEFAULT_LATENCY_BOUNDS`: batched analytical
#: evaluation amortizes to microseconds per candidate, and the batch
#: speedup is exactly this histogram's mean versus the scalar
#: ``engine_compute_seconds`` mean.
PER_ITEM_LATENCY_BOUNDS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
    5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        """Zero the counter in place (held references stay live)."""
        with self._lock:
            self._value = 0.0

    # instruments ride along with engines pickled to process-backend
    # workers; __slots__ classes need explicit state methods, and the
    # lock is recreated on unpickle
    def __getstate__(self) -> dict:
        return {"name": self.name, "value": self._value}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._value = state["value"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Bucketed observations (cumulative-style buckets, like Prometheus).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one extra
    overflow bucket counts the rest.  Also tracks count/sum/min/max so
    summaries stay exact even when the bucketing is coarse.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError(f"bounds must be non-empty and sorted, got {chosen}")
        self.bounds: Tuple[float, ...] = chosen
        self._bucket_counts = [0] * (len(chosen) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def time(self) -> "_Timer":
        """Context manager observing the elapsed real time of its body."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Exact at the recorded min/max; interior quantiles resolve to the
        upper bound of the bucket containing the q-th observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if q == 0.0:
                return self._min
            target = q * self._count
            seen = 0
            for i, bucket_count in enumerate(self._bucket_counts):
                seen += bucket_count
                if seen >= target:
                    if i == len(self.bounds):
                        return self._max
                    return min(self.bounds[i], self._max)
            return self._max

    def reset(self) -> None:
        """Clear all observations in place (held references stay live)."""
        with self._lock:
            self._bucket_counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "mean": self._sum / self._count if self._count else 0.0,
                "bounds": list(self.bounds),
                "bucket_counts": list(self._bucket_counts),
            }

    def __getstate__(self) -> Dict:
        with self._lock:
            return {
                "name": self.name,
                "bounds": self.bounds,
                "bucket_counts": list(self._bucket_counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def __setstate__(self, state: Dict) -> None:
        self.name = state["name"]
        self.bounds = state["bounds"]
        self._bucket_counts = list(state["bucket_counts"])
        self._count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, count={self._count})"


class _Timer:
    """Times a ``with`` body on the real clock and records it."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        import time

        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Named counters and histograms with a JSON-able snapshot.

    Instruments are created on first use, so call sites stay one-liners::

        registry.counter("engine_queries_total").inc()
        with registry.histogram("engine_compute_seconds").time():
            result = compute()
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                if name in self._histograms:
                    raise ValueError(f"{name!r} is already a histogram")
                instrument = Counter(name)
                self._counters[name] = instrument
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                if name in self._counters:
                    raise ValueError(f"{name!r} is already a counter")
                instrument = Histogram(name, bounds)
                self._histograms[name] = instrument
            return instrument

    def counter_value(self, name: str) -> float:
        """Current value of a counter; 0 if it was never created."""
        with self._lock:
            instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0.0

    def snapshot(self) -> Dict:
        """JSON-serializable view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

    def summary(self) -> Dict:
        """Compact snapshot: counters plus count/mean/max per histogram.

        Event journals embed this instead of :meth:`snapshot` — per-run
        trajectories want the headline numbers, not every bucket.
        """
        snap = self.snapshot()
        return {
            "counters": snap["counters"],
            "histograms": {
                name: {
                    "count": hist["count"],
                    "mean": hist["mean"],
                    "max": hist["max"],
                }
                for name, hist in snap["histograms"].items()
            },
        }

    def reset(self) -> None:
        """Reset every instrument in place.

        Instruments stay registered and any references held by call sites
        remain live — only the recorded values are cleared.  Used for
        hermetic per-test registries and the overhead benchmark's paired
        rounds.
        """
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            counter.reset()
        for histogram in histograms:
            histogram.reset()

    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def render_text(self) -> str:
        """Prometheus text exposition of the registry.

        Delegates to :func:`repro.obs.prom.render_prometheus`, which
        follows the full exposition conventions (``# TYPE`` headers,
        label extraction, cumulative buckets).
        """
        from repro.obs.prom import render_prometheus

        return render_prometheus(self.snapshot())


__all__ = [
    "DEFAULT_BATCH_SIZE_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS",
    "PER_ITEM_LATENCY_BOUNDS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
]
