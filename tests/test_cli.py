"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_networks_command(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "resnet" in out
        assert "GMACs" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "cmaes", "bert"])


class TestRunCommand:
    def test_run_random_smoke(self, capsys):
        code = main(
            ["run", "random", "fsrcnn_120x320", "--preset", "smoke", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "simulated hours" in out


class TestTableCommand:
    def test_table_with_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "table.json"
        code = main(
            [
                "table",
                "edge",
                "--networks",
                "fsrcnn_120x320",
                "--preset",
                "smoke",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert "fsrcnn_120x320" in payload["children"]


class TestFigCommand:
    def test_fig10_json(self, tmp_path):
        out_path = tmp_path / "fig10.json"
        code = main(
            ["fig", "10", "--preset", "smoke", "--seed", "2", "--json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["name"] == "fig10"
