"""Figure 7: hypervolume difference vs wall-clock (edge 7a, cloud 7b).

For each network, HASCO / NSGAII / MOBOHB / UNICO run at the ``bench``
preset; HV-difference-to-reference curves are sampled on a shared simulated
time grid.  Expected shape (paper): UNICO converges fastest — it reaches
the HV level HASCO ends at in a fraction of HASCO's time (paper: up to ~4x)
and its per-time curve is not worse than the baselines' on most networks.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import run_fig7, speedup_to_reach
from repro.workloads import TABLE12_NETWORKS

# three representative networks keep the bench suite's runtime moderate
# while covering the workload families (transformer / CNN / dense-pred.)
FIG7_BENCH_NETWORKS = ("bert", "resnet", "srgan")
SEED = 0


def _summarize(record, scenario):
    print(f"\n=== Fig. 7 ({scenario}) HV-difference, bench preset ===")
    speedups = []
    for network in FIG7_BENCH_NETWORKS:
        panel = record.children[network]
        finals = {
            method: panel.children[method].get("final_hv_diff")
            for method in ("hasco", "nsgaii", "mobohb", "unico")
        }
        speedup = speedup_to_reach(panel)
        speedups.append(speedup)
        finals_text = "  ".join(f"{m}={v:.4f}" for m, v in finals.items())
        print(f"{network:<10s} speedup-to-HASCO-level={speedup:>5.1f}x  {finals_text}")
    return speedups


@pytest.mark.benchmark(group="fig7")
def test_fig7a_edge(benchmark, results_dir):
    record = run_once(
        benchmark, run_fig7, "edge", list(FIG7_BENCH_NETWORKS), "bench", seed=SEED
    )
    save_record(results_dir, "fig7a_edge", record)
    speedups = _summarize(record, "edge")
    finite = [s for s in speedups if np.isfinite(s)]
    # UNICO reaches HASCO's final quality faster than HASCO on average
    assert finite, "UNICO never reached HASCO's HV level on any network"
    assert np.mean(finite) > 1.0


@pytest.mark.benchmark(group="fig7")
def test_fig7b_cloud(benchmark, results_dir):
    record = run_once(
        benchmark, run_fig7, "cloud", list(FIG7_BENCH_NETWORKS), "bench", seed=SEED
    )
    save_record(results_dir, "fig7b_cloud", record)
    speedups = _summarize(record, "cloud")
    finite = [s for s in speedups if np.isfinite(s)]
    assert finite, "UNICO never reached HASCO's HV level on any network"
    assert np.mean(finite) > 1.0
