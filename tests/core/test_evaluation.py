"""Tests for trial wrapping and objective-vector assembly."""

import numpy as np
import pytest

from repro.core.evaluation import (
    SEARCH_TOOLS,
    SWSearchTrial,
    assemble_objectives,
    make_search_tool,
)
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError


@pytest.fixture()
def trial(tiny_network, sample_hw):
    engine = MaestroEngine(tiny_network)
    return SWSearchTrial(sample_hw, tiny_network, engine, seed=0)


class TestMakeSearchTool:
    def test_all_registered_tools_constructible(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        for name in ("flextensor", "gamma", "random"):
            tool = make_search_tool(name, tiny_network, sample_hw, engine, seed=0)
            assert tool.name == name

    def test_unknown_tool(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        with pytest.raises(ConfigurationError):
            make_search_tool("ansor", tiny_network, sample_hw, engine)

    def test_registry_contains_fusion(self):
        assert "fusion" in SEARCH_TOOLS


class TestSWSearchTrial:
    def test_tracks_init_queries(self, trial):
        assert trial.queries_spent >= 3  # at least one eval per layer

    def test_run_accumulates_queries(self, trial):
        before = trial.queries_spent
        trial.run(20)
        assert trial.queries_spent == before + 20
        assert trial.spent_budget == 20

    def test_best_curve_delegates(self, trial):
        trial.run(10)
        assert trial.best_curve().shape == (10,)

    def test_robustness_available(self, trial):
        trial.run(40)
        assert trial.robustness().finite


class TestAssembleObjectives:
    def test_four_objectives_with_robustness(self, trial):
        trial.run(30)
        evaluation = assemble_objectives(trial, include_robustness=True)
        assert evaluation.objectives.shape == (4,)
        assert evaluation.feasible
        assert evaluation.objectives[0] == pytest.approx(trial.best_ppa.latency_s)
        assert evaluation.objectives[3] == evaluation.robustness.r_value

    def test_three_objectives_without_robustness(self, trial):
        trial.run(10)
        evaluation = assemble_objectives(trial, include_robustness=False)
        assert evaluation.objectives.shape == (3,)

    def test_power_cap_makes_infeasible(self, trial):
        trial.run(10)
        capped = assemble_objectives(trial, power_cap_w=1e-9)
        assert not capped.feasible
        assert np.all(np.isinf(capped.objectives))

    def test_area_cap_makes_infeasible(self, trial):
        trial.run(10)
        capped = assemble_objectives(trial, area_cap_mm2=1e-6)
        assert not capped.feasible

    def test_generous_caps_keep_feasible(self, trial):
        trial.run(10)
        evaluation = assemble_objectives(
            trial, power_cap_w=1e6, area_cap_mm2=1e6
        )
        assert evaluation.feasible

    def test_ppa_vector_always_populated(self, trial):
        trial.run(10)
        evaluation = assemble_objectives(trial, power_cap_w=1e-9)
        # the raw PPA survives even when the capped Y is infinite
        assert np.all(np.isfinite(evaluation.ppa_vector))
