"""End-to-end smoke test for the hardened estimation-service path.

The Fig. 6(b) deployment in miniature: a PPA service whose backend engine
injects transient failures on 20% of fresh computations, a retrying remote
client, and a full FlexTensor mapping search driven through the stack.
The search must complete and land on exactly the same best design as the
same search against an in-process engine — the service path is a transport,
not a different model.
"""

import numpy as np
import pytest

from repro.costmodel import FlakyEngine, MaestroEngine, RetryingEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer, RemotePPAEngine
from repro.mapping import FlexTensorSearch

SEARCH_BUDGET = 40
SEED = 3


@pytest.fixture()
def flaky_service(tiny_network):
    backend = FlakyEngine(MaestroEngine(tiny_network), failure_rate=0.2, seed=9)
    with PPAServiceServer(backend) as server:
        yield server


class TestFlakyServiceSearch:
    def test_search_matches_in_process_engine(self, flaky_service, tiny_network,
                                              sample_hw):
        remote = RemotePPAEngine(
            tiny_network, flaky_service.url, area_fn=spatial_area_mm2
        )
        robust = RetryingEngine(remote, max_attempts=10)
        remote_search = FlexTensorSearch(
            tiny_network, sample_hw, robust, seed=SEED
        )
        remote_search.run(SEARCH_BUDGET)

        local_search = FlexTensorSearch(
            tiny_network, sample_hw, MaestroEngine(tiny_network), seed=SEED
        )
        local_search.run(SEARCH_BUDGET)

        assert np.isfinite(remote_search.best_objective)
        # bit-for-bit: JSON float round-tripping is exact, retries invisible
        assert remote_search.best_objective == local_search.best_objective
        assert remote_search.best_ppa.latency_s == local_search.best_ppa.latency_s
        assert remote_search.best_ppa.energy_j == local_search.best_ppa.energy_j
        assert remote_search.best_mapping == local_search.best_mapping

        # the flakiness was actually exercised and absorbed by the stack
        assert flaky_service.engine.num_injected_failures > 0
        assert robust.num_retries == flaky_service.engine.num_injected_failures
        assert robust.num_queries == local_search.engine.num_queries

    def test_service_metrics_after_search(self, flaky_service, tiny_network,
                                          sample_hw):
        remote = RemotePPAEngine(
            tiny_network, flaky_service.url, area_fn=spatial_area_mm2
        )
        robust = RetryingEngine(remote, max_attempts=10)
        FlexTensorSearch(tiny_network, sample_hw, robust, seed=SEED).run(10)
        snapshot = remote.service_metrics()
        assert snapshot["engine"]["num_queries"] > 0
        counters = snapshot["metrics"]["counters"]
        assert counters["service_requests_total[/evaluate_layer]"] > 0
