"""Circuit breaker: open/cooldown semantics and strict half-open probing."""

import pickle
import threading

import pytest

from repro.errors import EvaluationError, TransportError
from repro.fleet.breaker import BreakerOpenError, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


def _tripped(clock, threshold=3, cooldown_s=10.0) -> CircuitBreaker:
    breaker = CircuitBreaker("svc", threshold, cooldown_s, now=clock)
    for _ in range(threshold):
        breaker.record(False)
    return breaker


class TestStates:
    def test_closed_until_threshold(self, clock):
        breaker = CircuitBreaker("svc", 3, 10.0, now=clock)
        breaker.record(False)
        breaker.record(False)
        assert not breaker.is_open()
        breaker.check()  # still closed

    def test_opens_on_threshold(self, clock):
        breaker = CircuitBreaker("svc", 3, 10.0, now=clock)
        assert breaker.record(False) is False
        assert breaker.record(False) is False
        assert breaker.record(False) is True  # the opening transition
        assert breaker.is_open()
        with pytest.raises(BreakerOpenError):
            breaker.check()
        assert breaker.num_rejections == 1

    def test_success_resets_consecutive_count(self, clock):
        breaker = CircuitBreaker("svc", 3, 10.0, now=clock)
        breaker.record(False)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        assert not breaker.is_open()

    def test_breaker_error_is_transport_and_evaluation_error(self, clock):
        breaker = _tripped(clock)
        with pytest.raises(TransportError):
            breaker.check()
        with pytest.raises(EvaluationError):
            breaker.check()

    def test_reset_closes(self, clock):
        breaker = _tripped(clock)
        breaker.reset()
        breaker.check()
        assert not breaker.is_open()

    def test_bad_threshold_rejected(self, clock):
        with pytest.raises(EvaluationError):
            CircuitBreaker("svc", 0, 1.0, now=clock)


class TestHalfOpen:
    def test_cooldown_expiry_admits_probe(self, clock):
        breaker = _tripped(clock, cooldown_s=10.0)
        clock.t = 10.1
        assert not breaker.is_open()  # eligible again
        breaker.check()  # the probe is admitted

    def test_failed_probe_reopens_full_cooldown(self, clock):
        breaker = _tripped(clock, cooldown_s=10.0)
        clock.t = 10.1
        breaker.check()
        assert breaker.record(False) is True  # re-opened
        clock.t = 15.0  # fresh cooldown from t=10.1, still open
        with pytest.raises(BreakerOpenError):
            breaker.check()

    def test_successful_probe_closes(self, clock):
        breaker = _tripped(clock, cooldown_s=10.0)
        clock.t = 10.1
        breaker.check()
        breaker.record(True)
        breaker.check()  # closed: everyone flows again
        assert breaker.failures == 0

    def test_single_probe_under_concurrency(self, clock):
        """Exactly one of many concurrent callers becomes the probe."""
        breaker = _tripped(clock, cooldown_s=10.0)
        clock.t = 10.1
        admitted, rejected = [], []
        barrier = threading.Barrier(8)

        def contender(i):
            barrier.wait()
            try:
                breaker.check()
            except BreakerOpenError:
                rejected.append(i)
            else:
                admitted.append(i)

        threads = [
            threading.Thread(target=contender, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        assert len(rejected) == 7
        # the probe reports success -> breaker closes for everyone
        breaker.record(True)
        breaker.check()


class TestPickling:
    def test_roundtrip_drops_probe_flag(self, clock):
        breaker = _tripped(clock, cooldown_s=0.0)
        breaker.check()  # sets _probe_in_flight
        clone = pickle.loads(pickle.dumps(breaker))
        assert clone._probe_in_flight is False
        assert clone.failures == breaker.failures
        clone.check()  # the clone can admit its own probe
