"""Integer math helpers for design spaces and tiling.

Hardware design spaces in the paper use buffer sizes drawn from the
two-three-smooth grid ``{2^i * 3^j}`` and mapping spaces tile loop extents by
integer factors.  These helpers centralize that arithmetic.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple


def round_up_div(numerator: int, denominator: int) -> int:
    """Ceiling division for non-negative integers."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


@lru_cache(maxsize=4096)
def divisors(n: int) -> Tuple[int, ...]:
    """Return the sorted divisors of ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def nearest_divisor(n: int, target: int) -> int:
    """Return the divisor of ``n`` closest to ``target`` (ties go low).

    Mapping mutations propose approximate tile sizes; snapping to the nearest
    divisor keeps tilings perfect (no remainder handling in the cost model's
    steady-state loop counts, matching MAESTRO-style analysis).
    """
    candidates = divisors(n)
    best = candidates[0]
    best_gap = abs(best - target)
    for cand in candidates[1:]:
        gap = abs(cand - target)
        if gap < best_gap:
            best, best_gap = cand, gap
    return best


def power_two_three_grid(max_i: int, max_j: int, scale: int = 1) -> Tuple[int, ...]:
    """Return sorted unique values ``{scale * 2^i * 3^j : 0<=i<=max_i, 0<=j<=max_j}``.

    This is the buffer-size grid used for the open-source spatial accelerator
    (``L1, L2 in {2^i * 3^j}`` for ``i, j in 0..10``).
    """
    if max_i < 0 or max_j < 0:
        raise ValueError("max_i and max_j must be non-negative")
    values = {
        scale * (2**i) * (3**j) for i in range(max_i + 1) for j in range(max_j + 1)
    }
    return tuple(sorted(values))


def snap_to_grid(value: float, grid: Sequence[int]) -> int:
    """Return the grid element closest to ``value`` (ties go low)."""
    if not grid:
        raise ValueError("grid must be non-empty")
    best = grid[0]
    best_gap = abs(best - value)
    for element in grid[1:]:
        gap = abs(element - value)
        if gap < best_gap:
            best, best_gap = element, gap
    return int(best)


def factorize_near(n: int, parts: int, rng=None) -> List[int]:
    """Split integer ``n`` into ``parts`` divisor factors whose product is ``n``.

    Deterministic when ``rng`` is None (greedy balanced split); otherwise a
    random divisor chain.  Used to seed tilings for mapping search.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    remaining = n
    factors: List[int] = []
    for k in range(parts - 1, 0, -1):
        target = round(remaining ** (k / (k + 1)))
        if rng is None:
            inner = nearest_divisor(remaining, max(1, target))
        else:
            options = divisors(remaining)
            inner = int(options[rng.integers(0, len(options))])
        factors.append(remaining // inner)
        remaining = inner
    factors.append(remaining)
    return factors[::-1]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"invalid clamp bounds: [{low}, {high}]")
    return max(low, min(high, value))
