"""Classic CNN backbones: ResNet-50, VGG-16, Xception.

Layer tables list one entry per *unique* operator shape with a repetition
count; shapes follow the original papers at 224x224 input resolution.
"""

from __future__ import annotations

from repro.workloads.layers import Conv2D, DepthwiseConv2D, Gemm, pointwise_conv
from repro.workloads.network import Network


def resnet50() -> Network:
    """ResNet-50 (He et al., 2016), 224x224 input."""
    layers = (
        Conv2D(
            name="conv1",
            in_channels=3,
            out_channels=64,
            in_h=224,
            in_w=224,
            kernel=7,
            stride=2,
        ),
        # --- stage 2 (56x56) ---
        pointwise_conv("s2_reduce", 256, 64, 56, 56, count=2),
        pointwise_conv("s2_reduce_first", 64, 64, 56, 56),
        Conv2D(
            name="s2_conv3",
            count=3,
            in_channels=64,
            out_channels=64,
            in_h=56,
            in_w=56,
            kernel=3,
        ),
        pointwise_conv("s2_expand", 64, 256, 56, 56, count=3),
        pointwise_conv("s2_proj", 64, 256, 56, 56),
        # --- stage 3 (28x28) ---
        pointwise_conv("s3_reduce_first", 256, 128, 56, 56, stride=2),
        pointwise_conv("s3_reduce", 512, 128, 28, 28, count=3),
        Conv2D(
            name="s3_conv3",
            count=4,
            in_channels=128,
            out_channels=128,
            in_h=28,
            in_w=28,
            kernel=3,
        ),
        pointwise_conv("s3_expand", 128, 512, 28, 28, count=4),
        pointwise_conv("s3_proj", 256, 512, 28, 28),
        # --- stage 4 (14x14) ---
        pointwise_conv("s4_reduce_first", 512, 256, 28, 28, stride=2),
        pointwise_conv("s4_reduce", 1024, 256, 14, 14, count=5),
        Conv2D(
            name="s4_conv3",
            count=6,
            in_channels=256,
            out_channels=256,
            in_h=14,
            in_w=14,
            kernel=3,
        ),
        pointwise_conv("s4_expand", 256, 1024, 14, 14, count=6),
        pointwise_conv("s4_proj", 512, 1024, 14, 14),
        # --- stage 5 (7x7) ---
        pointwise_conv("s5_reduce_first", 1024, 512, 14, 14, stride=2),
        pointwise_conv("s5_reduce", 2048, 512, 7, 7, count=2),
        Conv2D(
            name="s5_conv3",
            count=3,
            in_channels=512,
            out_channels=512,
            in_h=7,
            in_w=7,
            kernel=3,
        ),
        pointwise_conv("s5_expand", 512, 2048, 7, 7, count=3),
        pointwise_conv("s5_proj", 1024, 2048, 7, 7),
        Gemm(name="fc", m=1000, n=1, k=2048),
    )
    return Network(
        name="resnet",
        layers=layers,
        family="cnn",
        year=2016,
        description="ResNet-50 @ 224x224",
    )


def vgg16() -> Network:
    """VGG-16 (Simonyan & Zisserman, 2015), 224x224 input."""

    def block(name: str, cin: int, cout: int, hw: int, count: int) -> Conv2D:
        return Conv2D(
            name=name,
            count=count,
            in_channels=cin,
            out_channels=cout,
            in_h=hw,
            in_w=hw,
            kernel=3,
        )

    layers = (
        block("conv1_1", 3, 64, 224, 1),
        block("conv1_2", 64, 64, 224, 1),
        block("conv2_1", 64, 128, 112, 1),
        block("conv2_2", 128, 128, 112, 1),
        block("conv3_1", 128, 256, 56, 1),
        block("conv3_x", 256, 256, 56, 2),
        block("conv4_1", 256, 512, 28, 1),
        block("conv4_x", 512, 512, 28, 2),
        block("conv5_x", 512, 512, 14, 3),
        Gemm(name="fc6", m=4096, n=1, k=25088),
        Gemm(name="fc7", m=4096, n=1, k=4096),
        Gemm(name="fc8", m=1000, n=1, k=4096),
    )
    return Network(
        name="vgg",
        layers=layers,
        family="cnn",
        year=2015,
        description="VGG-16 @ 224x224",
    )


def xception() -> Network:
    """Xception (Chollet, 2017): depthwise-separable conv backbone, 299x299."""
    layers = (
        Conv2D(
            name="entry_conv1",
            in_channels=3,
            out_channels=32,
            in_h=299,
            in_w=299,
            kernel=3,
            stride=2,
        ),
        Conv2D(
            name="entry_conv2",
            in_channels=32,
            out_channels=64,
            in_h=150,
            in_w=150,
            kernel=3,
        ),
        DepthwiseConv2D(name="entry_dw1", channels=128, in_h=150, in_w=150, count=2),
        pointwise_conv("entry_pw1", 64, 128, 150, 150),
        pointwise_conv("entry_pw1b", 128, 128, 150, 150),
        DepthwiseConv2D(name="entry_dw2", channels=256, in_h=75, in_w=75, count=2),
        pointwise_conv("entry_pw2", 128, 256, 75, 75),
        pointwise_conv("entry_pw2b", 256, 256, 75, 75),
        DepthwiseConv2D(name="entry_dw3", channels=728, in_h=38, in_w=38, count=2),
        pointwise_conv("entry_pw3", 256, 728, 38, 38),
        pointwise_conv("entry_pw3b", 728, 728, 38, 38),
        # middle flow: 8 blocks x 3 separable convs at 19x19, 728 channels
        DepthwiseConv2D(
            name="middle_dw", channels=728, in_h=19, in_w=19, count=24
        ),
        pointwise_conv("middle_pw", 728, 728, 19, 19, count=24),
        # exit flow
        DepthwiseConv2D(name="exit_dw1", channels=728, in_h=19, in_w=19),
        pointwise_conv("exit_pw1", 728, 1024, 19, 19),
        DepthwiseConv2D(name="exit_dw2", channels=1536, in_h=10, in_w=10),
        pointwise_conv("exit_pw2", 1024, 1536, 10, 10),
        DepthwiseConv2D(name="exit_dw3", channels=2048, in_h=10, in_w=10),
        pointwise_conv("exit_pw3", 1536, 2048, 10, 10),
        Gemm(name="fc", m=1000, n=1, k=2048),
    )
    return Network(
        name="xception",
        layers=layers,
        family="cnn",
        year=2017,
        description="Xception @ 299x299",
    )
