"""End-to-end traced co-search runs: nesting, determinism, CLI surfaces."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import run_method
from repro.obs.profile import build_profile, spans_from_journal
from repro.tracking import RunStore


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory, tiny_network):
    """One traced UNICO run shared by the assertions below."""
    runs_dir = tmp_path_factory.mktemp("runs")
    result = run_method(
        "unico",
        "edge",
        tiny_network,
        "smoke",
        seed=3,
        run_store=runs_dir,
        trace=True,
    )
    store = RunStore(runs_dir)
    run = store.get(result.extras["run_id"])
    return result, run


class TestTracedRun:
    def test_trace_file_written(self, traced_run):
        result, run = traced_run
        trace_path = run.dir / "trace.json"
        assert str(trace_path) == result.extras["trace_path"]
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]

    def test_expected_phases_present(self, traced_run):
        _, run = traced_run
        names = {s["name"] for s in spans_from_journal(run.journal_path)}
        assert {
            "run",
            "iteration",
            "mobo_sample",
            "msh_round",
            "mapping_search",
            "engine_eval",
        } <= names

    def test_spans_nest_within_parents(self, traced_run):
        """Every child wall interval lies inside its parent's interval."""
        _, run = traced_run
        spans = spans_from_journal(run.journal_path)
        by_id = {s["span_id"]: s for s in spans}
        checked = 0
        for span in spans:
            parent = by_id.get(span.get("parent_id") or "")
            if parent is None:
                continue
            tolerance = 1e-6
            assert span["wall_start_s"] >= parent["wall_start_s"] - tolerance
            assert (
                span["wall_start_s"] + span["wall_dur_s"]
                <= parent["wall_start_s"] + parent["wall_dur_s"] + tolerance
            )
            checked += 1
        assert checked > 10

    def test_hierarchy_chain(self, traced_run):
        """An engine_eval span walks up through the expected phases."""
        _, run = traced_run
        spans = spans_from_journal(run.journal_path)
        by_id = {s["span_id"]: s for s in spans}
        chains = set()
        for span in spans:
            if span["name"] != "engine_eval":
                continue
            chain = []
            cursor = span
            while cursor is not None:
                chain.append(cursor["name"])
                cursor = by_id.get(cursor.get("parent_id") or "")
            chains.add(tuple(chain))
        assert (
            "engine_eval",
            "mapping_search",
            "msh_round",
            "iteration",
            "run",
        ) in chains

    def test_dual_durations_recorded(self, traced_run):
        _, run = traced_run
        spans = spans_from_journal(run.journal_path)
        rounds = [s for s in spans if s["name"] == "msh_round"]
        assert rounds and all(s["sim_dur_s"] > 0.0 for s in rounds)
        assert all(s["wall_dur_s"] > 0.0 for s in rounds)

    def test_profile_accounts_within_5_percent(self, traced_run):
        """Acceptance criterion: phase wall-times sum within 5% of total."""
        _, run = traced_run
        profile = build_profile(spans_from_journal(run.journal_path))
        assert profile.total_wall_s > 0.0
        assert profile.accounted_wall_s == pytest.approx(
            profile.total_wall_s, rel=0.05
        )

    def test_single_trace_id(self, traced_run):
        result, run = traced_run
        spans = spans_from_journal(run.journal_path)
        trace_ids = {s["trace_id"] for s in spans}
        assert trace_ids == {result.extras["trace_id"]}


class TestTraceGuards:
    def test_trace_requires_run_store(self, tiny_network):
        with pytest.raises(ConfigurationError, match="run_store"):
            run_method(
                "unico", "edge", tiny_network, "smoke", seed=0, trace=True
            )


class TestDeterminism:
    def test_traced_run_bit_identical_to_untraced(self, tmp_path, tiny_network):
        """Tracing is observational: same seeds, same results."""
        untraced = run_method("unico", "edge", tiny_network, "smoke", seed=7)
        traced = run_method(
            "unico",
            "edge",
            tiny_network,
            "smoke",
            seed=7,
            run_store=tmp_path / "runs",
            trace=True,
        )
        plain = untraced.pareto.points
        observed = traced.pareto.points
        assert plain.shape == observed.shape
        np.testing.assert_array_equal(plain, observed)
        assert len(untraced.timeline) == len(traced.timeline)
        for a, b in zip(untraced.timeline, traced.timeline):
            assert a.time_s == b.time_s
            np.testing.assert_array_equal(a.ppa_vector, b.ppa_vector)
        assert untraced.total_engine_queries == traced.total_engine_queries
