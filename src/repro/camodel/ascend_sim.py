"""Cycle-level simulator of the Ascend-like core's tile pipeline.

The DaVinci-style execution of one GEMM-lowered operator is a six-stage
pipeline over (m, n, k) tiles, k innermost so the accumulator completes in
L0C before the vector/writeback stages fire:

    scalar issue -> DMA in (DDR->L1) -> MTE (L1->L0A/L0B)
                 -> cube (m x k x n MACs/cycle) -> vector (L0C->UB)
                 -> DMA out (UB->DDR)

Bank groups on L0A/L0B/L0C determine how deeply consecutive tiles overlap
(double/quadruple buffering); a single bank serializes producer and
consumer.  The simulator runs the exact start/finish recurrence tile by
tile — this is what makes it "cycle accurate" and orders of magnitude
slower than the analytical model — and extrapolates the steady-state rate
when an operator has more tiles than ``max_simulated_tiles``.

ICache and parameter-buffer sizing surface as scalar-issue overhead: cores
whose instruction/parameter working set overflows those buffers pay a
per-tile stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.camodel.mapping import AscendMapping
from repro.costmodel.results import LayerPPA
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.hw.ascend import AscendHWConfig
from repro.utils.intmath import round_up_div
from repro.workloads.layers import GemmShape

#: L1 -> L0 transfer bandwidth, bytes/cycle
_L1_BW = 128.0
#: vector unit throughput, output elements/cycle
_VECTOR_THROUGHPUT = 64.0
#: base scalar instructions issued per tile
_SCALAR_BASE_CYCLES = 64.0
#: cube MAC area (mm^2 per MAC) and per-MAC energy reuse from Technology
_CUBE_MAC_AREA_MM2 = 0.002

MAX_SIMULATED_TILES = 2048

_STAGE_NAMES = ("scalar", "dma_in", "mte", "cube", "vector", "dma_out")


def ascend_area_mm2(
    hw: AscendHWConfig, tech: Technology = DEFAULT_TECHNOLOGY
) -> float:
    """Silicon area of an Ascend-like configuration."""
    sram_kb = float(hw.total_sram_kb)
    bank_overhead = (
        tech.bank_area_overhead
        * (hw.l0a_banks + hw.l0b_banks + hw.l0c_banks - 3)
        * (hw.l0a_kb + hw.l0b_kb + hw.l0c_kb)
        / max(sram_kb, 1.0)
    )
    sram_area = tech.sram_area_mm2_per_kb * sram_kb * (1.0 + bank_overhead)
    cube_area = _CUBE_MAC_AREA_MM2 * hw.cube_macs_per_cycle
    vector_area = 0.5  # fixed vector/scalar pipeline complex
    return tech.base_area_mm2 + sram_area + cube_area + vector_area


@dataclass(frozen=True)
class _TileCosts:
    """Per-tile stage durations in cycles."""

    scalar: float
    dma_in: float
    mte: float
    cube: float
    vector: float
    dma_out: float

    def as_list(self) -> List[float]:
        return [self.scalar, self.dma_in, self.mte, self.cube, self.vector, self.dma_out]


def _capacity_check(
    hw: AscendHWConfig, mapping: AscendMapping, tech: Technology
) -> Tuple[bool, str]:
    """Validate tile working sets against every buffer level."""
    tm, tn, tk = mapping.tiles()
    op_b = tech.operand_bytes
    acc_b = tech.accum_bytes
    l0a_slot = hw.l0a_kb * 1024 / hw.l0a_banks
    l0b_slot = hw.l0b_kb * 1024 / hw.l0b_banks
    l0c_slot = hw.l0c_kb * 1024 / hw.l0c_banks
    if tm * tk * op_b > l0a_slot:
        return False, f"L0A overflow: tile {tm}x{tk} > {l0a_slot:.0f} B/bank"
    if tk * tn * op_b > l0b_slot:
        return False, f"L0B overflow: tile {tk}x{tn} > {l0b_slot:.0f} B/bank"
    if tm * tn * acc_b > l0c_slot:
        return False, f"L0C overflow: tile {tm}x{tn} acc > {l0c_slot:.0f} B/bank"
    l1_need = 2 * (tm * tk + tk * tn) * op_b
    if mapping.fuse_output:
        l1_need += tm * tn * op_b  # intermediate tile stays resident
    if l1_need > hw.l1_kb * 1024:
        return False, f"L1 overflow: need {l1_need} B, have {hw.l1_kb * 1024} B"
    if 2 * tm * tn * acc_b > hw.ub_kb * 1024:
        return False, f"UB overflow: {2 * tm * tn * acc_b} B > {hw.ub_kb * 1024} B"
    return True, ""


def _tile_costs(
    hw: AscendHWConfig,
    mapping: AscendMapping,
    shape: GemmShape,
    tech: Technology,
) -> _TileCosts:
    tm, tn, tk = mapping.tiles()
    op_b = tech.operand_bytes
    ddr_bw = tech.dram_bw_bytes_per_cycle
    a_bytes = tm * tk * op_b
    b_bytes = tk * tn * op_b
    dma_in = (0.0 if mapping.fuse_input else a_bytes / ddr_bw) + b_bytes / ddr_bw
    mte = (a_bytes + b_bytes) / _L1_BW
    cube = (
        round_up_div(tm, hw.cube_m)
        * round_up_div(tk, hw.cube_k)
        * round_up_div(tn, hw.cube_n)
    )
    # reduce-penalty workloads (depthwise) under-fill the cube reduction axis
    cube = cube / shape.reuse_penalty if shape.reuse_penalty < 1.0 else float(cube)
    vector = tm * tn / _VECTOR_THROUGHPUT
    dma_out = 0.0 if mapping.fuse_output else tm * tn * op_b / ddr_bw
    icache_factor = 1.0 + 0.5 * max(0.0, 1.0 - hw.icache_kb / 32.0)
    pb_factor = 1.0 + 0.3 * max(0.0, 1.0 - hw.pb_kb / 64.0)
    scalar = _SCALAR_BASE_CYCLES * icache_factor * pb_factor
    return _TileCosts(scalar, dma_in, mte, cube, vector, dma_out)


def _pipeline_cycles(
    costs: _TileCosts,
    n_tiles: int,
    trips_k: int,
    banks: Tuple[int, int, int, int, int],
) -> float:
    """Exact pipeline recurrence over tiles with bank-limited overlap.

    ``banks[s]`` is the buffer depth between stage ``s`` and ``s+1``; a
    stage may start tile ``t`` only after its consumer freed slot
    ``t - banks[s]``.  Vector and DMA-out stages fire only on reduction
    completion (every ``trips_k``-th tile).
    """
    durations = costs.as_list()
    num_stages = len(durations)
    simulate = min(n_tiles, MAX_SIMULATED_TILES)
    finish = [[0.0] * simulate for _ in range(num_stages)]
    for t in range(simulate):
        last_k = (t % trips_k) == trips_k - 1
        for s in range(num_stages):
            duration = durations[s]
            if s >= 4 and not last_k:  # vector / dma_out only on k-completion
                duration = 0.0
            start = finish[s - 1][t] if s > 0 else 0.0
            if t > 0:
                start = max(start, finish[s][t - 1])
            if s + 1 < num_stages:
                depth = banks[s]
                if t - depth >= 0:
                    start = max(start, finish[s + 1][t - depth])
            finish[s][t] = start + duration
    total = finish[-1][simulate - 1]
    if n_tiles > simulate:
        # steady-state extrapolation from the back half of the window
        half = simulate // 2
        rate = (finish[-1][simulate - 1] - finish[-1][half - 1]) / (simulate - half)
        total += (n_tiles - simulate) * rate
    return total


def simulate_layer(
    hw: AscendHWConfig,
    mapping: AscendMapping,
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> LayerPPA:
    """Cycle-level PPA of one GEMM-lowered operator under ``mapping``."""
    ok, reason = _capacity_check(hw, mapping, tech)
    if not ok:
        return LayerPPA(
            latency_s=float("inf"),
            energy_j=float("inf"),
            feasible=False,
            infeasible_reason=reason,
        )
    tm, tn, tk = mapping.tiles()
    trips_m = round_up_div(shape.m, tm)
    trips_n = round_up_div(shape.n, tn)
    trips_k = round_up_div(shape.k, tk)
    n_tiles = trips_m * trips_n * trips_k
    costs = _tile_costs(hw, mapping, shape, tech)
    banks = (
        1,  # scalar -> dma_in (instruction queue)
        2,  # dma_in -> mte (L1 is double buffered)
        min(hw.l0a_banks, hw.l0b_banks),
        hw.l0c_banks,
        2,  # vector -> dma_out (UB double buffered)
    )
    cycles = _pipeline_cycles(costs, n_tiles, trips_k, banks)
    latency_s = cycles / tech.frequency_hz

    op_b = tech.operand_bytes
    acc_b = tech.accum_bytes
    ddr_bytes = (
        (0 if mapping.fuse_input else shape.m * shape.k * trips_n * op_b / shape.reuse_penalty)
        + shape.k * shape.n * trips_m * op_b / shape.reuse_penalty
        + (0 if mapping.fuse_output else shape.m * shape.n * op_b)
    )
    l1_bytes_moved = (shape.m * shape.k * trips_n + shape.k * shape.n * trips_m) * op_b
    l0_bytes_moved = 2.0 * shape.macs * op_b / 8.0  # operand reads, cube-level reuse
    energy_j = (
        shape.macs * tech.mac_energy_j
        + l0_bytes_moved * tech.reg_energy_per_byte_j
        + l1_bytes_moved * tech.l1_energy_per_byte(hw.l1_kb * 1024)
        + shape.m * shape.n * acc_b * tech.l2_energy_per_byte(hw.l0c_kb * 1024)
        + ddr_bytes * tech.dram_energy_per_byte_j
    )
    return LayerPPA(
        latency_s=latency_s,
        energy_j=energy_j,
        feasible=True,
        compute_cycles=float(n_tiles) * costs.cube,
        noc_cycles=float(n_tiles) * costs.mte,
        dram_cycles=float(n_tiles) * costs.dma_in,
        dram_bytes=float(ddr_bytes),
    )
