"""Successive halving (SH) and the paper's modified variant (MSH).

Section 3.3: a batch of N hardware configurations runs SW mapping search in
rounds; each round the budget per surviving candidate grows geometrically
and only a subset survives.  Default SH promotes purely on terminal value
(TV).  MSH additionally promotes the steepest *convergers*, quantified by
the area-under-curve (AUC) between a candidate's best-so-far loss curve and
the horizontal line at its final loss (Fig. 4b): curves that dropped a lot
recently have large AUC and "should be given a second chance".

Promotion rule (MSH):

    H^k = H_TV^(k-p)  U  H_AUC^(p)    with the union disjoint,

with ``k = floor(0.5 N)`` and ``p = floor(0.15 N)`` in all UNICO
experiments; ``p = 0`` recovers default SH.

The module is generic over a :class:`Trial` protocol — anything resumable
with a best-so-far curve — so it is reusable for the MOBOHB baseline too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import SearchBudgetError

__all__ = [
    "Trial",
    "RoundPlan",
    "terminal_value",
    "terminal_values",
    "auc_score",
    "relative_auc_score",
    "relative_auc_scores",
    "plan_rounds",
    "select_survivors",
    "select_survivors_detailed",
    "select_survivors_soa",
    "run_successive_halving",
]

DEFAULT_ETA = 2.0
DEFAULT_KEEP_FRACTION = 0.5
DEFAULT_AUC_FRACTION = 0.15


class Trial(Protocol):
    """A resumable evaluation with a monotone best-so-far curve."""

    def run(self, additional_budget: int) -> object:
        """Spend more budget; extends the curve."""

    def best_curve(self) -> np.ndarray:
        """Monotone best-so-far objective values, one per spent budget unit."""


def terminal_value(curve: np.ndarray) -> float:
    """TV: the candidate's current best objective (lower is better)."""
    curve = np.asarray(curve, dtype=float)
    if curve.size == 0:
        return float("inf")
    return float(curve[-1])


def auc_score(curve: np.ndarray) -> float:
    """AUC of Fig. 4b: area between the curve and its terminal-value line.

    Higher AUC = the candidate was recently far above its current best,
    i.e. it is still converging steeply.  Non-finite stretches contribute
    nothing (an always-infeasible candidate scores 0).
    """
    curve = np.asarray(curve, dtype=float)
    finite = curve[np.isfinite(curve)]
    if finite.size < 2:
        return 0.0
    end_value = finite[-1]
    heights = finite - end_value
    # trapezoidal area over unit-spaced steps
    return float(np.sum((heights[1:] + heights[:-1]) / 2.0))


def relative_auc_score(curve: np.ndarray) -> float:
    """AUC normalized by the terminal value (scale-free across candidates)."""
    curve = np.asarray(curve, dtype=float)
    finite = curve[np.isfinite(curve)]
    if finite.size < 2:
        return 0.0
    end_value = finite[-1]
    if end_value <= 0:
        return auc_score(curve)
    return auc_score(curve) / end_value


# ------------------------------------------------------------------ SoA stats
def _pad_curves(curves: Sequence[np.ndarray]) -> np.ndarray:
    """Stack ragged curves into one ``(n, max_len)`` NaN-padded matrix."""
    arrays = [np.asarray(curve, dtype=float) for curve in curves]
    width = max((a.size for a in arrays), default=0)
    matrix = np.full((len(arrays), max(width, 1)), np.nan)
    for row, array in enumerate(arrays):
        matrix[row, : array.size] = array
    return matrix


def terminal_values(curves: Sequence[np.ndarray]) -> np.ndarray:
    """:func:`terminal_value` of every curve, as one array."""
    values = np.full(len(curves), np.inf)
    for row, curve in enumerate(curves):
        curve = np.asarray(curve, dtype=float)
        if curve.size:
            values[row] = curve[-1]
    return values


def relative_auc_scores(curves: Sequence[np.ndarray]) -> np.ndarray:
    """:func:`relative_auc_score` of every curve, computed matrix-at-once.

    Works on the NaN-padded curve matrix with masked reductions.  The
    trapezoid sum over each curve's compressed finite values telescopes
    (unit spacing, heights ``h_i = v_i - end``, ``h_last = 0``) to

        ``sum(h) - (h_first + h_last) / 2 = sum(v) - m*end - (first - end)/2``

    so no per-candidate Python loop over curve points is needed.  Values
    agree with the scalar helper to floating-point roundoff (the reduction
    association differs); promotion decisions compare distinct candidates'
    scores, which are far apart relative to that noise.
    """
    if not len(curves):
        return np.zeros(0)
    matrix = _pad_curves(curves)
    finite = np.isfinite(matrix)
    counts = finite.sum(axis=1)
    # first/last finite value per row (rows with < 2 finite points score 0)
    any_rows = counts > 0
    first_idx = np.argmax(finite, axis=1)
    last_idx = matrix.shape[1] - 1 - np.argmax(finite[:, ::-1], axis=1)
    rows = np.arange(matrix.shape[0])
    first = np.where(any_rows, matrix[rows, first_idx], 0.0)
    end = np.where(any_rows, matrix[rows, last_idx], 0.0)
    totals = np.where(finite, matrix, 0.0).sum(axis=1)
    auc = totals - counts * end - (first - end) / 2.0
    scores = np.where(end > 0, auc / np.where(end > 0, end, 1.0), auc)
    scores[counts < 2] = 0.0
    return scores


@dataclass(frozen=True)
class RoundPlan:
    """One SH round: cumulative per-candidate budget and survivor count."""

    round_index: int
    cumulative_budget: int
    num_candidates: int


def plan_rounds(
    num_candidates: int,
    max_budget: int,
    eta: float = DEFAULT_ETA,
    keep_fraction: float = DEFAULT_KEEP_FRACTION,
) -> List[RoundPlan]:
    """Geometric budget schedule ending at ``max_budget`` per survivor.

    Round j (0-based) runs ``n_j = max(1, floor(N * keep^j))`` candidates up
    to cumulative budget ``max_budget * eta^-(R-1-j)`` where R is the number
    of rounds needed to reduce N to 1 at ``keep_fraction`` per round.
    """
    if num_candidates < 1:
        raise SearchBudgetError(f"need >= 1 candidate, got {num_candidates}")
    if max_budget < 1:
        raise SearchBudgetError(f"max_budget must be >= 1, got {max_budget}")
    if not 0 < keep_fraction < 1:
        raise SearchBudgetError(f"keep_fraction must be in (0,1), got {keep_fraction}")
    if eta <= 1:
        raise SearchBudgetError(f"eta must be > 1, got {eta}")
    num_rounds = max(
        1, int(np.ceil(np.log(num_candidates) / np.log(1.0 / keep_fraction)))
    )
    plans: List[RoundPlan] = []
    count = num_candidates
    for j in range(num_rounds):
        budget = int(round(max_budget * eta ** (-(num_rounds - 1 - j))))
        budget = max(1, budget)
        plans.append(RoundPlan(j, budget, count))
        count = max(1, int(np.floor(count * keep_fraction)))
    # budgets must be strictly increasing so every round buys new work
    for i in range(1, len(plans)):
        if plans[i].cumulative_budget <= plans[i - 1].cumulative_budget:
            plans[i] = RoundPlan(
                plans[i].round_index,
                plans[i - 1].cumulative_budget + 1,
                plans[i].num_candidates,
            )
    return plans


def select_survivors(
    candidate_ids: Sequence[int],
    tv_by_id: Dict[int, float],
    auc_by_id: Dict[int, float],
    keep: int,
    auc_promotions: int,
) -> List[int]:
    """MSH promotion: top ``keep - p`` by TV plus top ``p`` fresh by AUC.

    ``auc_promotions = 0`` degenerates to default SH.  The returned list
    preserves TV ordering first, then AUC promotions.
    """
    survivors, _promoted = select_survivors_detailed(
        candidate_ids, tv_by_id, auc_by_id, keep, auc_promotions
    )
    return survivors


def select_survivors_detailed(
    candidate_ids: Sequence[int],
    tv_by_id: Dict[int, float],
    auc_by_id: Dict[int, float],
    keep: int,
    auc_promotions: int,
) -> Tuple[List[int], List[int]]:
    """Like :func:`select_survivors`, also reporting the AUC promotions.

    Returns ``(survivors, promoted)`` where ``promoted`` is exactly the
    subset of survivors admitted through the AUC channel rather than the
    TV cutoff — the ground truth for attribution (journaling), instead of
    a re-derivation against some other TV cutoff.
    """
    ids = list(candidate_ids)
    if keep < 0 or auc_promotions < 0:
        raise SearchBudgetError("keep and auc_promotions must be non-negative")
    if auc_promotions > keep:
        raise SearchBudgetError(
            f"auc_promotions ({auc_promotions}) cannot exceed keep ({keep})"
        )
    if keep >= len(ids):
        return ids, []
    by_tv = sorted(ids, key=lambda i: (tv_by_id[i], i))
    tv_selected = by_tv[: keep - auc_promotions]
    selected_set = set(tv_selected)
    by_auc = sorted(ids, key=lambda i: (-auc_by_id[i], i))
    auc_selected: List[int] = []
    for candidate in by_auc:
        if len(auc_selected) >= auc_promotions:
            break
        if candidate not in selected_set:
            auc_selected.append(candidate)
            selected_set.add(candidate)
    # backfill from TV order if AUC could not supply enough fresh candidates
    for candidate in by_tv:
        if len(tv_selected) + len(auc_selected) >= keep:
            break
        if candidate not in selected_set:
            tv_selected.append(candidate)
            selected_set.add(candidate)
    return tv_selected + auc_selected, auc_selected


def select_survivors_soa(
    candidate_ids: Sequence[int],
    tvs: np.ndarray,
    aucs: np.ndarray,
    keep: int,
    auc_promotions: int,
) -> Tuple[List[int], List[int]]:
    """Structure-of-arrays :func:`select_survivors_detailed`.

    Takes the TV/AUC scores as arrays positionally aligned with
    ``candidate_ids`` (as produced by :func:`terminal_values` /
    :func:`relative_auc_scores`) instead of per-id dicts, and sorts with
    ``np.lexsort`` instead of per-id key functions.  Given equal scores it
    returns exactly what :func:`select_survivors_detailed` returns — the
    (score, id) sort keys are unique, so both orderings are the same total
    order (asserted by the parity tests).
    """
    ids = np.asarray(candidate_ids, dtype=np.int64)
    tvs = np.asarray(tvs, dtype=float)
    aucs = np.asarray(aucs, dtype=float)
    if keep < 0 or auc_promotions < 0:
        raise SearchBudgetError("keep and auc_promotions must be non-negative")
    if auc_promotions > keep:
        raise SearchBudgetError(
            f"auc_promotions ({auc_promotions}) cannot exceed keep ({keep})"
        )
    if keep >= ids.size:
        return [int(i) for i in ids], []
    # lexsort: last key is primary; ids break score ties, as in the dict path
    tv_order = np.lexsort((ids, tvs))
    auc_order = np.lexsort((ids, -aucs))
    tv_selected = [int(ids[pos]) for pos in tv_order[: keep - auc_promotions]]
    selected = np.zeros(ids.size, dtype=bool)
    selected[tv_order[: keep - auc_promotions]] = True
    auc_selected: List[int] = []
    for pos in auc_order:
        if len(auc_selected) >= auc_promotions:
            break
        if not selected[pos]:
            auc_selected.append(int(ids[pos]))
            selected[pos] = True
    # backfill from TV order if AUC could not supply enough fresh candidates
    for pos in tv_order:
        if len(tv_selected) + len(auc_selected) >= keep:
            break
        if not selected[pos]:
            tv_selected.append(int(ids[pos]))
            selected[pos] = True
    return tv_selected + auc_selected, auc_selected


def run_successive_halving(
    trials: Sequence[Trial],
    max_budget: int,
    eta: float = DEFAULT_ETA,
    keep_fraction: float = DEFAULT_KEEP_FRACTION,
    auc_fraction: float = DEFAULT_AUC_FRACTION,
    use_msh: bool = True,
) -> Tuple[List[int], List[List[int]]]:
    """Run (M)SH over resumable trials.

    Returns ``(final_survivor_ids, per_round_survivor_ids)`` where ids index
    into ``trials``.  Every trial is advanced in round 0; survivors continue
    through later rounds up to ``max_budget`` cumulative budget each.
    """
    num_candidates = len(trials)
    if num_candidates == 0:
        return [], []
    plans = plan_rounds(num_candidates, max_budget, eta, keep_fraction)
    active = list(range(num_candidates))
    spent = {i: 0 for i in active}
    rounds_survivors: List[List[int]] = []
    for plan_index, plan in enumerate(plans):
        for trial_id in active:
            additional = plan.cumulative_budget - spent[trial_id]
            if additional > 0:
                trials[trial_id].run(additional)
                spent[trial_id] = plan.cumulative_budget
        is_last = plan_index == len(plans) - 1
        if is_last:
            rounds_survivors.append(list(active))
            break
        next_count = plans[plan_index + 1].num_candidates
        keep = min(next_count, len(active))
        promotions = (
            min(int(np.floor(auc_fraction * num_candidates)), keep) if use_msh else 0
        )
        tv_by_id = {i: terminal_value(trials[i].best_curve()) for i in active}
        auc_by_id = {i: relative_auc_score(trials[i].best_curve()) for i in active}
        active = select_survivors(active, tv_by_id, auc_by_id, keep, promotions)
        rounds_survivors.append(list(active))
    return active, rounds_survivors
