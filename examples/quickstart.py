#!/usr/bin/env python
"""Quickstart: co-optimize a spatial accelerator for ResNet-50 with UNICO.

This walks the whole public API in one small run:

1. pick a workload from the registry,
2. build the edge design space and the analytical PPA engine,
3. run UNICO (Algorithm 1) with a small budget,
4. inspect the PPA Pareto front and the selected design.

Run:  python examples/quickstart.py
"""

from repro.core import Unico, UnicoConfig
from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space, power_cap_for
from repro.workloads import get_network


def main() -> None:
    network = get_network("resnet")
    print(f"Workload: {network.description}")
    print(f"  {network.num_unique_layers} unique layers, "
          f"{network.total_macs / 1e9:.2f} GMACs")

    space = edge_design_space()
    print(f"HW design space: {space.name}, {space.size:.3g} configurations")

    engine = MaestroEngine(network)
    config = UnicoConfig(
        batch_size=8,       # N hardware candidates per MOBO iteration
        max_iterations=4,   # MOBO trials
        max_budget=80,      # b_max: SW-mapping evaluations per survivor
        workers=8,          # parallel SW-search jobs (simulated makespan)
    )
    unico = Unico(
        space,
        network,
        engine,
        config,
        power_cap_w=power_cap_for("edge"),
        seed=0,
    )
    result = unico.optimize()

    print(f"\nEvaluated {result.total_hw_evaluated} hardware configurations "
          f"({result.total_engine_queries} PPA queries) in "
          f"{result.total_time_h:.2f} simulated hours")
    print(f"PPA Pareto front: {len(result.pareto)} designs")
    for design, point in zip(result.pareto.items, result.pareto.points):
        print(
            f"  {design.hw.short_name():<44s} "
            f"L={point[0] * 1e3:9.2f} ms  P={point[1] * 1e3:7.1f} mW  "
            f"A={point[2]:5.2f} mm2  R={design.robustness.r_value:.4f}"
        )

    best = result.best_design()
    print("\nSelected design (min Euclidean distance on the front):")
    print(f"  {best.hw}")
    print(
        f"  latency {best.ppa.latency_s * 1e3:.2f} ms, "
        f"power {best.ppa.power_w * 1e3:.1f} mW, "
        f"area {best.ppa.area_mm2:.2f} mm2, "
        f"robustness R = {best.robustness.r_value:.4f}"
    )


if __name__ == "__main__":
    main()
