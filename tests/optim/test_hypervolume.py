"""Tests for hypervolume computation, cross-checked by Monte Carlo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.hypervolume import (
    hypervolume,
    hypervolume_difference,
    hypervolume_monte_carlo,
    reference_point_from,
)


class TestExactKnownValues:
    def test_single_point_2d(self):
        assert hypervolume(np.array([[1.0, 1.0]]), [3, 3]) == pytest.approx(4.0)

    def test_single_point_3d(self):
        assert hypervolume(np.array([[1, 1, 1]]), [2, 3, 4]) == pytest.approx(6.0)

    def test_two_point_staircase(self):
        points = np.array([[1, 2], [2, 1]])
        # union of two 2x... boxes: 2*3 area? reference (4,4):
        # box1 (1,2): 3*2=6; box2 (2,1): 2*3=6; overlap (2,2)-(4,4)=4 -> 8
        assert hypervolume(points, [4, 4]) == pytest.approx(8.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume(np.array([[1, 1]]), [4, 4])
        with_dominated = hypervolume(np.array([[1, 1], [2, 2]]), [4, 4])
        assert with_dominated == pytest.approx(base)

    def test_point_outside_reference_ignored(self):
        assert hypervolume(np.array([[5, 5]]), [4, 4]) == 0.0

    def test_infinite_points_ignored(self):
        points = np.array([[1, 1], [np.inf, 0]])
        assert hypervolume(points, [4, 4]) == pytest.approx(9.0)

    def test_empty(self):
        assert hypervolume(np.zeros((0, 2)), [1, 1]) == 0.0

    def test_incompatible_shapes(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1, 2]]), [1, 2, 3])

    def test_1d(self):
        assert hypervolume(np.array([[2.0], [5.0]]), [10.0]) == pytest.approx(8.0)

    def test_4d_box(self):
        assert hypervolume(np.array([[1, 1, 1, 1]]), [2, 2, 2, 2]) == pytest.approx(
            1.0
        )


@given(
    st.lists(
        st.tuples(st.floats(0, 0.9), st.floats(0, 0.9), st.floats(0, 0.9)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=20, deadline=None)
def test_exact_matches_monte_carlo_3d(raw_points):
    points = np.array(raw_points)
    reference = [1.0, 1.0, 1.0]
    exact = hypervolume(points, reference)
    estimate = hypervolume_monte_carlo(points, reference, num_samples=120_000, seed=1)
    assert exact == pytest.approx(estimate, abs=0.02)


@given(
    st.lists(
        st.tuples(st.floats(0, 0.9), st.floats(0, 0.9)),
        min_size=2,
        max_size=12,
    )
)
@settings(max_examples=30)
def test_monotone_in_points(raw_points):
    """Adding points never decreases hypervolume."""
    points = np.array(raw_points)
    reference = [1.0, 1.0]
    partial = hypervolume(points[:-1], reference)
    full = hypervolume(points, reference)
    assert full >= partial - 1e-12


class TestHypervolumeDifference:
    def test_zero_when_equal(self):
        front = np.array([[1, 1]])
        assert hypervolume_difference(front, [2, 2], ideal_front=front) == 0.0

    def test_positive_when_behind(self):
        ideal = np.array([[0.5, 0.5]])
        achieved = np.array([[1, 1]])
        diff = hypervolume_difference(achieved, [2, 2], ideal_front=ideal)
        assert diff == pytest.approx(2.25 - 1.0)

    def test_ideal_hv_shortcut(self):
        achieved = np.array([[1, 1]])
        assert hypervolume_difference(achieved, [2, 2], ideal_hv=1.5) == pytest.approx(
            0.5
        )

    def test_requires_ideal(self):
        with pytest.raises(ValueError):
            hypervolume_difference(np.array([[1, 1]]), [2, 2])

    def test_never_negative(self):
        ideal = np.array([[1.5, 1.5]])
        achieved = np.array([[0.5, 0.5]])  # better than "ideal"
        assert (
            hypervolume_difference(achieved, [2, 2], ideal_front=ideal) == 0.0
        )


class TestReferencePoint:
    def test_beyond_worst(self):
        points = np.array([[1, 5], [3, 2]])
        reference = reference_point_from(points)
        assert np.all(reference > points.max(axis=0))

    def test_skips_infinite(self):
        points = np.array([[1, 1], [np.inf, 2]])
        reference = reference_point_from(points)
        assert np.all(np.isfinite(reference))

    def test_all_infinite_raises(self):
        with pytest.raises(ValueError):
            reference_point_from(np.array([[np.inf, np.inf]]))

    def test_beyond_worst_when_all_negative(self):
        """A multiplicative margin would move *inward* for negative worsts."""
        points = np.array([[-3.0, -5.0], [-1.0, -8.0]])
        reference = reference_point_from(points)
        assert np.all(reference > points.max(axis=0))
        # every point must remain strictly inside the reference box
        assert np.all(points < reference[None, :])

    def test_beyond_worst_mixed_signs(self):
        points = np.array([[-2.0, 4.0], [1.0, -3.0], [0.0, 0.0]])
        reference = reference_point_from(points)
        assert np.all(reference > points.max(axis=0))

    def test_zero_worst_still_padded(self):
        points = np.array([[-1.0, 0.0], [0.0, -2.0]])
        reference = reference_point_from(points)
        assert np.all(reference > 0.0)

    def test_margin_must_exceed_one(self):
        with pytest.raises(ValueError):
            reference_point_from(np.array([[1.0, 2.0]]), margin=1.0)

    def test_no_point_clipped_negative_values(self):
        """All-negative fronts keep positive hypervolume under the derived
        reference — the regression the additive margin fixes."""
        rng = np.random.default_rng(0)
        points = -rng.random((8, 3)) - 0.5  # strictly negative objectives
        reference = reference_point_from(points)
        exact = hypervolume(points, reference)
        assert exact > 0.0
        estimate = hypervolume_monte_carlo(
            points, reference, num_samples=150_000, seed=2
        )
        assert exact == pytest.approx(estimate, rel=0.05)

    def test_monte_carlo_cross_check_mixed_signs(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(-1.0, 1.0, (10, 2))
        reference = reference_point_from(points)
        exact = hypervolume(points, reference)
        estimate = hypervolume_monte_carlo(
            points, reference, num_samples=150_000, seed=3
        )
        assert exact == pytest.approx(estimate, rel=0.05, abs=0.01)
