"""Client for the hub control plane, including the live SSE stream.

JSON endpoints travel over a pooled keep-alive connection (the same
:class:`~repro.fleet.pool.ConnectionPool` the sharded engine uses);
the SSE stream gets its own dedicated connection because its body has no
end short of connection close.

:meth:`HubClient.stream_events` is the resilient consumer behind
``repro runs tail --follow``: it tracks the byte-offset cursor carried
in each event's ``id:`` and, on any disconnect (socket timeout, hub
restart, network blip), reconnects with ``Last-Event-ID`` so the caller
sees every journal event exactly once, in order, across any number of
drops — the stream only ends at the server's explicit
``event: end_of_stream`` frame (or when ``reconnect=False``).
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from typing import Dict, Iterator, Optional
from urllib.parse import quote, urlsplit

from repro.errors import TrackingError, TransportError
from repro.fleet.pool import ConnectionPool
from repro.hub.sse import parse_sse_lines

__all__ = ["HubClient", "StreamedEvent"]

#: transport-level exceptions that mean "reconnect", not "give up"
_STREAM_ERRORS = (HTTPException, socket.timeout, ConnectionError, OSError)


@dataclass
class StreamedEvent:
    """One journal event received over SSE."""

    #: the raw journal line, verbatim (byte-identity with the journal)
    raw: str
    #: byte offset just past this event's journal line (the resume cursor)
    offset: Optional[int] = None
    #: journal event type (from the SSE ``event:`` field)
    type: Optional[str] = None
    #: the parsed journal event, or None if the payload was not JSON
    event: Optional[Dict] = None


class HubClient:
    """Talk to a :class:`~repro.hub.server.HubServer`."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        parts = urlsplit(self.base_url)
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port
        self._pool = ConnectionPool(self.base_url, timeout_s=timeout_s)

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "HubClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- JSON endpoints ---------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            response = self._pool.request(
                method, path, body=body, headers=headers
            )
        except _STREAM_ERRORS as error:
            raise TransportError(
                f"hub unreachable on {path}: {type(error).__name__}: {error}"
            ) from error
        try:
            reply = json.loads(response.body)
        except json.JSONDecodeError as error:
            raise TransportError(
                f"hub returned non-JSON on {path}: {error}"
            ) from error
        if response.status >= 400:
            raise TrackingError(
                f"hub rejected {path} ({response.status}): "
                f"{reply.get('error', reply)}"
            )
        return reply

    def _request_text(self, path: str) -> str:
        try:
            response = self._pool.request("GET", path)
        except _STREAM_ERRORS as error:
            raise TransportError(
                f"hub unreachable on {path}: {type(error).__name__}: {error}"
            ) from error
        if response.status >= 400:
            raise TrackingError(
                f"hub rejected {path} ({response.status})"
            )
        return response.body.decode("utf-8")

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def list_runs(self) -> Dict:
        return self._request("GET", "/runs")

    def get_run(self, run_id: str) -> Dict:
        return self._request("GET", f"/runs/{run_id}")

    def submit(self, spec: Dict) -> str:
        return self._request("POST", "/runs", spec)["run_id"]

    def resume(self, run_id: str) -> str:
        return self._request("POST", "/runs", {"resume": run_id})["run_id"]

    def cancel(self, run_id: str) -> Dict:
        return self._request("POST", f"/runs/{run_id}/cancel", {})

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def fleet_status(self) -> Dict:
        return self._request("GET", "/fleet/status")

    def fleet_metrics(self) -> str:
        return self._request_text("/fleet/metrics")

    # -- telemetry --------------------------------------------------------------
    def alerts(self) -> Dict:
        """Active + historical SLO alerts and the rules in force."""
        return self._request("GET", "/alerts")

    def obs_targets(self) -> Dict:
        return self._request("GET", "/obs/targets")

    def obs_query(
        self,
        target: str,
        series: str,
        fn: str = "last",
        window_s: float = 60.0,
        q: Optional[float] = None,
    ) -> Dict:
        """One windowed query against the hub's telemetry store."""
        path = (
            f"/obs/query?target={quote(target, safe='')}"
            f"&series={quote(series, safe='')}"
            f"&fn={quote(fn, safe='')}&window_s={window_s}"
        )
        if q is not None:
            path += f"&q={q}"
        return self._request("GET", path)

    def obs_export(self, target: str, after: int = 0) -> Dict:
        """Raw samples of one target past a byte cursor (incremental)."""
        return self._request(
            "GET",
            f"/obs/export?target={quote(target, safe='')}&after={after}",
        )

    def stream_alerts(
        self,
        last_event_id: Optional[int] = None,
        stream_timeout_s: Optional[float] = None,
    ) -> Iterator[StreamedEvent]:
        """Yield alert transitions live over one SSE connection.

        Ends when the hub drains (it closes the stream); each event's
        ``offset`` is the alert journal's byte cursor, so a caller can
        resume a new stream exactly where this one stopped.
        """
        timeout = (
            stream_timeout_s if stream_timeout_s is not None
            else max(self.timeout_s, 30.0)
        )
        connection = HTTPConnection(self._host, self._port, timeout=timeout)
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request("GET", "/alerts/events", headers=headers)
            response = connection.getresponse()
            if response.status != 200:
                body = response.read()
                raise TrackingError(
                    f"hub rejected alert stream "
                    f"({response.status}): {body[:200]!r}"
                )
            for sse in parse_sse_lines(_iter_lines(response)):
                offset = (
                    int(sse.event_id) if sse.event_id is not None else None
                )
                yield StreamedEvent(
                    raw=sse.data,
                    offset=offset,
                    type=sse.event,
                    event=_maybe_json(sse.data),
                )
        finally:
            connection.close()

    # -- SSE --------------------------------------------------------------------
    def stream_events(
        self,
        run_id: str,
        last_event_id: Optional[int] = None,
        reconnect: bool = True,
        max_reconnects: Optional[int] = None,
        reconnect_delay_s: float = 0.2,
        stream_timeout_s: Optional[float] = None,
    ) -> Iterator[StreamedEvent]:
        """Yield a run's journal events live, in order, exactly once.

        ``last_event_id`` starts mid-journal (a byte-offset cursor, e.g.
        from a previous event's ``offset``); the generator ends when the
        server sends ``end_of_stream`` (run terminal + journal drained).
        On disconnect it reconnects from the last received cursor unless
        ``reconnect=False``, in which case it raises
        :class:`~repro.errors.TransportError`.  ``stream_timeout_s``
        bounds each socket read; the default comfortably exceeds the
        server's keepalive cadence so idle streams are not mistaken for
        dead ones.
        """
        cursor = last_event_id
        failures = 0
        timeout = (
            stream_timeout_s if stream_timeout_s is not None
            else max(self.timeout_s, 30.0)
        )
        while True:
            connection = HTTPConnection(
                self._host, self._port, timeout=timeout
            )
            finished = False
            got_events = False
            try:
                headers = {"Accept": "text/event-stream"}
                if cursor is not None:
                    headers["Last-Event-ID"] = str(cursor)
                connection.request(
                    "GET", f"/runs/{run_id}/events", headers=headers
                )
                response = connection.getresponse()
                if response.status != 200:
                    body = response.read()
                    raise TrackingError(
                        f"hub rejected event stream for {run_id} "
                        f"({response.status}): {body[:200]!r}"
                    )
                for sse in parse_sse_lines(_iter_lines(response)):
                    if sse.event == "end_of_stream":
                        finished = True
                        break
                    if sse.event_id is not None:
                        cursor = int(sse.event_id)
                    got_events = True
                    failures = 0
                    yield StreamedEvent(
                        raw=sse.data,
                        offset=cursor,
                        type=sse.event,
                        event=_maybe_json(sse.data),
                    )
            except _STREAM_ERRORS as error:
                if not reconnect:
                    raise TransportError(
                        f"event stream for {run_id} dropped: "
                        f"{type(error).__name__}: {error}"
                    ) from error
            finally:
                connection.close()
            if finished:
                return
            if not reconnect:
                return
            if not got_events:
                failures += 1
                if max_reconnects is not None and failures > max_reconnects:
                    raise TransportError(
                        f"event stream for {run_id} dropped "
                        f"{failures} times without progress"
                    )
            time.sleep(reconnect_delay_s)


def _iter_lines(response) -> Iterator[str]:
    """Decode an SSE response body into newline-stripped text lines."""
    while True:
        line = response.readline()
        if not line:
            return
        yield line.decode("utf-8").rstrip("\r\n")


def _maybe_json(data: str) -> Optional[Dict]:
    try:
        parsed = json.loads(data)
    except json.JSONDecodeError:
        return None
    return parsed if isinstance(parsed, dict) else None
