"""OneLoopMappingSearch: registration, honesty, with/without a model."""

import numpy as np
import pytest

from repro.core.evaluation import SEARCH_TOOLS, SWSearchTrial, make_search_tool
from repro.costmodel import MaestroEngine
from repro.learned import LearnedCostModel, OneLoopMappingSearch, ScreeningPPAEngine
from repro.learned.features import featurize_batch
from repro.mapping.gemm_mapping import GemmMappingSpace


def _train_model(engine, hw, seed=0):
    layer_name = next(iter(engine.layer_shapes))
    shape, _count = engine.layer_shapes[layer_name]
    space = GemmMappingSpace(shape)
    rng = np.random.default_rng(seed)
    mappings = [space.sample(rng) for _ in range(48)]
    results = [engine.evaluate_layer(hw, m, layer_name) for m in mappings]
    feasible = np.array([r.feasible for r in results])
    if feasible.sum() < 8:
        pytest.skip("sampled batch too infeasible for this hw")
    return LearnedCostModel.fit(
        featurize_batch(hw, mappings, shape),
        np.array([r.latency_s for r in results]),
        np.array([r.energy_j for r in results]),
        feasible,
        seed=0,
        hidden=16,
        ensemble=2,
        epochs=80,
    )


class TestRegistration:
    def test_registered_as_search_tool(self):
        assert SEARCH_TOOLS["oneloop"] is OneLoopMappingSearch
        assert OneLoopMappingSearch.supports_speculation is False

    def test_make_search_tool_builds_it(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        search = make_search_tool(
            "oneloop", tiny_network, sample_hw, engine, seed=0
        )
        assert isinstance(search, OneLoopMappingSearch)
        assert search.model is None  # plain engine exposes no model


class TestWithoutModel:
    def test_degrades_to_mutation_search(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        trial = SWSearchTrial(
            sample_hw, tiny_network, engine, tool="oneloop", seed=3
        )
        trial.run(24)
        assert trial.search.num_fallback_proposals > 0
        assert trial.search.num_gradient_proposals == 0
        assert trial.best_ppa.latency_s < float("inf")

    def test_improves_over_budget(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        trial = SWSearchTrial(
            sample_hw, tiny_network, engine, tool="oneloop", seed=3
        )
        trial.run(30)
        curve = trial.best_curve()
        assert len(curve)
        assert curve[-1] <= curve[0]


class TestWithModel:
    def test_gradient_proposals_dominate(self, tiny_network, sample_hw):
        engine = MaestroEngine(tiny_network)
        model = _train_model(engine, sample_hw)
        search = OneLoopMappingSearch(
            tiny_network, sample_hw, engine,
            model=model, seed=5, explore_prob=0.0,
        )
        search.run(24)
        assert search.num_gradient_proposals > 0
        assert search.best_ppa.latency_s < float("inf")
        # the incumbent curve is monotone: every adopted point was folded
        # through the analytical engine, never taken from the model
        curve = search.best_curve()
        assert np.all(np.diff(curve) <= 1e-12)

    def test_picks_model_from_screening_engine(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        model = _train_model(inner, sample_hw)
        wrapped = ScreeningPPAEngine(inner, model=model)
        search = OneLoopMappingSearch(
            tiny_network, sample_hw, wrapped, seed=5, explore_prob=0.0
        )
        assert search.model is model

    def test_deterministic_under_seed(self, tiny_network, sample_hw):
        model = _train_model(MaestroEngine(tiny_network), sample_hw)

        def run_once():
            search = OneLoopMappingSearch(
                tiny_network, sample_hw, MaestroEngine(tiny_network),
                model=model, seed=11,
            )
            search.run(20)
            return search.best_ppa.latency_s

        assert run_once() == run_once()

    def test_proposals_avoid_visited_duplicates(self, tiny_network, sample_hw):
        model = _train_model(MaestroEngine(tiny_network), sample_hw)
        search = OneLoopMappingSearch(
            tiny_network, sample_hw, MaestroEngine(tiny_network),
            model=model, seed=7, explore_prob=0.0, jitter=0.0,
        )
        # jitter=0 restarts descend from the same basin every time; the
        # visited-set must still keep proposals from collapsing onto one key
        proposals = [search._propose() for _ in range(6)]
        keys = {(layer, m.key()) for layer, m in proposals}
        assert len(keys) > 1
