"""Hierarchical span tracing with dual wall/simulated timestamps.

UNICO's cost structure is intrinsically nested — MOBO iterations wrap MSH
rounds, which wrap anytime mapping searches, which wrap hundreds of
thousands of PPA queries — but flat counters cannot say *where* a
40-minute run spent its time.  This module provides the time-attribution
layer:

* :class:`Span` — one timed region with a name, typed attributes, and
  **dual timestamps**: real wall time (``time.perf_counter``) and the
  :class:`~repro.utils.clock.SimulatedClock` search cost, so a trace can
  answer both "where did the process burn CPU" and "where did the
  modeled search budget go".
* :class:`Tracer` — opens spans, maintains a thread-local context stack
  (children automatically parent to the innermost open span on the same
  thread), and fans finished spans out to pluggable :class:`SpanSink`\\ s.
* :class:`NullTracer` — the default everywhere; untraced hot paths pay a
  single ``tracer.enabled`` attribute check and nothing else.

Trace context crosses process boundaries as a ``trace_id:span_id`` pair
(the ``X-Repro-Trace`` HTTP header); see
:func:`format_trace_context` / :func:`parse_trace_context` and the
stitching logic in :mod:`repro.costmodel.service`.

Tracing is observational by construction: spans never touch any RNG and
never read search state, so a traced run's results are bit-identical to
an untraced run with the same seeds.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

#: Version stamped on every ``span`` journal event so future span schema
#: growth stays detectable by older readers.
SPAN_SCHEMA_VERSION = 1

# bound once: span enter/exit sit on the engine-evaluation hot path, where
# a traced run's overhead budget is single-digit microseconds per span
_perf_counter = time.perf_counter


class SpanSink:
    """Receiver of finished spans (as plain JSON-able dicts)."""

    def record(self, span: Dict) -> None:
        """Accept one finished span; must not mutate it."""

    def flush(self) -> None:
        """Persist anything buffered (no-op by default)."""


class InMemorySink(SpanSink):
    """Collects finished spans in a list — tests and ad-hoc profiling."""

    def __init__(self):
        self.spans: List[Dict] = []
        # hot path: bind record straight to list.append (one C call per
        # span instead of a Python frame)
        self.record = self.spans.append


class JournalSpanSink(SpanSink):
    """Appends finished spans into an :class:`~repro.tracking.journal.EventJournal`.

    Each span becomes one schema-versioned ``span`` event, so traces ride
    the same crash-safe, append-only artifact as the search's decision
    events and replay/resume tooling sees them as ordinary events.
    """

    def __init__(self, journal):
        self.journal = journal

    def record(self, span: Dict) -> None:
        """Write the span as a ``span`` journal event."""
        event = {"span_schema": SPAN_SCHEMA_VERSION}
        event.update(span)
        self.journal.append("span", event)


class Span:
    """One timed region; used as a context manager via :meth:`Tracer.span`.

    ``wall_*`` fields are ``time.perf_counter`` seconds (monotonic, so
    child intervals nest exactly inside their parents); ``sim_*`` fields
    are :class:`~repro.utils.clock.SimulatedClock` seconds when the
    tracer owns a clock, else 0.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "wall_start", "wall_dur", "sim_start", "sim_dur",
        "thread", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict,
    ):
        self.name = name
        self.trace_id = tracer.trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.wall_start = 0.0
        self.wall_dur = 0.0
        self.sim_start = 0.0
        self.sim_dur = 0.0
        self.thread = threading.get_ident()
        self._tracer = tracer

    def set_attribute(self, key: str, value) -> None:
        """Attach one typed attribute (JSON-able value) to the span."""
        self.attrs[key] = value

    def to_dict(self) -> Dict:
        """JSON-able view of the finished span (the sink wire format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_start_s": self.wall_start,
            "wall_dur_s": self.wall_dur,
            "sim_start_s": self.sim_start,
            "sim_dur_s": self.sim_dur,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    # enter/exit inline the tracer's push/pop/emit steps: the extra method
    # dispatch is measurable at engine-evaluation frequency
    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack().append(self)
        clock = tracer.clock
        if clock is not None:
            self.sim_start = clock.now_s
        self.wall_start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.wall_dur = _perf_counter() - self.wall_start
        tracer = self._tracer
        clock = tracer.clock
        if clock is not None:
            self.sim_dur = clock.now_s - self.sim_start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order finish)
            try:
                stack.remove(self)
            except ValueError:
                pass
        span_dict = self.to_dict()
        for sink in tracer.sinks:
            sink.record(span_dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """Do-nothing span: the shared return value of :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value) -> None:
        """Discard the attribute (tracing is disabled)."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Opens spans, tracks the per-thread context stack, feeds sinks.

    Parameters
    ----------
    clock:
        Optional :class:`~repro.utils.clock.SimulatedClock`; when given,
        every span also records the simulated seconds elapsed in its body.
    sinks:
        :class:`SpanSink` instances receiving every finished span.
    trace_id:
        Identity of the whole trace; defaults to a random hex id.  Spans
        propagated across the service wire keep this id, which is what
        stitches client and server spans into one trace.
    """

    enabled = True

    def __init__(self, clock=None, sinks=(), trace_id: Optional[str] = None):
        self.clock = clock
        self.sinks: List[SpanSink] = list(sinks)
        self.trace_id = trace_id if trace_id else os.urandom(8).hex()
        # span ids must stay unique across processes that share a trace
        # (client + service), hence the random per-tracer prefix
        self._id_prefix = os.urandom(3).hex()
        self._counter = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------ spans
    def _next_span_id(self) -> str:
        return f"{self._id_prefix}-{next(self._counter):x}"

    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _emit(self, span_dict: Dict) -> None:
        for sink in self.sinks:
            sink.record(span_dict)

    def span(self, name: str, **attrs) -> Span:
        """Open a child span of the current thread's innermost span.

        Use as a context manager::

            with tracer.span("iteration", iteration=3) as span:
                ...
                span.set_attribute("pareto_size", 7)
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(self, name, self._next_span_id(), parent_id, attrs)

    def start_span(
        self, name: str, parent_id: Optional[str] = None, **attrs
    ) -> Span:
        """Manually start a span (server request handlers); pair with
        :meth:`finish_span`.  ``parent_id`` overrides the context stack —
        the cross-process case, where the parent lives in another process.
        """
        span = Span(self, name, self._next_span_id(), parent_id, attrs)
        span.__enter__()
        return span

    def finish_span(self, span: Span) -> Dict:
        """Close a manually started span and return its wire dict."""
        span.__exit__(None, None, None)
        return span.to_dict()

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def record_leaf(
        self, name: str, wall_start: float, sim_start: float = 0.0, **attrs
    ) -> None:
        """Record an already-finished leaf span in one call.

        The engine-evaluation hot path runs hundreds of thousands of times
        per search; the full :class:`Span` context-manager protocol (object
        allocation, stack push/pop, ``to_dict``) costs several microseconds
        it cannot afford.  Leaf spans never parent children, so the caller
        reads ``_perf_counter()`` (and ``tracer.clock.now_s`` when sim time
        matters) before the work and hands both here afterwards; the span
        dict is built and emitted directly.
        """
        wall_end = _perf_counter()
        stack = self._stack()
        clock = self.clock
        span_dict = {
            "name": name,
            "trace_id": self.trace_id,
            "span_id": f"{self._id_prefix}-{next(self._counter):x}",
            "parent_id": stack[-1].span_id if stack else None,
            "wall_start_s": wall_start,
            "wall_dur_s": wall_end - wall_start,
            "sim_start_s": sim_start,
            "sim_dur_s": (clock.now_s - sim_start) if clock is not None else 0.0,
            "thread": threading.get_ident(),
            "attrs": attrs,
        }
        for sink in self.sinks:
            sink.record(span_dict)

    def record_remote(
        self,
        payload: Dict,
        parent: Span,
        client_elapsed_s: float,
    ) -> Dict:
        """Adopt a server-side span (from an ``X-Repro-Span`` reply header)
        into this trace as a child of ``parent``.

        The two processes' wall clocks are not synchronized, so the remote
        span is re-based into the client timeline the way RPC trace
        viewers do: centered inside the client request interval, with the
        server-measured duration kept verbatim.
        """
        server_dur = float(payload.get("wall_dur_s", 0.0))
        offset = max(0.0, (client_elapsed_s - server_dur) / 2.0)
        attrs = dict(payload.get("attrs") or {})
        attrs["remote"] = True
        span_dict = {
            "name": str(payload.get("name", "remote")),
            "trace_id": self.trace_id,
            "span_id": str(payload.get("span_id", self._next_span_id())),
            "parent_id": parent.span_id,
            "wall_start_s": parent.wall_start + offset,
            "wall_dur_s": server_dur,
            "sim_start_s": float(payload.get("sim_start_s", 0.0)),
            "sim_dur_s": float(payload.get("sim_dur_s", 0.0)),
            "thread": parent.thread,
            "attrs": attrs,
        }
        self._emit(span_dict)
        return span_dict

    def flush(self) -> None:
        """Flush every sink (e.g. write the Chrome trace file)."""
        for sink in self.sinks:
            sink.flush()


class NullTracer(Tracer):
    """The default tracer: observes nothing, costs one attribute check.

    ``span()`` hands back a shared do-nothing context manager, so even
    call sites that skip the ``tracer.enabled`` guard stay cheap.
    """

    enabled = False

    def __init__(self):
        super().__init__(clock=None, sinks=(), trace_id="0")

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return _NULL_SPAN

    def start_span(
        self, name: str, parent_id: Optional[str] = None, **attrs
    ) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return _NULL_SPAN

    def finish_span(self, span) -> Dict:
        """No-op; returns an empty dict."""
        return {}

    def record_leaf(
        self, name: str, wall_start: float, sim_start: float = 0.0, **attrs
    ) -> None:
        """No-op (tracing is disabled)."""


#: Shared disabled tracer — the default value of every ``tracer`` attribute.
NULL_TRACER = NullTracer()


# ------------------------------------------------------- context propagation
def format_trace_context(tracer: Tracer, span: Span) -> str:
    """Serialize (trace id, span id) for the ``X-Repro-Trace`` header."""
    return f"{tracer.trace_id}:{span.span_id}"


def parse_trace_context(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """Inverse of :func:`format_trace_context`; ``None`` on absent/garbage."""
    if not header:
        return None
    parts = header.strip().split(":")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        return None
    return parts[0], parts[1]


__all__ = [
    "NULL_TRACER",
    "SPAN_SCHEMA_VERSION",
    "InMemorySink",
    "JournalSpanSink",
    "NullTracer",
    "Span",
    "SpanSink",
    "Tracer",
    "format_trace_context",
    "parse_trace_context",
]
