"""Sharded client: parity with local engines, fan-out, failover, draining."""

import pickle

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer
from repro.fleet.client import ShardedPPAEngine
from repro.mapping import FlexTensorSearch, GemmMapping

MAPPINGS = [
    GemmMapping(4, 8, 4),
    GemmMapping(8, 8, 8),
    GemmMapping(16, 16, 8),
    GemmMapping(4, 16, 16),
    GemmMapping(8, 32, 8),
    GemmMapping(16, 8, 16),
]


@pytest.fixture()
def fleet(tiny_network):
    servers = [PPAServiceServer(MaestroEngine(tiny_network)) for _ in range(3)]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


def _sharded(tiny_network, fleet, **overrides):
    kwargs = dict(
        timeout_s=2.0,
        max_network_retries=0,
        backoff_base_s=0.001,
        backoff_max_s=0.002,
        batch_size=2,
    )
    kwargs.update(overrides)
    return ShardedPPAEngine(
        tiny_network,
        [server.url for server in fleet],
        area_fn=spatial_area_mm2,
        **kwargs,
    )


class TestParity:
    def test_candidates_match_local_engine(self, tiny_network, fleet, sample_hw):
        local = MaestroEngine(tiny_network)
        sharded = _sharded(tiny_network, fleet)
        assert sharded.evaluate_candidates(
            sample_hw, "gemm", MAPPINGS
        ) == local.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        assert sharded.num_queries == local.num_queries
        sharded.close()

    def test_layers_match_local_engine(self, tiny_network, fleet, sample_hw):
        local = MaestroEngine(tiny_network)
        sharded = _sharded(tiny_network, fleet)
        requests = [(mapping, "gemm") for mapping in MAPPINGS]
        assert sharded.evaluate_layers(
            sample_hw, requests
        ) == local.evaluate_layers(sample_hw, requests)
        assert sharded.num_queries == local.num_queries
        sharded.close()

    def test_repeat_served_from_client_cache(self, tiny_network, fleet, sample_hw):
        sharded = _sharded(tiny_network, fleet)
        first = sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        backend_queries = [server.engine.num_queries for server in fleet]
        again = sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        assert again == first
        assert [server.engine.num_queries for server in fleet] == backend_queries
        assert sharded.num_cache_hits == len(MAPPINGS)
        sharded.close()

    def test_full_search_bit_identical_to_local(
        self, tiny_network, fleet, sample_hw
    ):
        """The tentpole parity gate: a search sees identical bytes."""
        local_search = FlexTensorSearch(
            tiny_network, sample_hw, MaestroEngine(tiny_network), seed=7
        )
        local_search.run(20)
        sharded = _sharded(tiny_network, fleet)
        remote_search = FlexTensorSearch(tiny_network, sample_hw, sharded, seed=7)
        remote_search.run(20)
        assert np.array_equal(
            remote_search.best_curve(), local_search.best_curve()
        )
        assert remote_search.best_objective == local_search.best_objective
        sharded.close()

    def test_work_spreads_across_replicas(self, tiny_network, fleet, sample_hw):
        sharded = _sharded(tiny_network, fleet)
        sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        served = [server.engine.num_queries for server in fleet]
        assert sum(served) == len(MAPPINGS)
        assert sum(1 for count in served if count > 0) >= 2
        sharded.close()


class TestFailover:
    def test_dead_replica_fails_over(self, tiny_network, fleet, sample_hw):
        local = MaestroEngine(tiny_network)
        sharded = _sharded(tiny_network, fleet)
        fleet[0].stop()
        results = sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        assert results == local.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        sharded.close()

    def test_draining_replica_rerouted_without_breaker_charge(
        self, tiny_network, fleet, sample_hw
    ):
        local = MaestroEngine(tiny_network)
        sharded = _sharded(tiny_network, fleet)
        fleet[1].begin_drain()
        results = sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        assert results == local.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        # a drain is routine: no breaker may have opened anywhere
        assert all(
            shard.breaker.num_opens == 0 for shard in sharded.router.shards
        )
        sharded.close()

    def test_single_url_degenerates_to_remote_engine(
        self, tiny_network, fleet, sample_hw
    ):
        local = MaestroEngine(tiny_network)
        sharded = _sharded(tiny_network, fleet[:1])
        assert sharded.evaluate_candidates(
            sample_hw, "gemm", MAPPINGS
        ) == local.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        sharded.close()

    def test_no_urls_rejected(self, tiny_network):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            ShardedPPAEngine(tiny_network, [], area_fn=spatial_area_mm2)


class TestStatsAndPickle:
    def test_stats_report_fleet_block(self, tiny_network, fleet, sample_hw):
        sharded = _sharded(tiny_network, fleet)
        sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        stats = sharded.stats()
        assert stats["fleet"]["replicas"] == 3
        assert len(stats["fleet"]["shards"]) == 3
        assert any(
            shard["pool"]["num_created"] > 0
            for shard in stats["fleet"]["shards"]
        )
        sharded.close()

    def test_health_probes_every_shard(self, tiny_network, fleet):
        sharded = _sharded(tiny_network, fleet)
        report = sharded.health()
        assert set(report) == {"shard-0", "shard-1", "shard-2"}
        assert all(payload["status"] == "ok" for payload in report.values())
        sharded.close()

    def test_pickle_roundtrip_still_evaluates(
        self, tiny_network, fleet, sample_hw
    ):
        sharded = _sharded(tiny_network, fleet)
        sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS[:2])
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone.evaluate_candidates(
            sample_hw, "gemm", MAPPINGS
        ) == sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
        clone.close()
        sharded.close()
