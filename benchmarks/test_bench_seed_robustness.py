"""Extension study: is the Fig. 10 ordering stable across seeds?

The ablation gaps compress at bench budgets, so a single seed proving
"UNICO > HASCO" could be luck.  This bench repeats the two-variant
comparison (HASCO vs full UNICO) over several seeds on one workload and
checks UNICO's mean final hypervolume with a win-rate criterion.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import combined_reference, final_hypervolume, run_method
from repro.utils.records import RunRecord

NETWORK = "srgan"
SEEDS = (0, 1, 2)


def _run_sweep() -> RunRecord:
    record = RunRecord("seed-robustness")
    results = {}
    for seed in SEEDS:
        for method in ("hasco", "unico"):
            results[(method, seed)] = run_method(
                method, "edge", NETWORK, "bench", seed=seed
            )
    reference = combined_reference(list(results.values()))
    hvs = {key: final_hypervolume(result, reference) for key, result in results.items()}
    wins = 0
    for seed in SEEDS:
        unico_hv = hvs[("unico", seed)]
        hasco_hv = hvs[("hasco", seed)]
        child = record.child(f"seed_{seed}")
        child.put("unico_hv", unico_hv)
        child.put("hasco_hv", hasco_hv)
        child.put("unico_cost_h", results[("unico", seed)].total_time_h)
        child.put("hasco_cost_h", results[("hasco", seed)].total_time_h)
        if unico_hv >= hasco_hv:
            wins += 1
    record.put("unico_mean_hv", float(np.mean([hvs[("unico", s)] for s in SEEDS])))
    record.put("hasco_mean_hv", float(np.mean([hvs[("hasco", s)] for s in SEEDS])))
    record.put("unico_win_rate", wins / len(SEEDS))
    return record


@pytest.mark.benchmark(group="extension")
def test_seed_robustness(benchmark, results_dir):
    record = run_once(benchmark, _run_sweep)
    save_record(results_dir, "seed_robustness", record)
    print(f"\n=== Extension: seed robustness on {NETWORK} (seeds {SEEDS}) ===")
    for seed in SEEDS:
        child = record.children[f"seed_{seed}"]
        print(
            f"seed {seed}: unico hv {child.get('unico_hv'):.4f} "
            f"({child.get('unico_cost_h'):.2f} h) vs "
            f"hasco hv {child.get('hasco_hv'):.4f} "
            f"({child.get('hasco_cost_h'):.2f} h)"
        )
    print(
        f"mean hv: unico {record.get('unico_mean_hv'):.4f} "
        f"vs hasco {record.get('hasco_mean_hv'):.4f}; "
        f"win rate {record.get('unico_win_rate'):.2f}"
    )
    # UNICO matches or beats HASCO's front quality on average while paying
    # a fraction of the cost (cost columns printed above)
    assert record.get("unico_mean_hv") >= 0.95 * record.get("hasco_mean_hv")
    assert record.get("unico_win_rate") >= 0.5
