"""Pipeline tracing and bottleneck analysis for the Ascend-like simulator.

Real cycle-accurate models are valued for their *observability*: per-stage
utilization, where the pipeline stalls, which buffer starves the cube.
This module re-runs the tile-pipeline recurrence while recording per-stage
busy cycles and produces a :class:`PipelineTrace` with:

* per-stage busy/total utilization,
* the bottleneck stage (highest utilization),
* bank-stall accounting (time a stage waited for a consumer to free a
  buffer slot),

plus :func:`explain_layer`, a human-readable breakdown used by the
deployment example and the Fig. 11 analysis of why a found configuration
beats the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.camodel.ascend_sim import (
    MAX_SIMULATED_TILES,
    _STAGE_NAMES,
    _capacity_check,
    _tile_costs,
)
from repro.camodel.mapping import AscendMapping
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.errors import EvaluationError
from repro.hw.ascend import AscendHWConfig
from repro.utils.intmath import round_up_div
from repro.workloads.layers import GemmShape


@dataclass(frozen=True)
class StageStats:
    """Utilization of one pipeline stage over the simulated window."""

    name: str
    busy_cycles: float
    stall_cycles: float
    utilization: float


@dataclass(frozen=True)
class PipelineTrace:
    """Per-stage accounting of one operator's execution."""

    total_cycles: float
    simulated_tiles: int
    n_tiles: int
    stages: Tuple[StageStats, ...]

    @property
    def bottleneck(self) -> StageStats:
        return max(self.stages, key=lambda stage: stage.utilization)

    def stage(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise EvaluationError(f"no pipeline stage named {name!r}")


def trace_layer(
    hw: AscendHWConfig,
    mapping: AscendMapping,
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> PipelineTrace:
    """Run the pipeline recurrence with per-stage instrumentation."""
    ok, reason = _capacity_check(hw, mapping, tech)
    if not ok:
        raise EvaluationError(f"infeasible mapping: {reason}")
    tm, tn, tk = mapping.tiles()
    trips_m = round_up_div(shape.m, tm)
    trips_n = round_up_div(shape.n, tn)
    trips_k = round_up_div(shape.k, tk)
    n_tiles = trips_m * trips_n * trips_k
    costs = _tile_costs(hw, mapping, shape, tech)
    durations = costs.as_list()
    banks = (
        1,
        2,
        min(hw.l0a_banks, hw.l0b_banks),
        hw.l0c_banks,
        2,
    )
    num_stages = len(durations)
    simulate = min(n_tiles, MAX_SIMULATED_TILES)
    finish = [[0.0] * simulate for _ in range(num_stages)]
    busy = [0.0] * num_stages
    stalls = [0.0] * num_stages
    for t in range(simulate):
        last_k = (t % trips_k) == trips_k - 1
        for s in range(num_stages):
            duration = durations[s]
            if s >= 4 and not last_k:
                duration = 0.0
            earliest = finish[s - 1][t] if s > 0 else 0.0
            if t > 0:
                earliest = max(earliest, finish[s][t - 1])
            start = earliest
            if s + 1 < num_stages:
                depth = banks[s]
                if t - depth >= 0:
                    start = max(start, finish[s + 1][t - depth])
            stalls[s] += start - earliest
            busy[s] += duration
            finish[s][t] = start + duration
    total = finish[-1][simulate - 1]
    stages = tuple(
        StageStats(
            name=_STAGE_NAMES[s],
            busy_cycles=busy[s],
            stall_cycles=stalls[s],
            utilization=busy[s] / total if total > 0 else 0.0,
        )
        for s in range(num_stages)
    )
    return PipelineTrace(
        total_cycles=total,
        simulated_tiles=simulate,
        n_tiles=n_tiles,
        stages=stages,
    )


def explain_layer(
    hw: AscendHWConfig,
    mapping: AscendMapping,
    shape: GemmShape,
    tech: Technology = DEFAULT_TECHNOLOGY,
) -> str:
    """A human-readable bottleneck report for one operator."""
    trace = trace_layer(hw, mapping, shape, tech)
    lines = [
        f"tiles: {trace.n_tiles} (simulated {trace.simulated_tiles}), "
        f"window {trace.total_cycles:.0f} cycles"
    ]
    for stage in trace.stages:
        bar = "#" * int(round(30 * stage.utilization))
        lines.append(
            f"  {stage.name:<8s} util {stage.utilization:6.1%} "
            f"|{bar:<30s}| stall {stage.stall_cycles:.0f} cy"
        )
    bottleneck = trace.bottleneck
    lines.append(f"bottleneck: {bottleneck.name} ({bottleneck.utilization:.1%})")
    return "\n".join(lines)
