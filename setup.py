"""Setup shim for environments lacking the `wheel` package.

`pip install -e .` with modern editable mode needs bdist_wheel; this shim
lets legacy editable installs (and `python setup.py develop`) work offline.
"""

from setuptools import setup

setup()
