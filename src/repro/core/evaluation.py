"""Inner-level evaluation: SW mapping search -> objective vector Y.

The bridge between the mapping-search substrate and the co-optimizers:

* :class:`SWSearchTrial` wraps an :class:`AnytimeMappingSearch` as the
  resumable :class:`~repro.optim.sh.Trial` successive halving consumes, and
  tracks how many PPA-engine queries (and therefore how much modeled
  wall-clock) the trial consumed.
* :func:`make_search_tool` instantiates the configured tool by name.
* :func:`assemble_objectives` turns a finished trial into the MOBO vector
  ``Y = (latency, power, area[, sensitivity])``, applying the scenario's
  power/area caps as feasibility filters (a capped design evaluates to an
  all-infinite Y, which every optimizer treats as dominated/infeasible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

import numpy as np

from repro.core.robustness import RobustnessResult, robustness_metric
from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import NetworkPPA
from repro.errors import ConfigurationError
from repro.learned.oneloop import OneLoopMappingSearch
from repro.learned.screen import SCREENED_REASON
from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.cosa import CosaMapper
from repro.mapping.flextensor import FlexTensorSearch
from repro.mapping.fusion import DepthFirstFusionSearch
from repro.mapping.gamma import GammaSearch
from repro.mapping.random_search import RandomMappingSearch
from repro.workloads.network import Network

SEARCH_TOOLS: Dict[str, Type[AnytimeMappingSearch]] = {
    "flextensor": FlexTensorSearch,
    "gamma": GammaSearch,
    "random": RandomMappingSearch,
    "fusion": DepthFirstFusionSearch,
    "cosa": CosaMapper,
    "oneloop": OneLoopMappingSearch,
}


def make_search_tool(
    tool: str,
    network: Network,
    hw,
    engine: PPAEngine,
    objective: str = "latency",
    seed=None,
    batch_size: int = 1,
) -> AnytimeMappingSearch:
    """Instantiate a registered SW mapping search tool by name."""
    if tool not in SEARCH_TOOLS:
        raise ConfigurationError(
            f"unknown search tool {tool!r}; available: {sorted(SEARCH_TOOLS)}"
        )
    return SEARCH_TOOLS[tool](
        network, hw, engine, objective=objective, seed=seed, batch_size=batch_size
    )


class _QueryCountingEngine:
    """Per-trial view of a shared engine with race-free query accounting.

    Several trials of one successive-halving round may run concurrently
    (``JobRunner`` thread backend) against the *same* engine; deltas of the
    engine-global ``num_queries`` would then interleave across trials and
    corrupt the per-trial durations the simulated clock charges.  This
    proxy counts the queries issued *through it* locally, delegating all
    work (and caching, and clock charging) to the shared engine.
    """

    def __init__(self, engine: PPAEngine):
        self._engine = engine
        self.local_queries = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    # Without these, pickle's *instance* lookup of __getstate__ (CPython
    # 3.10) would fall through __getattr__ to the wrapped engine's method
    # and serialize the engine's state as the view's — silently corrupting
    # process-backend round dispatch.
    def __getstate__(self):
        return self.__dict__

    def __setstate__(self, state):
        self.__dict__.update(state)

    def evaluate_layer(self, hw, mapping, layer_name):
        self.local_queries += 1
        return self._engine.evaluate_layer(hw, mapping, layer_name)

    def evaluate_layers(self, hw, requests):
        self.local_queries += len(requests)
        return self._engine.evaluate_layers(hw, requests)

    def evaluate_candidates(self, hw, layer_name, mappings):
        if getattr(self._engine, "is_screening", False):
            # a screening wrapper forwards only part of the batch to the
            # analytical engine; only those candidates cost a query (and
            # therefore simulated eval time).  Screened-out results are
            # tagged, so per-trial accounting stays race-free.
            results = self._engine.evaluate_candidates(hw, layer_name, mappings)
            self.local_queries += sum(
                1 for result in results
                if result.infeasible_reason != SCREENED_REASON
            )
            return results
        self.local_queries += len(mappings)
        return self._engine.evaluate_candidates(hw, layer_name, mappings)

    def evaluate_network(self, hw, mappings):
        # mirrors PPAEngine.evaluate_network: one query per mapped layer
        self.local_queries += sum(
            1 for name in self._engine.layer_shapes if name in mappings
        )
        return self._engine.evaluate_network(hw, mappings)


class SWSearchTrial:
    """A resumable SW-mapping-search job for one hardware configuration."""

    def __init__(
        self,
        hw,
        network: Network,
        engine: PPAEngine,
        tool: str = "flextensor",
        objective: str = "latency",
        seed=None,
        batch_size: int = 1,
    ):
        self.hw = hw
        self.engine = engine
        self._view = _QueryCountingEngine(engine)
        self.search = make_search_tool(
            tool, network, hw, self._view, objective, seed, batch_size=batch_size
        )
        #: engine queries consumed (initialization included)
        self.queries_spent = self._view.local_queries

    def reattach_engine(self, engine: PPAEngine) -> None:
        """Re-point a round-tripped trial at the shared engine.

        A trial advanced in a worker process comes back holding pickled
        *copies* of the engine; later rounds (and anything the optimizer
        does with the trial afterwards) must hit the real shared engine —
        its cache, clock, and accounting.  The counting view is the same
        unpickled object the search tool holds, so re-pointing it switches
        the search too.
        """
        self.engine = engine
        self._view._engine = engine

    def run(self, additional_budget: int) -> "SWSearchTrial":
        queries_before = self._view.local_queries
        self.search.run(additional_budget)
        self.queries_spent += self._view.local_queries - queries_before
        return self

    def best_curve(self) -> np.ndarray:
        return self.search.best_curve()

    @property
    def spent_budget(self) -> int:
        return self.search.spent_budget

    @property
    def best_ppa(self) -> NetworkPPA:
        return self.search.best_ppa

    def robustness(self, alpha: float = 0.05) -> RobustnessResult:
        return robustness_metric(self.search.history, alpha=alpha)


@dataclass(frozen=True)
class HWEvaluation:
    """Outcome of evaluating one hardware configuration."""

    hw: object
    objectives: np.ndarray  # (latency, power, area[, sensitivity])
    ppa: NetworkPPA
    robustness: RobustnessResult
    budget_spent: int
    feasible: bool

    @property
    def ppa_vector(self) -> np.ndarray:
        """(latency, power, area) regardless of the robustness objective."""
        return np.array([self.ppa.latency_s, self.ppa.power_w, self.ppa.area_mm2])


def assemble_objectives(
    trial: SWSearchTrial,
    include_robustness: bool = True,
    power_cap_w: Optional[float] = None,
    area_cap_mm2: Optional[float] = None,
    robustness_alpha: float = 0.05,
    constraints=None,
) -> HWEvaluation:
    """Build ``Y`` for a hardware configuration from its finished trial.

    Feasibility combines the scalar caps (kept for convenience) with any
    extra :class:`~repro.hw.constraints.ConstraintSet`.
    """
    from repro.hw.constraints import ConstraintSet

    ppa = trial.best_ppa
    robustness = trial.robustness(alpha=robustness_alpha)
    rules = ConstraintSet.from_caps(power_cap_w, area_cap_mm2)
    feasible = ppa.feasible and rules.satisfied(trial.hw, ppa)
    if feasible and constraints is not None:
        feasible = constraints.satisfied(trial.hw, ppa)
    num_objectives = 4 if include_robustness else 3
    if not feasible:
        objectives = np.full(num_objectives, np.inf)
    else:
        base = [ppa.latency_s, ppa.power_w, ppa.area_mm2]
        if include_robustness:
            base.append(robustness.r_value)
        objectives = np.array(base, dtype=float)
    return HWEvaluation(
        hw=trial.hw,
        objectives=objectives,
        ppa=ppa,
        robustness=robustness,
        budget_spent=trial.spent_budget,
        feasible=feasible,
    )
