#!/usr/bin/env python
"""Robust hardware search: the sensitivity metric R in action (Section 4.3).

1. Co-optimize on a multi-workload training set WITHOUT the robustness
   objective.
2. Inspect the Pareto front's R values — designs with similar PPA can have
   very different sensitivity to the software-mapping search.
3. Transfer the most- and least-robust comparable designs to an unseen
   workload with a fresh SW mapping search and compare.

Run:  python examples/robust_hardware.py
"""

import numpy as np

from repro.experiments import run_method, sw_search_on
from repro.experiments.fig8 import select_comparable_pairs

TRAIN = ["srgan", "bert"]
UNSEEN = "mobilenet"


def main() -> None:
    print(f"Training workloads: {TRAIN}; unseen workload: {UNSEEN!r}")
    result = run_method("unico_no_r", "edge", TRAIN, "smoke", seed=3)
    designs = list(result.pareto.items)
    print(f"\nPareto front ({len(designs)} designs) with post-hoc R values:")
    for design, point in zip(designs, result.pareto.points):
        print(
            f"  {design.hw.short_name():<44s} "
            f"L={point[0] * 1e3:9.2f} ms  P={point[1] * 1e3:7.1f} mW  "
            f"R={design.robustness.r_value:.4f}"
        )

    pairs = select_comparable_pairs(designs, tolerance=0.10)
    tolerance = 0.10
    while not pairs and tolerance < 1.0 and len(designs) >= 2:
        tolerance *= 2
        pairs = select_comparable_pairs(designs, tolerance)
    if not pairs:
        print("\nNo comparable pair on this small front — rerun with a "
              "larger budget (preset 'bench').")
        return

    i, j = pairs[0]
    robust, fragile = (
        (designs[i], designs[j])
        if designs[i].robustness.r_value <= designs[j].robustness.r_value
        else (designs[j], designs[i])
    )
    print(f"\nComparable pair (PPA within {tolerance:.0%}):")
    print(f"  robust : {robust.hw.short_name()}  R={robust.robustness.r_value:.4f}")
    print(f"  fragile: {fragile.hw.short_name()}  R={fragile.robustness.r_value:.4f}")

    print(f"\nTransferring both to unseen workload {UNSEEN!r}...")
    latencies = {}
    for label, design in (("robust", robust), ("fragile", fragile)):
        trial = sw_search_on(design.hw, UNSEEN, "edge", budget=60, seed=0)
        latencies[label] = trial.best_ppa.latency_s
        print(f"  {label:<7s} latency on {UNSEEN}: "
              f"{latencies[label] * 1e3:.2f} ms")
    gain = 100.0 * (latencies["fragile"] - latencies["robust"]) / latencies["fragile"]
    print(f"\nLower-R design is {gain:+.1f}% "
          f"{'better' if gain >= 0 else 'worse'} on the unseen workload.")


if __name__ == "__main__":
    main()
