"""UNICO core: the paper's contribution.

* :class:`Unico` / :class:`UnicoConfig` — Algorithm 1 (MOBO + MSH +
  high-fidelity surrogate update + robustness objective),
* :mod:`repro.core.robustness` — the sensitivity metric R (Eq. 2),
* :mod:`repro.core.highfidelity` — the UUL update rule,
* :mod:`repro.core.baselines` — HASCO-like, NSGA-II, MOBOHB, random,
* :class:`CoSearchResult` — the uniform result type of every method.
"""

from repro.core.base import CoOptimizer, CoSearchResult, HWDesign, TimelineEntry
from repro.core.baselines import (
    HascoBaseline,
    HascoConfig,
    MobohbBaseline,
    MobohbConfig,
    NSGA2Codesign,
    NSGA2CodesignConfig,
    RandomCodesign,
    RandomCodesignConfig,
)
from repro.core.evaluation import (
    SEARCH_TOOLS,
    HWEvaluation,
    SWSearchTrial,
    assemble_objectives,
    make_search_tool,
)
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.highfidelity import ChampionSelector, HighFidelitySelector
from repro.core.multiworkload import (
    MultiWorkloadEngine,
    MultiWorkloadTrial,
    multi_workload_trial_factory,
)
from repro.core.runner import JobRunner
from repro.core.robustness import RobustnessResult, f_theta, robustness_metric
from repro.core.unico import IterationRecord, Unico, UnicoConfig

__all__ = [
    "load_checkpoint",
    "save_checkpoint",
    "MultiWorkloadEngine",
    "MultiWorkloadTrial",
    "multi_workload_trial_factory",
    "JobRunner",
    "CoOptimizer",
    "CoSearchResult",
    "HWDesign",
    "TimelineEntry",
    "HascoBaseline",
    "HascoConfig",
    "MobohbBaseline",
    "MobohbConfig",
    "NSGA2Codesign",
    "NSGA2CodesignConfig",
    "RandomCodesign",
    "RandomCodesignConfig",
    "SEARCH_TOOLS",
    "HWEvaluation",
    "SWSearchTrial",
    "assemble_objectives",
    "make_search_tool",
    "ChampionSelector",
    "HighFidelitySelector",
    "RobustnessResult",
    "f_theta",
    "robustness_metric",
    "IterationRecord",
    "Unico",
    "UnicoConfig",
]
