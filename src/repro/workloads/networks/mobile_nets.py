"""Mobile / efficiency-oriented backbones.

MobileNetV1/V2/V3 (large & small), NASNetMobile, EfficientNetV2-S and
ConvNeXt-T.  The latter four serve as the paper's *newer, unseen* validation
networks (Sections 4.3-4.4).  Shapes follow the original papers at 224x224.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.layers import Conv2D, DepthwiseConv2D, Gemm, LayerSpec, pointwise_conv
from repro.workloads.network import Network


def _separable(
    prefix: str, cin: int, cout: int, h: int, w: int, stride: int = 1, count: int = 1
) -> List[LayerSpec]:
    """Depthwise 3x3 + pointwise 1x1, the MobileNetV1 building block."""
    out_h = -(-h // stride)
    out_w = -(-w // stride)
    return [
        DepthwiseConv2D(
            name=f"{prefix}_dw",
            channels=cin,
            in_h=h,
            in_w=w,
            stride=stride,
            count=count,
        ),
        pointwise_conv(f"{prefix}_pw", cin, cout, out_h, out_w, count=count),
    ]


def mobilenet_v1() -> Network:
    """MobileNetV1 (Howard et al., 2017), width 1.0, 224x224."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="conv1",
            in_channels=3,
            out_channels=32,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        )
    ]
    layers += _separable("b1", 32, 64, 112, 112)
    layers += _separable("b2", 64, 128, 112, 112, stride=2)
    layers += _separable("b3", 128, 128, 56, 56)
    layers += _separable("b4", 128, 256, 56, 56, stride=2)
    layers += _separable("b5", 256, 256, 28, 28)
    layers += _separable("b6", 256, 512, 28, 28, stride=2)
    layers += _separable("b7", 512, 512, 14, 14, count=5)
    layers += _separable("b8", 512, 1024, 14, 14, stride=2)
    layers += _separable("b9", 1024, 1024, 7, 7)
    layers.append(Gemm(name="fc", m=1000, n=1, k=1024))
    return Network(
        name="mobilenet",
        layers=tuple(layers),
        family="mobile",
        year=2017,
        description="MobileNetV1 1.0 @ 224x224",
    )


def _inverted_residual(
    prefix: str,
    cin: int,
    cout: int,
    h: int,
    w: int,
    expand: int,
    stride: int = 1,
    kernel: int = 3,
    count: int = 1,
) -> List[LayerSpec]:
    """MobileNetV2-style inverted residual: expand 1x1, dw kxk, project 1x1."""
    hidden = cin * expand
    out_h = -(-h // stride)
    out_w = -(-w // stride)
    block: List[LayerSpec] = []
    if expand != 1:
        block.append(pointwise_conv(f"{prefix}_expand", cin, hidden, h, w, count=count))
    block.append(
        DepthwiseConv2D(
            name=f"{prefix}_dw",
            channels=hidden,
            in_h=h,
            in_w=w,
            kernel=kernel,
            stride=stride,
            count=count,
        )
    )
    block.append(
        pointwise_conv(f"{prefix}_project", hidden, cout, out_h, out_w, count=count)
    )
    return block


def mobilenet_v2() -> Network:
    """MobileNetV2 (Sandler et al., 2018), width 1.0, 224x224."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="conv1",
            in_channels=3,
            out_channels=32,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        )
    ]
    layers += _inverted_residual("b1", 32, 16, 112, 112, expand=1)
    layers += _inverted_residual("b2a", 16, 24, 112, 112, expand=6, stride=2)
    layers += _inverted_residual("b2b", 24, 24, 56, 56, expand=6)
    layers += _inverted_residual("b3a", 24, 32, 56, 56, expand=6, stride=2)
    layers += _inverted_residual("b3b", 32, 32, 28, 28, expand=6, count=2)
    layers += _inverted_residual("b4a", 32, 64, 28, 28, expand=6, stride=2)
    layers += _inverted_residual("b4b", 64, 64, 14, 14, expand=6, count=3)
    layers += _inverted_residual("b5", 64, 96, 14, 14, expand=6, count=3)
    layers += _inverted_residual("b6a", 96, 160, 14, 14, expand=6, stride=2)
    layers += _inverted_residual("b6b", 160, 160, 7, 7, expand=6, count=2)
    layers += _inverted_residual("b7", 160, 320, 7, 7, expand=6)
    layers.append(pointwise_conv("head", 320, 1280, 7, 7))
    layers.append(Gemm(name="fc", m=1000, n=1, k=1280))
    return Network(
        name="mobilenetv2",
        layers=tuple(layers),
        family="mobile",
        year=2018,
        description="MobileNetV2 1.0 @ 224x224",
    )


def mobilenet_v3_large() -> Network:
    """MobileNetV3-Large (Howard et al., 2019), 224x224."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="conv1",
            in_channels=3,
            out_channels=16,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        )
    ]
    layers += _inverted_residual("b1", 16, 16, 112, 112, expand=1)
    layers += _inverted_residual("b2", 16, 24, 112, 112, expand=4, stride=2)
    layers += _inverted_residual("b3", 24, 24, 56, 56, expand=3)
    layers += _inverted_residual("b4", 24, 40, 56, 56, expand=3, stride=2, kernel=5)
    layers += _inverted_residual("b5", 40, 40, 28, 28, expand=3, kernel=5, count=2)
    layers += _inverted_residual("b6", 40, 80, 28, 28, expand=6, stride=2)
    layers += _inverted_residual("b7", 80, 80, 14, 14, expand=2, count=3)
    layers += _inverted_residual("b8", 80, 112, 14, 14, expand=6, count=2)
    layers += _inverted_residual("b9", 112, 160, 14, 14, expand=6, stride=2, kernel=5)
    layers += _inverted_residual("b10", 160, 160, 7, 7, expand=6, kernel=5, count=2)
    layers.append(pointwise_conv("head1", 160, 960, 7, 7))
    layers.append(Gemm(name="head2", m=1280, n=1, k=960))
    layers.append(Gemm(name="fc", m=1000, n=1, k=1280))
    return Network(
        name="mobilenetv3_large",
        layers=tuple(layers),
        family="mobile",
        year=2019,
        description="MobileNetV3-Large @ 224x224",
    )


def mobilenet_v3_small() -> Network:
    """MobileNetV3-Small (Howard et al., 2019), 224x224."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="conv1",
            in_channels=3,
            out_channels=16,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        )
    ]
    layers += _inverted_residual("b1", 16, 16, 112, 112, expand=1, stride=2)
    layers += _inverted_residual("b2", 16, 24, 56, 56, expand=4, stride=2)
    layers += _inverted_residual("b3", 24, 24, 28, 28, expand=4)
    layers += _inverted_residual("b4", 24, 40, 28, 28, expand=4, stride=2, kernel=5)
    layers += _inverted_residual("b5", 40, 40, 14, 14, expand=6, kernel=5, count=2)
    layers += _inverted_residual("b6", 40, 48, 14, 14, expand=3, kernel=5, count=2)
    layers += _inverted_residual("b7", 48, 96, 14, 14, expand=6, stride=2, kernel=5)
    layers += _inverted_residual("b8", 96, 96, 7, 7, expand=6, kernel=5, count=2)
    layers.append(pointwise_conv("head1", 96, 576, 7, 7))
    layers.append(Gemm(name="head2", m=1024, n=1, k=576))
    layers.append(Gemm(name="fc", m=1000, n=1, k=1024))
    return Network(
        name="mobilenetv3_small",
        layers=tuple(layers),
        family="mobile",
        year=2019,
        description="MobileNetV3-Small @ 224x224",
    )


def nasnet_mobile() -> Network:
    """NASNetMobile (Zoph et al., 2018) — representative cell operators."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="stem",
            in_channels=3,
            out_channels=32,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        ),
        # normal cells at 28x28 (x4), separable 3x3/5x5 branches, 44 filters
        DepthwiseConv2D(name="nc28_dw3", channels=176, in_h=28, in_w=28, count=8),
        DepthwiseConv2D(
            name="nc28_dw5", channels=176, in_h=28, in_w=28, kernel=5, count=8
        ),
        pointwise_conv("nc28_pw", 176, 176, 28, 28, count=16),
        # reduction to 14x14, 352 filters
        DepthwiseConv2D(
            name="rc14_dw5", channels=352, in_h=28, in_w=28, kernel=5, stride=2, count=3
        ),
        pointwise_conv("rc14_pw", 352, 352, 14, 14, count=3),
        DepthwiseConv2D(name="nc14_dw3", channels=352, in_h=14, in_w=14, count=8),
        DepthwiseConv2D(
            name="nc14_dw5", channels=352, in_h=14, in_w=14, kernel=5, count=8
        ),
        pointwise_conv("nc14_pw", 352, 352, 14, 14, count=16),
        # reduction to 7x7, 704 filters
        DepthwiseConv2D(
            name="rc7_dw5", channels=704, in_h=14, in_w=14, kernel=5, stride=2, count=3
        ),
        pointwise_conv("rc7_pw", 704, 704, 7, 7, count=3),
        DepthwiseConv2D(name="nc7_dw3", channels=704, in_h=7, in_w=7, count=8),
        DepthwiseConv2D(
            name="nc7_dw5", channels=704, in_h=7, in_w=7, kernel=5, count=8
        ),
        pointwise_conv("nc7_pw", 704, 704, 7, 7, count=16),
        Gemm(name="fc", m=1000, n=1, k=1056),
    ]
    return Network(
        name="nasnetmobile",
        layers=tuple(layers),
        family="mobile",
        year=2018,
        description="NASNetMobile @ 224x224 (representative cells)",
    )


def efficientnet_v2() -> Network:
    """EfficientNetV2-S (Tan & Le, 2021) — fused-MBConv early stages."""
    layers: List[LayerSpec] = [
        Conv2D(
            name="stem",
            in_channels=3,
            out_channels=24,
            in_h=224,
            in_w=224,
            kernel=3,
            stride=2,
        ),
        # fused-MBConv: full 3x3 conv replaces expand+dw
        Conv2D(
            name="fused1",
            count=2,
            in_channels=24,
            out_channels=24,
            in_h=112,
            in_w=112,
            kernel=3,
        ),
        Conv2D(
            name="fused2a",
            in_channels=24,
            out_channels=96,
            in_h=112,
            in_w=112,
            kernel=3,
            stride=2,
        ),
        pointwise_conv("fused2b", 96, 48, 56, 56),
        Conv2D(
            name="fused2c",
            count=3,
            in_channels=48,
            out_channels=192,
            in_h=56,
            in_w=56,
            kernel=3,
        ),
        pointwise_conv("fused2d", 192, 48, 56, 56, count=3),
        Conv2D(
            name="fused3a",
            in_channels=48,
            out_channels=192,
            in_h=56,
            in_w=56,
            kernel=3,
            stride=2,
        ),
        pointwise_conv("fused3b", 192, 64, 28, 28),
        Conv2D(
            name="fused3c",
            count=3,
            in_channels=64,
            out_channels=256,
            in_h=28,
            in_w=28,
            kernel=3,
        ),
        pointwise_conv("fused3d", 256, 64, 28, 28, count=3),
    ]
    layers += _inverted_residual("mb4a", 64, 128, 28, 28, expand=4, stride=2)
    layers += _inverted_residual("mb4b", 128, 128, 14, 14, expand=4, count=5)
    layers += _inverted_residual("mb5", 128, 160, 14, 14, expand=6, count=9)
    layers += _inverted_residual("mb6a", 160, 256, 14, 14, expand=6, stride=2)
    layers += _inverted_residual("mb6b", 256, 256, 7, 7, expand=6, count=14)
    layers.append(pointwise_conv("head", 256, 1280, 7, 7))
    layers.append(Gemm(name="fc", m=1000, n=1, k=1280))
    return Network(
        name="efficientnetv2",
        layers=tuple(layers),
        family="mobile",
        year=2021,
        description="EfficientNetV2-S @ 224x224",
    )


def convnext() -> Network:
    """ConvNeXt-T (Liu et al., 2022): 7x7 depthwise + MLP blocks."""

    def stage(prefix: str, dim: int, hw: int, blocks: int) -> List[LayerSpec]:
        return [
            DepthwiseConv2D(
                name=f"{prefix}_dw7",
                channels=dim,
                in_h=hw,
                in_w=hw,
                kernel=7,
                count=blocks,
            ),
            pointwise_conv(f"{prefix}_mlp_up", dim, 4 * dim, hw, hw, count=blocks),
            pointwise_conv(f"{prefix}_mlp_down", 4 * dim, dim, hw, hw, count=blocks),
        ]

    layers: List[LayerSpec] = [
        Conv2D(
            name="stem",
            in_channels=3,
            out_channels=96,
            in_h=224,
            in_w=224,
            kernel=4,
            stride=4,
        )
    ]
    layers += stage("s1", 96, 56, 3)
    layers.append(
        Conv2D(
            name="down1",
            in_channels=96,
            out_channels=192,
            in_h=56,
            in_w=56,
            kernel=2,
            stride=2,
        )
    )
    layers += stage("s2", 192, 28, 3)
    layers.append(
        Conv2D(
            name="down2",
            in_channels=192,
            out_channels=384,
            in_h=28,
            in_w=28,
            kernel=2,
            stride=2,
        )
    )
    layers += stage("s3", 384, 14, 9)
    layers.append(
        Conv2D(
            name="down3",
            in_channels=384,
            out_channels=768,
            in_h=14,
            in_w=14,
            kernel=2,
            stride=2,
        )
    )
    layers += stage("s4", 768, 7, 3)
    layers.append(Gemm(name="fc", m=1000, n=1, k=768))
    return Network(
        name="convnext",
        layers=tuple(layers),
        family="mobile",
        year=2022,
        description="ConvNeXt-T @ 224x224",
    )
