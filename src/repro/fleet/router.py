"""Shard router: rendezvous key placement over PPA-service replicas.

One :class:`Shard` per replica bundles the three per-replica resources the
sharded client needs — a keep-alive :class:`~repro.fleet.pool.ConnectionPool`,
a :class:`~repro.fleet.breaker.CircuitBreaker`, and a health flag — under a
stable shard name (``shard-0``, ``shard-1``, ...) used for metric labels
and span attributes.

Routing policy (:meth:`ShardRouter.route`):

* a key's shard ranking is the rendezvous order over the *full* member
  list (stable regardless of who is currently up);
* unavailable shards — marked down (draining, failed health check, still
  inside the down TTL) or with an open breaker — are skipped, so the key
  falls to the next shard in its ranking and *returns to its owner* the
  moment the replica recovers;
* when every shard is unavailable the top-ranked shard is returned anyway
  and its breaker raises at request time — failing fast with the real
  error beats inventing a new one here.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import EvaluationError
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.hashing import rank_shards
from repro.utils.metrics import MetricsRegistry

__all__ = ["Shard", "ShardRouter"]

#: how long a mark_down() holds without an explicit mark_up(); a drained
#: replica restarting is back in rotation after one TTL even if nobody
#: runs a health check.
DEFAULT_DOWN_TTL_S = 2.0


class Shard:
    """One replica: url, pooled connections, breaker, availability."""

    def __init__(
        self,
        name: str,
        url: str,
        timeout_s: float,
        breaker_threshold: int,
        breaker_cooldown_s: float,
        max_idle: int = 8,
    ):
        from repro.fleet.pool import ConnectionPool

        self.name = name
        self.url = url.rstrip("/")
        self.pool = ConnectionPool(self.url, timeout_s=timeout_s, max_idle=max_idle)
        self.breaker = CircuitBreaker(
            self.url, breaker_threshold, breaker_cooldown_s
        )
        self._down_until = 0.0
        self._down_reason = ""

    def mark_down(self, reason: str, ttl_s: float = DEFAULT_DOWN_TTL_S) -> None:
        self._down_until = time.monotonic() + ttl_s
        self._down_reason = reason

    def mark_up(self) -> None:
        self._down_until = 0.0
        self._down_reason = ""

    @property
    def marked_down(self) -> bool:
        return self._down_until - time.monotonic() > 0

    def available(self) -> bool:
        """Eligible for routing: not marked down, breaker not open."""
        return not self.marked_down and not self.breaker.is_open()

    def stats(self) -> Dict:
        return {
            "name": self.name,
            "url": self.url,
            "available": self.available(),
            "down_reason": self._down_reason if self.marked_down else "",
            "breaker": self.breaker.stats(),
            "pool": self.pool.stats(),
        }


class ShardRouter:
    """Consistent-hash routing of candidate keys across replicas."""

    def __init__(
        self,
        urls: Sequence[str],
        timeout_s: float = 10.0,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        max_idle_per_shard: int = 8,
    ):
        if not urls:
            raise EvaluationError("a shard router needs at least one replica URL")
        deduped = list(dict.fromkeys(url.rstrip("/") for url in urls))
        self.shards: List[Shard] = [
            Shard(
                f"shard-{index}",
                url,
                timeout_s,
                breaker_threshold,
                breaker_cooldown_s,
                max_idle=max_idle_per_shard,
            )
            for index, url in enumerate(deduped)
        ]
        self._by_name = {shard.name: shard for shard in self.shards}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.num_failovers = 0

    def __len__(self) -> int:
        return len(self.shards)

    # -- placement --------------------------------------------------------------
    def ranking(self, key: str) -> List[Shard]:
        """Failover-ordered shards for ``key`` (rendezvous over all members)."""
        order = rank_shards(key, list(self._by_name))
        return [self._by_name[name] for name in order]

    def route(self, key: str) -> Shard:
        """The shard that should serve ``key`` right now."""
        ranked = self.ranking(key)
        for position, shard in enumerate(ranked):
            if shard.available():
                if position > 0:
                    # the key's owner is down: count the stable remap
                    self.num_failovers += 1
                    self.metrics.counter(
                        f"fleet_failovers_total[shard={shard.name}]"
                    ).inc()
                return shard
            continue
        # everyone looks down; let the owner's breaker produce the error
        return ranked[0]

    # -- health -----------------------------------------------------------------
    def health_check(self) -> Dict[str, Optional[Dict]]:
        """Probe ``GET /health`` on every shard; flips availability flags.

        Returns ``{shard_name: health_payload_or_None}``.  Probes bypass
        the breaker on purpose — health checks are how a down shard gets
        *back* into rotation.
        """
        report: Dict[str, Optional[Dict]] = {}
        for shard in self.shards:
            try:
                response = shard.pool.request("GET", "/health")
                if response.status == 200:
                    payload = json.loads(response.body)
                    shard.mark_up()
                    shard.breaker.reset()
                    report[shard.name] = payload
                    continue
                reason = f"health status {response.status}"
            except Exception as error:  # noqa: BLE001 - any probe failure is "down"
                reason = f"{type(error).__name__}: {error}"
            shard.mark_down(reason)
            self.metrics.counter(
                f"fleet_shard_down_total[shard={shard.name}]"
            ).inc()
            report[shard.name] = None
        return report

    def close(self) -> None:
        for shard in self.shards:
            shard.pool.close()

    def stats(self) -> Dict:
        return {
            "replicas": len(self.shards),
            "num_failovers": self.num_failovers,
            "shards": [shard.stats() for shard in self.shards],
        }
