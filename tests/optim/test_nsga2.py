"""Tests for the from-scratch NSGA-II."""

import numpy as np
import pytest

from repro.hw.space import Dimension, DiscreteDesignSpace
from repro.optim.nsga2 import NSGA2
from repro.optim.pareto import pareto_front


class _GridSpace(DiscreteDesignSpace):
    def to_config(self, assignment):
        return (assignment["x"], assignment["y"])

    def from_config(self, config):
        return {"x": config[0], "y": config[1]}


@pytest.fixture()
def grid_space():
    values = tuple(np.linspace(0, 1, 21).round(3))
    return _GridSpace("grid", (Dimension("x", values), Dimension("y", values)))


def _zdt1_like(config):
    """A tiny biobjective test problem with a known trade-off curve."""
    x, y = config
    f1 = x
    g = 1 + 9 * y
    f2 = g * (1 - np.sqrt(x / g))
    return np.array([f1, f2])


class TestNSGA2:
    def test_population_size_maintained(self, grid_space):
        ga = NSGA2(grid_space, _zdt1_like, population_size=12, seed=0)
        ga.initialize()
        ga.run(3)
        assert len(ga.population) == 12
        assert ga.generation == 3

    def test_evaluation_count(self, grid_space):
        ga = NSGA2(grid_space, _zdt1_like, population_size=10, seed=0)
        ga.initialize()
        ga.run(4)
        assert ga.num_evaluations == 10 + 4 * 10

    def test_converges_toward_true_front(self, grid_space):
        """After generations, solutions approach the y=0 trade-off curve."""
        ga = NSGA2(grid_space, _zdt1_like, population_size=20, seed=1)
        ga.initialize()
        initial_mean_y = np.mean([ind.config[1] for ind in ga.population])
        ga.run(15)
        final_mean_y = np.mean([ind.config[1] for ind in ga.population])
        assert final_mean_y < initial_mean_y

    def test_pareto_individuals_rank_zero(self, grid_space):
        ga = NSGA2(grid_space, _zdt1_like, population_size=16, seed=2)
        ga.initialize()
        ga.run(5)
        members = ga.pareto_individuals()
        assert members
        assert all(ind.rank == 0 for ind in members)
        # reported points must be mutually non-dominated
        points = ga.pareto_points()
        assert pareto_front(points).shape[0] == points.shape[0]

    def test_infeasible_ranked_behind(self, grid_space):
        def sometimes_infeasible(config):
            x, y = config
            if x > 0.5:
                return np.array([np.inf, np.inf])
            return np.array([x, y])

        ga = NSGA2(grid_space, sometimes_infeasible, population_size=14, seed=3)
        ga.initialize()
        ga.run(6)
        front = ga.pareto_individuals()
        assert all(ind.feasible for ind in front)

    def test_step_auto_initializes(self, grid_space):
        ga = NSGA2(grid_space, _zdt1_like, population_size=8, seed=0)
        ga.step()
        assert len(ga.population) == 8

    def test_deterministic(self, grid_space):
        def run_once():
            ga = NSGA2(grid_space, _zdt1_like, population_size=10, seed=7)
            ga.initialize()
            ga.run(4)
            return sorted(tuple(ind.config) for ind in ga.population)

        assert run_once() == run_once()

    def test_rejects_tiny_population(self, grid_space):
        with pytest.raises(ValueError):
            NSGA2(grid_space, _zdt1_like, population_size=1)
