#!/usr/bin/env python
"""Compare UNICO against HASCO, NSGA-II and MOBOHB on one workload.

Reproduces a single panel of Fig. 7 at small scale: every method co-searches
the edge design space for BERT, then hypervolume-difference-vs-time curves
are printed as an ASCII chart (lower = closer to the reference front).

Run:  python examples/compare_methods.py [network]
"""

import sys

import numpy as np

from repro.experiments import (
    combined_reference,
    hv_difference_curve,
    ideal_front,
    run_method,
    time_grid,
)
from repro.optim.hypervolume import hypervolume

METHODS = ("hasco", "nsgaii", "mobohb", "unico")


def ascii_curve(values, width: int = 40) -> str:
    """Render a curve as a bar per sample (longer bar = larger HV gap)."""
    top = max(max(values), 1e-12)
    return "\n".join(
        f"    t{i:02d} |{'#' * int(round(width * v / top)):<{width}s}| {v:.4f}"
        for i, v in enumerate(values)
    )


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "bert"
    print(f"Co-searching the edge design space for {network!r} "
          f"with {', '.join(METHODS)} (smoke-scale budgets)...")
    results = {
        method: run_method(method, "edge", network, "smoke", seed=0)
        for method in METHODS
    }
    all_results = list(results.values())
    reference = combined_reference(all_results)
    ideal_hv = hypervolume(ideal_front(all_results), reference)
    grid = time_grid(all_results, num_points=12)

    print(f"\nReference hypervolume: {ideal_hv:.4f}")
    for method, result in results.items():
        curve = hv_difference_curve(result, reference, ideal_hv, grid)
        values = [v for _t, v in curve]
        print(
            f"\n{method.upper():<8s} "
            f"(simulated cost {result.total_time_h:.2f} h, "
            f"{result.total_hw_evaluated} hardware evaluated)"
        )
        print(ascii_curve(values))

    print("\nSelected designs (min-Euclidean on each front):")
    for method, result in results.items():
        best = result.best_design()
        if best is None:
            print(f"  {method:<8s} no feasible design")
            continue
        print(
            f"  {method:<8s} L={best.ppa.latency_s * 1e3:9.2f} ms  "
            f"P={best.ppa.power_w * 1e3:7.1f} mW  A={best.ppa.area_mm2:5.2f} mm2"
        )


if __name__ == "__main__":
    main()
