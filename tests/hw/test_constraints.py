"""Tests for composable design constraints."""

import pytest

from repro.costmodel.results import NetworkPPA
from repro.errors import ConfigurationError
from repro.hw.constraints import (
    AreaCap,
    ConstraintSet,
    LatencyCap,
    MinBufferBytes,
    PowerCap,
)


def _ppa(latency=1e-3, power=0.5, area=3.0) -> NetworkPPA:
    return NetworkPPA(
        latency_s=latency,
        energy_j=latency * power,
        power_w=power,
        area_mm2=area,
        feasible=True,
    )


class TestIndividualConstraints:
    def test_power_cap(self, sample_hw):
        assert PowerCap(2.0).satisfied(sample_hw, _ppa(power=1.9))
        assert not PowerCap(2.0).satisfied(sample_hw, _ppa(power=2.1))

    def test_area_cap(self, sample_hw):
        assert AreaCap(200.0).satisfied(sample_hw, _ppa(area=150))
        assert not AreaCap(200.0).satisfied(sample_hw, _ppa(area=250))

    def test_latency_cap(self, sample_hw):
        assert LatencyCap(0.010).satisfied(sample_hw, _ppa(latency=0.005))
        assert not LatencyCap(0.010).satisfied(sample_hw, _ppa(latency=0.050))

    def test_min_buffer(self, sample_hw):
        assert MinBufferBytes("l1_bytes", 1024).satisfied(sample_hw, _ppa())
        assert not MinBufferBytes("l1_bytes", 10**9).satisfied(sample_hw, _ppa())

    def test_missing_attribute_fails_safe(self, sample_hw):
        assert not MinBufferBytes("l9_bytes", 1).satisfied(sample_hw, _ppa())

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (PowerCap, {"cap_w": 0}),
            (AreaCap, {"cap_mm2": -1}),
            (LatencyCap, {"cap_s": 0}),
        ],
    )
    def test_invalid_caps(self, cls, kwargs):
        with pytest.raises(ConfigurationError):
            cls(**kwargs)

    def test_descriptions(self):
        assert "W" in PowerCap(2.0).describe()
        assert "mm^2" in AreaCap(200.0).describe()
        assert "ms" in LatencyCap(0.01).describe()


class TestConstraintSet:
    def test_all_of_semantics(self, sample_hw):
        rules = ConstraintSet([PowerCap(2.0), AreaCap(5.0)])
        ok, violations = rules.check(sample_hw, _ppa(power=1.0, area=3.0))
        assert ok and violations == []
        ok, violations = rules.check(sample_hw, _ppa(power=3.0, area=6.0))
        assert not ok
        assert len(violations) == 2

    def test_from_caps(self, sample_hw):
        rules = ConstraintSet.from_caps(power_cap_w=2.0, area_cap_mm2=None)
        assert len(rules) == 1
        assert rules.satisfied(sample_hw, _ppa(power=1.0))

    def test_empty_always_satisfied(self, sample_hw):
        assert ConstraintSet().satisfied(sample_hw, _ppa(power=1e9))
        assert ConstraintSet().describe() == "unconstrained"

    def test_describe_joins(self):
        rules = ConstraintSet([PowerCap(2.0), AreaCap(5.0)])
        assert " AND " in rules.describe()


class TestIntegrationWithAssembleObjectives:
    def test_extra_constraints_filter(self, tiny_network, sample_hw):
        from repro.core.evaluation import SWSearchTrial, assemble_objectives
        from repro.costmodel import MaestroEngine

        engine = MaestroEngine(tiny_network)
        trial = SWSearchTrial(sample_hw, tiny_network, engine, seed=0)
        trial.run(10)
        # a latency cap the tiny run cannot meet
        strict = ConstraintSet([LatencyCap(1e-12)])
        evaluation = assemble_objectives(trial, constraints=strict)
        assert not evaluation.feasible
        relaxed = ConstraintSet([LatencyCap(1e6)])
        evaluation = assemble_objectives(trial, constraints=relaxed)
        assert evaluation.feasible
