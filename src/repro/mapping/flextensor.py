"""FlexTensor-like software mapping search.

FlexTensor (Zheng et al., ASPLOS'20) explores schedule spaces with a learned
policy over local rewrite actions.  This reproduction keeps its observable
behaviour — an anytime, budget-driven local search with exploration decay —
using simulated annealing over mapping mutations combined with an
epsilon-greedy layer-selection policy weighted by each layer's share of the
current network objective (a Q-learning-flavoured credit assignment: layers
that recently yielded improvements are revisited more often).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.costmodel.results import LayerPPA
from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.gemm_mapping import GemmMapping


class FlexTensorSearch(AnytimeMappingSearch):
    """Simulated-annealing mapping search with adaptive layer credit."""

    name = "flextensor"
    #: drafting only reads credits/temperature and writes ``_pending``
    #: (overwritten by the replay's own proposals), so speculation is safe
    supports_speculation = True

    def __init__(
        self,
        *args,
        initial_temperature: float = 0.30,
        cooling: float = 0.997,
        epsilon: float = 0.15,
        **kwargs,
    ):
        self._temperature = initial_temperature
        self._cooling = cooling
        self._epsilon = epsilon
        self._credit: Dict[str, float] = {}
        self._current: Dict[str, GemmMapping] = {}
        self._current_score: Dict[str, float] = {}
        super().__init__(*args, **kwargs)
        for layer_name in self.layer_names:
            self._credit[layer_name] = 1.0
            self._current[layer_name] = self.best_layer_mapping[layer_name]
            self._current_score[layer_name] = self._layer_score(
                self.best_layer_result[layer_name]
            )
        self._pending: Tuple[str, GemmMapping, float] = ("", GemmMapping(1, 1, 1), 0.0)

    def _pick_layer(self) -> str:
        if self.rng.random() < self._epsilon:
            return self.layer_names[int(self.rng.integers(0, len(self.layer_names)))]
        # weight by latency share x credit: optimize where time is spent and
        # where moves have recently paid off
        weights = np.array(
            [
                self.layer_counts[name]
                * max(self.best_layer_result[name].latency_s, 1e-12)
                * self._credit[name]
                for name in self.layer_names
            ]
        )
        if not np.all(np.isfinite(weights)) or weights.sum() <= 0:
            return self.layer_names[int(self.rng.integers(0, len(self.layer_names)))]
        probabilities = weights / weights.sum()
        index = int(self.rng.choice(len(self.layer_names), p=probabilities))
        return self.layer_names[index]

    def _propose(self) -> Tuple[str, GemmMapping]:
        layer_name = self._pick_layer()
        candidate = self.spaces[layer_name].mutate(self._current[layer_name], self.rng)
        self._pending = (layer_name, candidate, self._temperature)
        return layer_name, candidate

    def _on_result(
        self, layer_name: str, mapping: GemmMapping, result: LayerPPA, improved: bool
    ) -> None:
        current_score = self._current_score[layer_name]
        candidate_score = self._layer_score(result) if result.feasible else float("inf")

        accept = False
        if np.isfinite(candidate_score):
            if candidate_score <= current_score or not np.isfinite(current_score):
                accept = True
            else:
                # Metropolis rule on relative regression.
                relative = (candidate_score - current_score) / max(
                    current_score, 1e-12
                )
                accept = self.rng.random() < np.exp(-relative / max(
                    self._temperature, 1e-6
                ))
        if accept:
            self._current[layer_name] = mapping
            self._current_score[layer_name] = candidate_score

        # credit assignment: improvements raise a layer's revisit probability
        decay = 0.9
        reward = 1.0 if improved else 0.0
        self._credit[layer_name] = decay * self._credit[layer_name] + (
            1 - decay
        ) * (1.0 + 4.0 * reward)
        self._temperature *= self._cooling
