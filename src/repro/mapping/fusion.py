"""Depth-first buffer-fusion SW mapping search (Ascend-like platform).

Section 4.1: "we use a depth-first buffer fusion search technique ... to
search for SW mapping configurations with respect to a given search budget".
The tool walks the network *in execution order* (depth-first through the
operator chain), locally refining each layer's tiles and proposing fusion
of adjacent layers:

* most steps greedily hill-climb the current layer's tile sizes,
* fusion moves set a layer's ``fuse_output`` together with the next layer's
  ``fuse_input`` so the pair stays consistent — the intermediate tile then
  lives in L1 and both DDR transfers are elided; a fusion that overflows
  the consumer's L1 budget is vetoed (producer reverted).

Unlike the GEMM tools this search is strictly greedy (no uphill moves):
fusion flags couple adjacent layers, and the greedy invariant
``incumbent == current`` keeps the reported best mapping a *consistent*
chain while preserving the monotone best-so-far curve MSH relies on.

Works over :class:`AscendMapping` / :class:`AscendMappingSpace`; plugs into
the same anytime/successive-halving machinery as the GEMM tools.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.costmodel.results import LayerPPA
from repro.mapping.base import AnytimeMappingSearch


class DepthFirstFusionSearch(AnytimeMappingSearch):
    """Depth-first tile refinement + adjacent-layer fusion proposals."""

    name = "fusion"

    def __init__(
        self,
        *args,
        fusion_probability: float = 0.2,
        **kwargs,
    ):
        self._fusion_probability = fusion_probability
        self._cursor = 0
        self._pending_fusion_index: Optional[int] = None
        super().__init__(*args, **kwargs)
        self._current = dict(self.best_layer_mapping)
        self._current_score = {
            name: self._layer_score(self.best_layer_result[name])
            for name in self.layer_names
        }

    # --------------------------------------------------------------- overrides
    def _make_space(self, layer):
        return AscendMappingSpace(layer.to_gemm())

    def _seed_mapping(self, space):
        return space.seeded_mapping_for(self.hw)

    def _minimal_mapping(self, space):
        return AscendMapping(1, 1, 1)

    # ---------------------------------------------------------------- strategy
    def _propose(self) -> Tuple[str, AscendMapping]:
        # depth-first walk: advance the cursor through the operator chain
        layer_name = self.layer_names[self._cursor % len(self.layer_names)]
        self._cursor += 1
        space = self.spaces[layer_name]
        current = self._current[layer_name]
        index = self.layer_names.index(layer_name)
        self._pending_fusion_index = None
        can_fuse = index + 1 < len(self.layer_names) and not current.fuse_output
        if can_fuse and self.rng.random() < self._fusion_probability:
            candidate = dataclasses.replace(current, fuse_output=True)
            self._pending_fusion_index = index
            return layer_name, candidate
        candidate = space.mutate(current, self.rng)
        # fusion flags are owned by fusion moves: a plain tile mutation never
        # flips them (and the first layer has no producer to fuse with)
        candidate = dataclasses.replace(
            candidate,
            fuse_input=current.fuse_input,
            fuse_output=current.fuse_output,
        )
        return layer_name, candidate

    def _adopt(self, layer_name: str, mapping: AscendMapping, result: LayerPPA) -> None:
        """Greedy invariant: current and incumbent move together."""
        self._current[layer_name] = mapping
        self._current_score[layer_name] = (
            self._layer_score(result) if result.feasible else float("inf")
        )
        self.best_layer_mapping[layer_name] = mapping
        self.best_layer_result[layer_name] = result

    def _sync_next_layer(self, index: int) -> bool:
        """Fuse layer ``index + 1``'s input; returns False to veto."""
        next_name = self.layer_names[index + 1]
        next_mapping = self._current[next_name]
        if next_mapping.fuse_input:
            return True
        synced = dataclasses.replace(next_mapping, fuse_input=True)
        result = self.engine.evaluate_layer(self.hw, synced, next_name)
        if not result.feasible:
            return False
        self._adopt(next_name, synced, result)
        return True

    def _on_result(
        self, layer_name: str, mapping: AscendMapping, result: LayerPPA, improved: bool
    ) -> None:
        pending = self._pending_fusion_index
        self._pending_fusion_index = None
        current_score = self._current_score[layer_name]
        candidate_score = (
            self._layer_score(result) if result.feasible else float("inf")
        )
        better = np.isfinite(candidate_score) and (
            candidate_score <= current_score or not np.isfinite(current_score)
        )
        if not better:
            return
        if pending is not None:
            before_mapping = self._current[layer_name]
            before_result = self.best_layer_result[layer_name]
            self._adopt(layer_name, mapping, result)
            if not self._sync_next_layer(pending):
                # consumer cannot hold the fused tile: revert the producer
                self._adopt(layer_name, before_mapping, before_result)
            return
        self._adopt(layer_name, mapping, result)
