"""GAMMA-like genetic software mapping search.

GAMMA (Kao & Krishna, ICCAD'20) evolves mapping populations with crossover
and domain-aware mutation.  Here each layer keeps a small population of
mappings; every step evaluates one offspring of the layer whose turn it is
(round-robin weighted by latency share), then applies (mu + lambda)
elitist replacement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.costmodel.results import LayerPPA
from repro.mapping.base import AnytimeMappingSearch
from repro.mapping.gemm_mapping import GemmMapping


class GammaSearch(AnytimeMappingSearch):
    """Per-layer (mu + lambda) genetic search over mappings."""

    name = "gamma"
    #: drafting only reads the population and writes ``_pending_layer``
    #: (overwritten by the replay's own proposals), so speculation is safe
    supports_speculation = True

    def __init__(
        self,
        *args,
        population_size: int = 6,
        mutation_rate: float = 0.6,
        **kwargs,
    ):
        self._population_size = population_size
        self._mutation_rate = mutation_rate
        # population entries: (mapping, score); scores filled lazily
        self._population: Dict[str, List[Tuple[GemmMapping, float]]] = {}
        super().__init__(*args, **kwargs)
        for layer_name in self.layer_names:
            seed_mapping = self.best_layer_mapping[layer_name]
            seed_score = self._layer_score(self.best_layer_result[layer_name])
            space = self.spaces[layer_name]
            members: List[Tuple[GemmMapping, float]] = [(seed_mapping, seed_score)]
            while len(members) < self._population_size:
                members.append((space.sample(self.rng), float("inf")))
            self._population[layer_name] = members
        self._round_robin = 0

    def _pick_layer(self) -> str:
        weights = np.array(
            [
                self.layer_counts[name]
                * max(self.best_layer_result[name].latency_s, 1e-12)
                for name in self.layer_names
            ]
        )
        if not np.all(np.isfinite(weights)) or weights.sum() <= 0:
            self._round_robin = (self._round_robin + 1) % len(self.layer_names)
            return self.layer_names[self._round_robin]
        probabilities = weights / weights.sum()
        return self.layer_names[int(self.rng.choice(len(self.layer_names), p=probabilities))]

    def _propose(self) -> Tuple[str, GemmMapping]:
        layer_name = self._pick_layer()
        space = self.spaces[layer_name]
        members = self._population[layer_name]
        # tournament parent selection among scored members
        scored = [m for m in members if np.isfinite(m[1])]
        if len(scored) >= 2:
            picks = self.rng.choice(len(scored), size=2, replace=False)
            parent_a = min(
                (scored[int(p)] for p in picks), key=lambda pair: pair[1]
            )[0]
            parent_b = scored[int(self.rng.integers(0, len(scored)))][0]
            child = space.crossover(parent_a, parent_b, self.rng)
        else:
            child = members[int(self.rng.integers(0, len(members)))][0]
        if self.rng.random() < self._mutation_rate:
            child = space.mutate(child, self.rng)
        self._pending_layer = layer_name
        return layer_name, child

    def _on_result(
        self, layer_name: str, mapping: GemmMapping, result: LayerPPA, improved: bool
    ) -> None:
        score = self._layer_score(result) if result.feasible else float("inf")
        members = self._population[layer_name]
        members.append((mapping, score))
        # elitist survival: keep the best population_size members
        members.sort(key=lambda pair: pair[1])
        del members[self._population_size :]
