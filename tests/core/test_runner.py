"""Tests for the job-runner backends."""

import functools
import os
import threading
import time

import pytest

from repro.core.runner import BACKENDS, JobRunner
from repro.errors import ConfigurationError


def _square(x):
    return x * x


def _pid_square(x):
    return os.getpid(), x * x


def _add(a, b):
    return a + b


def _explode():
    raise RuntimeError("job failed in child")


class TestJobRunner:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_order(self, backend):
        runner = JobRunner(backend=backend, max_workers=4)
        jobs = [lambda i=i: i * i for i in range(10)]
        assert runner.map(jobs) == [i * i for i in range(10)]

    def test_empty(self):
        assert JobRunner().map([]) == []

    def test_starmap(self):
        runner = JobRunner()
        assert runner.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_thread_backend_actually_overlaps(self):
        barrier = threading.Barrier(3, timeout=5)

        def job():
            barrier.wait()  # only passes if 3 jobs run concurrently
            return True

        runner = JobRunner(backend="thread", max_workers=3)
        assert runner.map([job, job, job]) == [True, True, True]

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("job failed")

        runner = JobRunner(backend="thread", max_workers=2)
        with pytest.raises(RuntimeError):
            runner.map([lambda: 1, boom])

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            JobRunner(backend="mpi")

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            JobRunner(max_workers=0)

    def test_batch_accounting(self):
        runner = JobRunner()
        runner.map([lambda: 1, lambda: 2])
        runner.map([lambda: 3])
        assert runner.num_batches == 2
        assert runner.num_jobs == 3
        assert runner.metrics.counter_value("runner_batches_total") == 2
        assert runner.metrics.counter_value("runner_jobs_total") == 3


class TestProcessBackend:
    def test_picklable_jobs_ordered(self):
        runner = JobRunner(backend="process", max_workers=4)
        jobs = [functools.partial(_square, i) for i in range(10)]
        assert runner.map(jobs) == [i * i for i in range(10)]
        assert runner.num_pickle_fallbacks == 0

    def test_runs_in_child_processes(self):
        runner = JobRunner(backend="process", max_workers=2)
        jobs = [functools.partial(_pid_square, i) for i in range(4)]
        results = runner.map(jobs)
        assert [value for _pid, value in results] == [0, 1, 4, 9]
        assert any(pid != os.getpid() for pid, _value in results)

    def test_starmap_dispatches_to_processes(self):
        runner = JobRunner(backend="process", max_workers=2)
        assert runner.starmap(_add, [(1, 2), (3, 4), (5, 6)]) == [3, 7, 11]

    def test_single_job_runs_inline(self):
        runner = JobRunner(backend="process", max_workers=2)
        results = runner.map([functools.partial(_pid_square, 3)])
        assert results == [(os.getpid(), 9)]  # len==1 short-circuits

    def test_unpicklable_jobs_fall_back_to_threads(self):
        runner = JobRunner(backend="process", max_workers=2)
        jobs = [lambda i=i: i + 1 for i in range(4)]  # closures do not pickle
        assert runner.map(jobs) == [1, 2, 3, 4]
        assert runner.num_pickle_fallbacks == 1
        assert runner.metrics.counter_value("runner_pickle_fallbacks_total") == 1

    def test_child_exception_propagates(self):
        runner = JobRunner(backend="process", max_workers=2)
        jobs = [functools.partial(_square, 1), functools.partial(_explode)]
        with pytest.raises(RuntimeError, match="job failed in child"):
            runner.map(jobs)
