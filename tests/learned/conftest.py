"""Shared learned-subsystem fixtures: a layer, mappings and PPA labels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.learned import featurize_batch
from repro.mapping.gemm_mapping import GemmMappingSpace


@pytest.fixture()
def engine(tiny_network):
    return MaestroEngine(tiny_network)


@pytest.fixture()
def layer_and_shape(engine):
    layer_name = next(iter(engine.layer_shapes))
    shape, _count = engine.layer_shapes[layer_name]
    return layer_name, shape


@pytest.fixture()
def mapping_batch(layer_and_shape):
    _layer, shape = layer_and_shape
    space = GemmMappingSpace(shape)
    rng = np.random.default_rng(7)
    return [space.sample(rng) for _ in range(40)]


@pytest.fixture()
def labelled_batch(engine, sample_hw, layer_and_shape, mapping_batch):
    """(features, latency, energy, feasible) from real analytical PPA."""
    layer_name, shape = layer_and_shape
    results = [
        engine.evaluate_layer(sample_hw, mapping, layer_name)
        for mapping in mapping_batch
    ]
    x = featurize_batch(sample_hw, mapping_batch, shape)
    return (
        x,
        np.array([r.latency_s for r in results]),
        np.array([r.energy_j for r in results]),
        np.array([r.feasible for r in results]),
    )
