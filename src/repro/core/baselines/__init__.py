"""Baseline co-optimizers UNICO is compared against (Section 4.2).

* :class:`HascoBaseline` — single-point BO, full SW budget per candidate
  ("ChampionUpdate without SH"),
* :class:`NSGA2Codesign` — evolutionary multi-objective co-search,
* :class:`MobohbBaseline` — multi-objective BOHB (Hyperband + model),
* :class:`RandomCodesign` — uniform-random sanity floor.
"""

from repro.core.baselines.hasco import HascoBaseline, HascoConfig
from repro.core.baselines.mobohb import MobohbBaseline, MobohbConfig
from repro.core.baselines.nsga2_codesign import NSGA2Codesign, NSGA2CodesignConfig
from repro.core.baselines.random_codesign import RandomCodesign, RandomCodesignConfig

__all__ = [
    "HascoBaseline",
    "HascoConfig",
    "MobohbBaseline",
    "MobohbConfig",
    "NSGA2Codesign",
    "NSGA2CodesignConfig",
    "RandomCodesign",
    "RandomCodesignConfig",
]
