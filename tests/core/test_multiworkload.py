"""Tests for multi-workload co-optimization (Fig. 6a)."""

import numpy as np
import pytest

from repro.core import Unico, UnicoConfig
from repro.core.multiworkload import (
    MultiWorkloadEngine,
    MultiWorkloadTrial,
    multi_workload_trial_factory,
)
from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError
from repro.hw import edge_design_space
from repro.utils.clock import SimulatedClock
from repro.workloads import Conv2D, Gemm, Network


@pytest.fixture(scope="module")
def two_networks():
    net_a = Network(
        name="neta",
        layers=(Gemm(name="g1", m=32, n=64, k=48),),
        family="test",
    )
    net_b = Network(
        name="netb",
        layers=(
            Conv2D(
                name="c1", in_channels=8, out_channels=16, in_h=16, in_w=16, kernel=3
            ),
            Gemm(name="g2", m=16, n=32, k=24),
        ),
        family="test",
    )
    return [net_a, net_b]


@pytest.fixture()
def composite(two_networks):
    engine, factory = multi_workload_trial_factory(
        two_networks, lambda net, clock: MaestroEngine(net, clock=clock)
    )
    return engine, factory


class TestMultiWorkloadEngine:
    def test_shared_clock(self, composite):
        engine, _factory = composite
        clocks = {id(e.clock) for e in engine.engines.values()}
        assert len(clocks) == 1
        assert next(iter(clocks)) == id(engine.clock)

    def test_query_count_sums(self, composite, sample_hw):
        engine, factory = composite
        trial = factory(sample_hw, seed_rng=0)
        before = engine.num_queries
        trial.run(5)
        assert engine.num_queries == before + 5 * len(engine.engines)

    def test_charge_clock_propagates(self, composite):
        engine, _factory = composite
        engine.charge_clock = False
        assert all(not e.charge_clock for e in engine.engines.values())
        engine.charge_clock = True
        assert engine.charge_clock

    def test_merged_network_metadata(self, composite):
        engine, _factory = composite
        assert engine.network.family == "multi"
        assert engine.network.num_unique_layers == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiWorkloadEngine({})
        with pytest.raises(ConfigurationError):
            multi_workload_trial_factory([], lambda *a: None)


class TestMultiWorkloadTrial:
    def test_run_advances_all_jobs(self, composite, sample_hw):
        _engine, factory = composite
        trial = factory(sample_hw, seed_rng=1)
        trial.run(10)
        assert all(s.spent_budget == 10 for s in trial.searches.values())
        assert trial.spent_budget == 10

    def test_best_curve_is_sum_and_monotone(self, composite, sample_hw):
        _engine, factory = composite
        trial = factory(sample_hw, seed_rng=1)
        trial.run(30)
        curve = trial.best_curve()
        assert curve.shape == (30,)
        assert np.all(np.diff(curve) <= 1e-18)
        manual = sum(s.best_curve()[:30] for s in trial.searches.values())
        assert np.allclose(curve, manual)

    def test_best_ppa_aggregates(self, composite, sample_hw):
        _engine, factory = composite
        trial = factory(sample_hw, seed_rng=1)
        trial.run(20)
        ppa = trial.best_ppa
        parts = [s.best_ppa for s in trial.searches.values()]
        assert ppa.feasible
        assert ppa.latency_s == pytest.approx(sum(p.latency_s for p in parts))
        assert ppa.energy_j == pytest.approx(sum(p.energy_j for p in parts))

    def test_robustness_is_worst_case(self, composite, sample_hw):
        _engine, factory = composite
        trial = factory(sample_hw, seed_rng=1)
        trial.run(40)
        aggregate = trial.robustness()
        per_workload = [
            s for s in trial.searches.values()
        ]
        from repro.core.robustness import robustness_metric

        individual = [robustness_metric(s.history) for s in per_workload]
        assert aggregate.r_value == pytest.approx(
            max(r.r_value for r in individual)
        )

    def test_search_view_namespaces_layers(self, composite, sample_hw):
        _engine, factory = composite
        trial = factory(sample_hw, seed_rng=1)
        trial.run(5)
        mapping_keys = set(trial.search.best_mapping)
        assert mapping_keys == {"neta.g1", "netb.c1", "netb.g2"}


class TestUnicoWithMultiWorkload:
    def test_end_to_end(self, two_networks):
        engine, factory = multi_workload_trial_factory(
            two_networks, lambda net, clock: MaestroEngine(net, clock=clock)
        )
        space = edge_design_space()
        unico = Unico(
            space,
            engine.network,
            engine,
            UnicoConfig(batch_size=4, max_iterations=2, max_budget=16, workers=4),
            trial_factory=factory,
            power_cap_w=100.0,
            seed=2,
        )
        result = unico.optimize()
        assert result.total_hw_evaluated == 8
        assert result.best_design() is not None
        assert result.total_time_s > 0
