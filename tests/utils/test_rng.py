"""Tests for seeded random-number plumbing."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSeedSequenceFactory:
    def test_same_stream_same_state(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("mobo").integers(0, 10**9, size=5)
        b = factory.generator("mobo").integers(0, 10**9, size=5)
        assert np.array_equal(a, b)

    def test_named_streams_independent(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("mobo").integers(0, 10**9, size=5)
        b = factory.generator("search").integers(0, 10**9, size=5)
        assert not np.array_equal(a, b)

    def test_index_distinguishes_streams(self):
        factory = SeedSequenceFactory(7)
        assert factory.spawn_seed("x", 0) != factory.spawn_seed("x", 1)

    def test_adding_stream_does_not_shift_existing(self):
        factory = SeedSequenceFactory(3)
        before = factory.spawn_seed("stable")
        factory.generator("newcomer")
        assert factory.spawn_seed("stable") == before

    def test_child_factory_differs_from_parent(self):
        factory = SeedSequenceFactory(3)
        child = factory.child("sub")
        assert child.root_seed != factory.root_seed
        assert child.spawn_seed("x") != factory.spawn_seed("x")

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(
            g1.integers(0, 10**9, size=8), g2.integers(0, 10**9, size=8)
        )

    def test_deterministic_from_int_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(5, 3)]
        b = [g.integers(0, 10**9) for g in spawn_generators(5, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
