"""Single-worker run scheduler over the :class:`~repro.tracking.RunStore`.

The hub owns run *lifecycle*, not run *execution semantics*: a submitted
run is exactly a ``run_method(..., tracker=JournalTracker(run))`` call in
a child process, so everything PRs 2-6 built — the crash-safe journal,
checkpoints, resume, learned-model provenance — applies unchanged to
hub-scheduled runs.  One worker executes at a time (co-searches are
CPU-bound; queueing is the honest model on one box), and the manifest is
the single source of truth for state:

``queued`` → (worker picks up) → ``running`` → ``completed`` | ``failed``
                              ↘ (SIGTERM on cancel) → ``cancelled``

Crash handling mirrors the journal's own semantics: a run whose manifest
says ``running`` but whose worker is gone was interrupted — ``reconcile``
marks it ``failed`` with ``interrupted: true`` and ``resumable: true``
when a checkpoint exists, so ``repro runs resume`` (or a hub resubmit
with ``resume=True``) can continue it via the existing
:func:`~repro.tracking.resume.resume_run`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pathlib
import signal
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Union

from repro.errors import ConfigurationError, TrackingError
from repro.tracking.resume import REQUIRED_MANIFEST_KEYS
from repro.tracking.store import RunStore
from repro.utils.metrics import MetricsRegistry

__all__ = ["RunScheduler"]

#: manifest statuses a run cannot leave
TERMINAL_STATUSES = ("completed", "failed", "cancelled")


def _execute_run(runs_dir: str, run_id: str, resume: bool) -> None:
    """Child-process entry point: run (or resume) one tracked search."""
    # a forked child inherits the hub's SIGTERM/SIGINT drain handlers;
    # restore the defaults so cancellation's SIGTERM actually kills the
    # child and a group-wide Ctrl-C doesn't run the hub shutdown in here
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    from repro.tracking import JournalTracker
    from repro.tracking.resume import _manifest_preset, resume_run

    store = RunStore(runs_dir)
    run = store.get(run_id)
    if resume:
        resume_run(run)
        return
    from repro.experiments.harness import run_method

    manifest = run.read_manifest()
    tracker = JournalTracker(
        run, checkpoint_every=int(manifest.get("checkpoint_every") or 1)
    )
    run_method(
        manifest["method"],
        manifest["scenario"],
        manifest["workload"],
        _manifest_preset(manifest),
        seed=int(manifest["seed"]),
        time_budget_s=manifest.get("time_budget_s"),
        eval_batch_size=int(manifest.get("eval_batch_size") or 1),
        tool=manifest.get("tool"),
        tracker=tracker,
    )


class RunScheduler:
    """FIFO scheduler executing one tracked run at a time in a child process."""

    def __init__(
        self,
        store: Union[RunStore, str, pathlib.Path],
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: Deque[str] = deque()
        self._cv = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        #: run id the worker is currently executing, and its process
        self._current_id: Optional[str] = None
        self._current_proc: Optional[multiprocessing.process.BaseProcess] = None
        self._cancel_requested: Set[str] = set()
        #: run ids queued for resume rather than a fresh start
        self._resume_ids: Set[str] = set()

    @staticmethod
    def _context():
        """Prefer fork (cheap, inherits imports); fall back to the default."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> "RunScheduler":
        if self._thread is None:
            self._stopping = False
            self._thread = threading.Thread(target=self._worker, daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the worker; a running child is terminated (SIGTERM)."""
        with self._cv:
            self._stopping = True
            proc = self._current_proc
            self._cv.notify_all()
        self._terminate(proc)
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None

    @staticmethod
    def _terminate(proc: Optional[multiprocessing.process.BaseProcess]) -> None:
        """SIGTERM a child, tolerating it exiting between check and signal."""
        if proc is None:
            return
        try:
            if proc.is_alive():
                proc.terminate()
        except (AttributeError, ValueError, ProcessLookupError):
            pass  # already gone (or a handle copied into the child itself)

    def __enter__(self) -> "RunScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission -------------------------------------------------------------
    def submit(self, spec: Dict) -> str:
        """Validate a run spec, allocate its run directory, and enqueue it.

        The manifest written here carries every key ``resume_run``
        requires plus the full preset parameters, so a hub-submitted run
        is resumable even if its preset name is never registered on a
        future code version.
        """
        unknown = set(spec) - {
            "method", "scenario", "workload", "preset", "seed",
            "time_budget_s", "eval_batch_size", "checkpoint_every", "tool",
            "run_id",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown run-spec fields {sorted(unknown)}"
            )
        missing = [
            key for key in ("method", "scenario", "workload")
            if not spec.get(key)
        ]
        if missing:
            raise ConfigurationError(f"run spec lacks {missing}")
        from repro.experiments.harness import METHODS
        from repro.experiments.presets import get_preset
        from repro.workloads import get_network

        method = str(spec["method"])
        if method not in METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; use one of {METHODS}"
            )
        scenario = str(spec["scenario"])
        if scenario not in ("edge", "cloud", "ascend"):
            raise ConfigurationError(
                f"unknown scenario {scenario!r}; use 'edge', 'cloud' or "
                "'ascend'"
            )
        try:
            get_network(str(spec["workload"]))
        except Exception as error:
            raise ConfigurationError(str(error)) from error
        preset = get_preset(str(spec.get("preset", "smoke")))
        manifest = {
            "method": str(spec["method"]),
            "scenario": str(spec["scenario"]),
            "workload": str(spec["workload"]),
            "preset": preset.name,
            "preset_params": dataclasses.asdict(preset),
            "seed": int(spec.get("seed", 0)),
            "time_budget_s": spec.get("time_budget_s"),
            "eval_batch_size": int(spec.get("eval_batch_size", 1)),
            "checkpoint_every": int(spec.get("checkpoint_every", 1)),
            "tool": spec.get("tool"),
            "submitted_via": "hub",
            "status": "queued",
        }
        run = self.store.create_run(manifest, run_id=spec.get("run_id"))
        self.metrics.counter("hub_runs_submitted_total").inc()
        with self._cv:
            self._queue.append(run.run_id)
            self._cv.notify_all()
        return run.run_id

    def submit_resume(self, run_id: str) -> str:
        """Enqueue an interrupted run for continuation via ``resume_run``."""
        run = self.store.get(run_id)
        manifest = run.read_manifest()
        missing = [k for k in REQUIRED_MANIFEST_KEYS if k not in manifest]
        if missing:
            raise TrackingError(
                f"run {run_id} manifest lacks {missing}; cannot resume"
            )
        if manifest.get("status") == "completed":
            raise TrackingError(f"run {run_id} already completed")
        with self._cv:
            if run_id in self._queue or run_id == self._current_id:
                raise TrackingError(f"run {run_id} is already scheduled")
            run.set_status("queued", resumable=False)
            self._resume_ids.add(run_id)
            self._queue.append(run_id)
            self._cv.notify_all()
        self.metrics.counter("hub_runs_submitted_total").inc()
        return run_id

    # -- cancellation -----------------------------------------------------------
    def cancel(self, run_id: str) -> str:
        """Cancel a queued or running run; returns the resulting status.

        Queued runs go terminal immediately; the running run gets
        SIGTERM (the child dies mid-iteration, which is exactly the crash
        the journal tolerates) and the worker's postmortem marks it
        ``cancelled`` — so the reply here is ``cancelling``.
        """
        with self._cv:
            if run_id in self._queue:
                self._queue.remove(run_id)
                self._resume_ids.discard(run_id)
                self.store.get(run_id).set_status("cancelled")
                self.metrics.counter("hub_runs_cancelled_total").inc()
                return "cancelled"
            if run_id == self._current_id:
                self._cancel_requested.add(run_id)
                self._terminate(self._current_proc)
                return "cancelling"
        status = self.store.get(run_id).read_manifest().get("status")
        raise TrackingError(
            f"run {run_id} is not cancellable (status {status!r}; "
            "only hub-queued or hub-running runs can be cancelled)"
        )

    # -- introspection ----------------------------------------------------------
    def state(self) -> Dict:
        with self._cv:
            return {
                "queued": list(self._queue),
                "running": self._current_id,
            }

    def reconcile(self) -> List[str]:
        """Mark orphaned ``running``/``queued`` manifests after a hub crash.

        A ``running`` run with no live worker was interrupted: it becomes
        ``failed`` with ``interrupted: true`` and ``resumable: true``
        when a checkpoint exists.  An orphaned ``queued`` run (submitted
        before a hub restart) is re-enqueued.
        """
        touched: List[str] = []
        with self._cv:
            scheduled = set(self._queue)
            if self._current_id is not None:
                scheduled.add(self._current_id)
        for run in self.store.list_runs():
            if run.run_id in scheduled:
                continue
            try:
                manifest = run.read_manifest()
            except TrackingError:
                continue
            status = manifest.get("status")
            if status == "running":
                run.set_status(
                    "failed",
                    error="interrupted: no live worker owns this run",
                    interrupted=True,
                    resumable=run.latest_checkpoint() is not None,
                )
                touched.append(run.run_id)
            elif status == "queued" and manifest.get("submitted_via") == "hub":
                with self._cv:
                    self._queue.append(run.run_id)
                    self._cv.notify_all()
                touched.append(run.run_id)
        return touched

    # -- worker -----------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopping:
                    self._cv.wait(timeout=0.5)
                if self._stopping:
                    return
                run_id = self._queue.popleft()
                resume = run_id in self._resume_ids
                self._resume_ids.discard(run_id)
                self._current_id = run_id
            try:
                self._run_one(run_id, resume)
            finally:
                with self._cv:
                    self._current_id = None
                    self._current_proc = None
                    self._cancel_requested.discard(run_id)

    def _run_one(self, run_id: str, resume: bool) -> None:
        context = self._context()
        process = context.Process(
            target=_execute_run,
            args=(str(self.store.root), run_id, resume),
            daemon=True,
        )
        with self._cv:
            self._current_proc = process
            cancelled_early = run_id in self._cancel_requested
        if cancelled_early:
            self.store.get(run_id).set_status("cancelled")
            self.metrics.counter("hub_runs_cancelled_total").inc()
            return
        process.start()
        process.join()
        self._postmortem(run_id, process.exitcode)

    def _postmortem(self, run_id: str, exitcode: Optional[int]) -> None:
        """Reconcile the manifest with how the child actually exited."""
        run = self.store.get(run_id)
        try:
            status = run.read_manifest().get("status")
        except TrackingError:  # pragma: no cover - manifest corrupted
            status = None
        cancelled = run_id in self._cancel_requested
        if cancelled and status != "completed":
            run.set_status(
                "cancelled",
                interrupted=True,
                resumable=run.latest_checkpoint() is not None,
            )
            self.metrics.counter("hub_runs_cancelled_total").inc()
            return
        if status == "completed":
            self.metrics.counter("hub_runs_completed_total").inc()
            return
        if status != "failed":
            # the child died without reaching a terminal status (hard
            # crash, OOM kill): record the interruption honestly
            run.set_status(
                "failed",
                error=f"worker exited with code {exitcode} "
                      "before the run reached a terminal status",
                interrupted=True,
                resumable=run.latest_checkpoint() is not None,
            )
        self.metrics.counter("hub_runs_failed_total").inc()
