"""Tests for the mesh NoC topology and transfer model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import MaestroEngine
from repro.errors import ConfigurationError
from repro.noc import (
    MeshAwareMaestroEngine,
    MeshTopology,
    congestion_factor,
    mesh_for,
    multicast_transfer,
)


@pytest.fixture()
def mesh():
    return MeshTopology(width=4, height=3)


class TestTopology:
    def test_counts(self, mesh):
        assert mesh.num_nodes == 12
        # directed links: 2*(3*3) horizontal + 2*(4*2) vertical
        assert mesh.num_links == 2 * 9 + 2 * 8

    def test_hop_distance_manhattan(self, mesh):
        assert mesh.hop_distance((0, 0), (3, 2)) == 5
        assert mesh.hop_distance((1, 1), (1, 1)) == 0

    def test_route_is_xy(self, mesh):
        path = mesh.route((0, 0), (2, 1))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_route_length_matches_distance(self, mesh):
        path = mesh.route((3, 2), (0, 0))
        assert len(path) - 1 == mesh.hop_distance((3, 2), (0, 0))

    def test_outside_rejected(self, mesh):
        with pytest.raises(ConfigurationError):
            mesh.hop_distance((0, 0), (4, 0))

    def test_multicast_shares_prefix(self, mesh):
        # both destinations share the first hop along the row
        shared = mesh.multicast_links((0, 0), [(2, 0), (3, 0)])
        separate = mesh.hop_distance((0, 0), (2, 0)) + mesh.hop_distance(
            (0, 0), (3, 0)
        )
        assert shared == 3  # the row's 3 links, counted once
        assert shared < separate

    def test_broadcast_links_spanning_tree(self, mesh):
        # X-Y broadcast tree from (0,0): row 0 (width-1 links) then each
        # column goes up (width * (height-1) links)
        expected = (mesh.width - 1) + mesh.width * (mesh.height - 1)
        assert mesh.broadcast_links() == expected

    def test_bisection(self, mesh):
        assert mesh.bisection_bandwidth == 2 * 3 * mesh.link_bw_bytes_per_cycle

    def test_invalid_mesh(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(0, 3)

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_multicast_links_bounded(self, width, height, seed):
        """Tree links never exceed the sum of unicast path lengths and never
        undercut the deepest path."""
        mesh = MeshTopology(width, height)
        rng = np.random.default_rng(seed)
        count = int(rng.integers(1, 5))
        destinations = [
            (int(rng.integers(0, width)), int(rng.integers(0, height)))
            for _ in range(count)
        ]
        links = mesh.multicast_links((0, 0), destinations)
        unicast_sum = sum(mesh.hop_distance((0, 0), d) for d in destinations)
        deepest = mesh.multicast_depth((0, 0), destinations)
        assert deepest <= links <= max(unicast_sum, deepest)


class TestTransferModel:
    def test_multicast_estimate_positive(self, mesh):
        estimate = multicast_transfer(mesh, 1024, destinations_per_row=True)
        assert estimate.cycles > 0
        assert estimate.energy_j > 0
        assert estimate.links_used == mesh.width - 1

    def test_congestion_grows_with_load(self, mesh):
        low = congestion_factor(1.0, mesh)
        high = congestion_factor(mesh.bisection_bandwidth * 0.9, mesh)
        assert low < high
        assert low >= 1.0

    def test_congestion_clamped(self, mesh):
        extreme = congestion_factor(mesh.bisection_bandwidth * 100, mesh)
        assert extreme <= 20.1  # 1 / (1 - 0.95)

    def test_mesh_for_uses_pe_array(self, sample_hw):
        mesh = mesh_for(sample_hw)
        assert mesh.width == sample_hw.pe_x
        assert mesh.height == sample_hw.pe_y


class TestMeshAwareEngine:
    def test_not_faster_than_baseline(self, tiny_network, sample_hw):
        """Extra interconnect detail can only add latency/energy."""
        from repro.mapping import GemmMapping

        base = MaestroEngine(tiny_network)
        refined = MeshAwareMaestroEngine(tiny_network)
        mapping = GemmMapping(8, 16, 8)
        a = base.evaluate_layer(sample_hw, mapping, "gemm")
        b = refined.evaluate_layer(sample_hw, mapping, "gemm")
        assert b.latency_s >= a.latency_s - 1e-15
        assert b.energy_j >= a.energy_j - 1e-24

    def test_feasibility_unchanged(self, tiny_network, edge_space, rng):
        from repro.mapping import GemmMappingSpace

        base = MaestroEngine(tiny_network)
        refined = MeshAwareMaestroEngine(tiny_network)
        shape = tiny_network.layers[0].to_gemm()
        space = GemmMappingSpace(shape)
        for _ in range(20):
            hw = edge_space.sample(rng)
            mapping = space.sample(rng)
            a = base.evaluate_layer(hw, mapping, tiny_network.layers[0].name)
            b = refined.evaluate_layer(hw, mapping, tiny_network.layers[0].name)
            assert a.feasible == b.feasible

    def test_search_runs_on_refined_engine(self, tiny_network, sample_hw):
        from repro.mapping import FlexTensorSearch

        engine = MeshAwareMaestroEngine(tiny_network)
        search = FlexTensorSearch(tiny_network, sample_hw, engine, seed=0)
        search.run(40)
        assert np.isfinite(search.best_objective)
