"""Telemetry pipeline tests: scrape → store → alert, hub endpoints, leaks."""

import json
import threading
import time

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer
from repro.errors import TrackingError
from repro.fleet.client import ShardedPPAEngine
from repro.hub import HubClient, HubServer, TelemetryPipeline, replica_target
from repro.mapping import GemmMapping
from repro.obs.alerts import Rule
from repro.tracking.journal import read_events

MAPPINGS = [GemmMapping(4, 8, 4), GemmMapping(8, 8, 8), GemmMapping(16, 16, 8)]


@pytest.fixture()
def replicas(tiny_network):
    servers = [
        PPAServiceServer(MaestroEngine(tiny_network)) for _ in range(2)
    ]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


def drive_queries(tiny_network, servers, sample_hw):
    sharded = ShardedPPAEngine(
        tiny_network,
        [server.url for server in servers],
        area_fn=spatial_area_mm2,
        timeout_s=2.0,
        max_network_retries=0,
        batch_size=2,
    )
    try:
        sharded.evaluate_candidates(sample_hw, "gemm", MAPPINGS)
    finally:
        sharded.close()


def open_fd_count() -> int:
    import os

    return len(os.listdir("/proc/self/fd"))


def assert_no_leaks(before_threads, before_fds=None, timeout_s=5.0):
    """Assert thread/fd counts return to baseline.

    Peer-side connection threads (a replica's per-request handlers) exit
    asynchronously once our sockets close, so poll until the deadline
    rather than snapshotting immediately.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        leaked = {
            t for t in set(threading.enumerate()) - before_threads
            if t.is_alive()
        }
        fds_ok = before_fds is None or open_fd_count() <= before_fds
        if not leaked and fds_ok:
            return
        if time.monotonic() >= deadline:
            assert not leaked, f"leaked threads: {leaked}"
            assert fds_ok, "leaked file descriptors"
            return
        time.sleep(0.05)


class TestPipelineTick:
    def test_tick_samples_every_replica_and_fleet(
        self, replicas, tiny_network, sample_hw, tmp_path
    ):
        drive_queries(tiny_network, replicas, sample_hw)
        pipeline = TelemetryPipeline(
            replica_urls=[s.url for s in replicas],
            store=tmp_path / "obs",
            interval_s=0.5,
        )
        try:
            pipeline.tick(now=100.0)
            targets = pipeline.store.targets()
            assert "fleet" in targets
            names = [replica_target(f"{s.address[0]}:{s.address[1]}")
                     for s in replicas]
            for name in names:
                assert name in targets
                latest = pipeline.store.latest(name)
                assert latest[1]["up"] == 1.0
                assert latest[1]["engine_queries_total"] > 0.0
            fleet = pipeline.store.latest("fleet")[1]
            assert fleet["replicas_up"] == 2.0
            assert fleet["replicas_total"] == 2.0
            # fleet rollup sums the replicas' counters
            assert fleet["engine_queries_total"] == pytest.approx(
                sum(
                    pipeline.store.latest(n)[1]["engine_queries_total"]
                    for n in names
                )
            )
        finally:
            pipeline.stop()

    def test_dead_replica_recorded_as_up_zero(self, replicas, tmp_path):
        pipeline = TelemetryPipeline(
            replica_urls=[replicas[0].url, "http://127.0.0.1:9"],
            store=None,
            interval_s=0.5,
            scrape_timeout_s=0.5,
        )
        try:
            pipeline.tick(now=1.0)
            assert pipeline.store.latest("replica:127.0.0.1:9")[1]["up"] == 0.0
            fleet = pipeline.store.latest("fleet")[1]
            assert fleet["replicas_up"] == 1.0
            assert fleet["replicas_total"] == 2.0
        finally:
            pipeline.stop()

    def test_hub_sampler_and_run_source_feed_targets(self, tmp_path):
        from repro.tracking.journal import EventJournal

        journal_path = tmp_path / "journal.jsonl"
        with EventJournal(journal_path) as journal:
            journal.append("search_health", {
                "iteration": 7, "hypervolume": 0.42,
                "pareto_size": 5, "engine_queries": 99,
                "screening": {"escalated": 3, "forwarded": 11},
            })
        pipeline = TelemetryPipeline(
            store=None,
            interval_s=0.5,
            hub_sampler=lambda: {"hub_queue_depth": 4.0},
            run_source=lambda: [("r1", journal_path)],
        )
        try:
            pipeline.tick(now=1.0)
            assert pipeline.store.latest("hub")[1]["hub_queue_depth"] == 4.0
            run = pipeline.store.latest("run:r1")[1]
            assert run["search_iteration"] == 7.0
            assert run["search_hypervolume"] == pytest.approx(0.42)
            assert run["search_screen_escalated"] == 3.0
        finally:
            pipeline.stop()

    def test_alert_transitions_journalled(self, tmp_path):
        rule = Rule(
            name="deep", series="hub_queue_depth", op=">", value=2.0,
            window_s=10.0, targets=("hub",),
        )
        depth = {"value": 9.0}
        pipeline = TelemetryPipeline(
            store=tmp_path / "obs",
            rules=[rule],
            interval_s=0.5,
            hub_sampler=lambda: {"hub_queue_depth": depth["value"]},
        )
        try:
            transitions = pipeline.tick(now=1.0)
            assert [e["state"] for e in transitions] == ["firing"]
            depth["value"] = 0.0
            transitions = pipeline.tick(now=2.0)
            assert [e["state"] for e in transitions] == ["resolved"]
            scan = read_events(pipeline.alerts_journal_path)
            assert [e["type"] for e in scan.events] == ["alert", "alert"]
            assert [e["state"] for e in scan.events] == ["firing", "resolved"]
            # the alert journal must not be discovered as a sample target
            assert "alerts" not in pipeline.store.targets()
            status = pipeline.status()
            assert [e["state"] for e in status["history"]] == [
                "firing", "resolved"
            ]
            assert any(r["name"] == "deep" for r in status["rules"])
        finally:
            pipeline.stop()

    def test_scrape_loop_runs_and_stops(self, replicas, tmp_path):
        pipeline = TelemetryPipeline(
            replica_urls=[s.url for s in replicas],
            store=None,
            interval_s=0.05,
        )
        pipeline.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if pipeline.status()["ticks"] >= 3:
                    break
                time.sleep(0.02)
            assert pipeline.status()["ticks"] >= 3
        finally:
            pipeline.stop()

    def test_double_start_rejected(self):
        pipeline = TelemetryPipeline(store=None, interval_s=1.0)
        pipeline.start()
        try:
            with pytest.raises(TrackingError):
                pipeline.start()
        finally:
            pipeline.stop()


class TestShutdownLeaks:
    def test_pipeline_stop_leaves_no_threads_or_fds(self, replicas, tmp_path):
        """Satellite: the scrape loop must release every thread, socket
        and descriptor on stop()."""
        # warm up: let thread/fd churn from earlier tests settle
        before_threads = set(threading.enumerate())
        before_fds = open_fd_count()
        pipeline = TelemetryPipeline(
            replica_urls=[s.url for s in replicas],
            store=tmp_path / "obs",
            interval_s=0.05,
        )
        pipeline.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if pipeline.status()["ticks"] >= 2:
                break
            time.sleep(0.02)
        pipeline.stop()
        assert_no_leaks(before_threads, before_fds)

    def test_fleet_top_frames_leave_no_threads_or_fds(self, replicas):
        """Satellite: a bounded `repro fleet top` session cleans up."""
        from repro.cli import main

        before_threads = set(threading.enumerate())
        before_fds = open_fd_count()
        code = main([
            "fleet", "top", *[s.url for s in replicas],
            "--interval", "0.05", "--iterations", "2", "--no-clear",
        ])
        assert code == 0
        assert_no_leaks(before_threads, before_fds)


class TestHubEndpoints:
    @pytest.fixture()
    def hub(self, tmp_path, replicas):
        server = HubServer(
            tmp_path / "runs",
            replica_urls=[s.url for s in replicas],
            telemetry=True,
            scrape_interval_s=0.1,
        )
        server.start()
        client = HubClient(server.url)
        try:
            yield server, client
        finally:
            client.close()
            server.stop()

    def wait_ticks(self, server, n, timeout_s=10.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if server.telemetry.status()["ticks"] >= n:
                return
            time.sleep(0.02)
        raise AssertionError(f"pipeline never reached {n} ticks")

    def test_alerts_endpoint_shape(self, hub):
        server, client = hub
        self.wait_ticks(server, 2)
        payload = client.alerts()
        assert payload["schema_version"] == 1
        assert isinstance(payload["active"], list)
        assert {r["name"] for r in payload["rules"]} >= {
            "replica_down", "evals_per_sec_floor",
        }
        assert "fleet" in payload["targets"]

    def test_obs_query_and_targets(self, hub):
        server, client = hub
        self.wait_ticks(server, 2)
        targets = client.obs_targets()["targets"]
        assert "fleet" in targets and "hub" in targets
        reply = client.obs_query("fleet", "replicas_up", fn="last",
                                 window_s=60.0)
        assert reply["value"] == 2.0
        # unknown series: value null, not an error
        assert client.obs_query("fleet", "nope")["value"] is None

    def test_obs_query_bad_fn_is_400(self, hub):
        server, client = hub
        self.wait_ticks(server, 1)
        with pytest.raises(TrackingError, match="400"):
            client.obs_query("fleet", "replicas_up", fn="stddev")

    def test_obs_export_incremental_cursor(self, hub):
        server, client = hub
        self.wait_ticks(server, 2)
        first = client.obs_export("fleet")
        assert first["samples"]
        cursor = first["cursor"]
        self.wait_ticks(server, server.telemetry.status()["ticks"] + 2)
        second = client.obs_export("fleet", after=cursor)
        assert second["samples"]
        ts = [s["t"] for s in first["samples"] + second["samples"]]
        assert ts == sorted(ts)

    def test_endpoints_404_without_telemetry(self, tmp_path):
        server = HubServer(tmp_path / "runs")
        server.start()
        client = HubClient(server.url)
        try:
            with pytest.raises(TrackingError, match="404"):
                client.alerts()
            with pytest.raises(TrackingError, match="404"):
                client.obs_query("fleet", "up")
        finally:
            client.close()
            server.stop()

    def test_hub_stop_leaves_no_threads(self, tmp_path, replicas):
        before = set(threading.enumerate())
        server = HubServer(
            tmp_path / "runs",
            replica_urls=[s.url for s in replicas],
            telemetry=True,
            scrape_interval_s=0.05,
        )
        server.start()
        self.wait_ticks(server, 2)
        server.stop()
        assert_no_leaks(before)
