"""Cross-cutting invariants of the co-optimization machinery.

Property-style tests over random seeds asserting structural facts every
method must maintain, independent of search quality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HascoBaseline,
    HascoConfig,
    RandomCodesign,
    RandomCodesignConfig,
    Unico,
    UnicoConfig,
)
from repro.costmodel import MaestroEngine
from repro.hw import edge_design_space
from repro.optim.pareto import pareto_front
from repro.workloads import Gemm, Network

_NETWORK = Network(
    name="invnet",
    layers=(Gemm(name="g", m=24, n=48, k=36),),
    family="test",
)
_SPACE = edge_design_space()


def _run_unico(seed: int):
    engine = MaestroEngine(_NETWORK)
    unico = Unico(
        _SPACE,
        _NETWORK,
        engine,
        UnicoConfig(batch_size=4, max_iterations=2, max_budget=12),
        power_cap_w=100.0,
        seed=seed,
    )
    return unico.optimize()


class TestParetoInvariants:
    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_archive_equals_batch_front_of_timeline(self, seed):
        """The incremental Pareto archive must equal the batch-computed
        front of all feasible evaluations."""
        result = _run_unico(seed)
        feasible = result.feasible_timeline_points()
        if feasible.size == 0:
            assert len(result.pareto) == 0
            return
        batch = {tuple(p) for p in pareto_front(feasible)}
        archive = {tuple(p) for p in result.pareto.points}
        assert archive == batch

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_timeline_is_time_sorted_and_complete(self, seed):
        result = _run_unico(seed)
        times = [entry.time_s for entry in result.timeline]
        assert times == sorted(times)
        assert len(result.timeline) == result.total_hw_evaluated

    def test_queries_bound_simulated_time(self):
        """Serial time can never be less than the parallel makespan and
        never more than queries x cost + overheads."""
        result = _run_unico(0)
        engine_cost = 5.0  # ANALYTICAL_EVAL_COST_S
        # with workers=1 (default config) time ~= queries x cost + overhead
        expected = result.total_engine_queries * engine_cost
        assert result.total_time_s >= expected  # overheads only add
        assert result.total_time_s <= expected * 1.1 + 100


class TestBudgetAccounting:
    @pytest.mark.parametrize(
        "cls,config",
        [
            (HascoBaseline, HascoConfig(max_candidates=3, full_budget=10)),
            (RandomCodesign, RandomCodesignConfig(max_candidates=3, full_budget=10)),
        ],
    )
    def test_full_budget_methods_query_exactly(self, cls, config):
        engine = MaestroEngine(_NETWORK)
        optimizer = cls(
            _SPACE, _NETWORK, engine, config, power_cap_w=100.0, seed=5
        )
        result = optimizer.optimize()
        # queries = candidates x (init per layer + budget); init = 1 layer here
        per_candidate = 1 + 10
        assert result.total_engine_queries == result.total_hw_evaluated * (
            per_candidate
        )

    def test_unico_budget_never_exceeds_bmax_per_candidate(self):
        engine = MaestroEngine(_NETWORK)
        unico = Unico(
            _SPACE,
            _NETWORK,
            engine,
            UnicoConfig(batch_size=5, max_iterations=1, max_budget=20),
            power_cap_w=100.0,
            seed=3,
        )
        unico.optimize()
        budgets = [e.budget_spent for e in unico.evaluations]
        assert max(budgets) <= 20
        assert all(b >= 1 for b in budgets)
