"""Tests for the multi-objective quality indicators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.optim.indicators import (
    coverage,
    epsilon_indicator,
    generational_distance,
    inverted_generational_distance,
    spacing,
)

FRONT = np.array([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])


class TestGDAndIGD:
    def test_zero_when_identical(self):
        assert generational_distance(FRONT, FRONT) == 0.0
        assert inverted_generational_distance(FRONT, FRONT) == 0.0

    def test_gd_measures_convergence(self):
        shifted = FRONT + 0.1
        assert generational_distance(shifted, FRONT) == pytest.approx(
            0.1 * np.sqrt(2), rel=1e-6
        )

    def test_igd_punishes_missing_coverage(self):
        partial = FRONT[:1]  # only one corner achieved
        full = FRONT
        assert inverted_generational_distance(partial, full) > (
            inverted_generational_distance(full, full)
        )

    def test_empty_achieved_infinite(self):
        assert generational_distance(np.zeros((0, 2)), FRONT) == float("inf")
        assert inverted_generational_distance(np.zeros((0, 2)), FRONT) == float(
            "inf"
        )

    def test_infinite_rows_dropped(self):
        noisy = np.vstack([FRONT, [[np.inf, 0.0]]])
        assert generational_distance(noisy, FRONT) == 0.0

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            inverted_generational_distance(FRONT, np.zeros((0, 2)))


class TestSpacing:
    def test_uniform_front_zero(self):
        uniform = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        assert spacing(uniform) == pytest.approx(0.0, abs=1e-12)

    def test_clustered_front_positive(self):
        clustered = np.array([[0.0, 2.0], [0.01, 1.99], [2.0, 0.0]])
        assert spacing(clustered) > 0.1

    def test_degenerate_sizes(self):
        assert spacing(np.zeros((0, 2))) == 0.0
        assert spacing(np.array([[1.0, 1.0]])) == 0.0


class TestCoverage:
    def test_dominating_front_covers_fully(self):
        better = FRONT - 0.1
        assert coverage(better, FRONT) == 1.0
        assert coverage(FRONT, better) == 0.0

    def test_identical_fronts_cover_each_other(self):
        assert coverage(FRONT, FRONT) == 1.0

    def test_partial_coverage(self):
        a = np.array([[0.0, 0.9]])  # dominates only FRONT's first point
        assert coverage(a, FRONT) == pytest.approx(1 / 3)

    def test_empty_b(self):
        assert coverage(FRONT, np.zeros((0, 2))) == 0.0


class TestEpsilon:
    def test_zero_when_dominating(self):
        assert epsilon_indicator(FRONT - 0.1, FRONT) == 0.0

    def test_equals_shift_for_translated_front(self):
        assert epsilon_indicator(FRONT + 0.2, FRONT) == pytest.approx(0.2)

    def test_empty_achieved(self):
        assert epsilon_indicator(np.zeros((0, 2)), FRONT) == float("inf")


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 12), st.just(3)),
        elements=st.floats(0, 10),
    )
)
@settings(max_examples=40)
def test_indicator_identities(points):
    """Self-comparisons are exact: GD = IGD = epsilon = 0, coverage = 1."""
    assert generational_distance(points, points) == pytest.approx(0.0, abs=1e-9)
    assert inverted_generational_distance(points, points) == pytest.approx(
        0.0, abs=1e-9
    )
    assert epsilon_indicator(points, points) == pytest.approx(0.0, abs=1e-9)
    assert coverage(points, points) == 1.0
