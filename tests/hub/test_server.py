"""Tests for the hub HTTP control plane, including the SSE acceptance test:
a stream with a forced mid-run disconnect plus ``Last-Event-ID`` reconnect
must be byte-identical to a post-hoc ``read_events`` scan of the journal."""

import json
import time
from http.client import HTTPConnection

import pytest

from repro.errors import TrackingError
from repro.hub import HubClient, HubServer
from repro.hub.sse import parse_sse_lines
from repro.tracking import RunStore, read_events

SMOKE_SPEC = {
    "method": "unico",
    "scenario": "edge",
    "workload": "fsrcnn_120x320",
    "preset": "smoke",
    "seed": 0,
}


@pytest.fixture
def hub(tmp_path):
    server = HubServer(tmp_path / "runs", sse_poll_interval_s=0.02)
    server.start()
    client = HubClient(server.url)
    try:
        yield server, client
    finally:
        client.close()
        server.stop()


def wait_terminal(client, run_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.get_run(run_id).get("status")
        if status in ("completed", "failed", "cancelled"):
            return status
        time.sleep(0.1)
    raise AssertionError("run never reached a terminal status")


class TestEndpoints:
    def test_health(self, hub):
        _server, client = hub
        health = client.health()
        assert health["status"] == "ok"
        assert health["runs"] == 0

    def test_unknown_run_404(self, hub):
        _server, client = hub
        with pytest.raises(TrackingError, match="404"):
            client.get_run("no-such-run")

    def test_bad_spec_is_400_not_a_failed_run(self, hub):
        _server, client = hub
        with pytest.raises(TrackingError, match="400"):
            client.submit(dict(SMOKE_SPEC, scenario="A"))
        assert client.list_runs()["runs"] == []

    def test_cancel_unknown_run_conflict(self, hub):
        _server, client = hub
        with pytest.raises(TrackingError, match=r"40[49]"):
            client.cancel("no-such-run")

    def test_submit_run_lists_and_completes(self, hub):
        _server, client = hub
        run_id = client.submit(dict(SMOKE_SPEC))
        assert wait_terminal(client, run_id) == "completed"
        rows = client.list_runs()["runs"]
        assert [r["run_id"] for r in rows] == [run_id]
        assert rows[0]["status"] == "completed"
        assert rows[0]["submitted_via"] == "hub"

    def test_prometheus_metrics_parse_strictly(self, hub):
        from repro.obs.prom import parse_prometheus_text

        server, client = hub
        client.health()
        pool_response = None
        from repro.fleet.pool import ConnectionPool

        pool = ConnectionPool(server.url)
        try:
            pool_response = pool.request("GET", "/metrics?format=prom")
        finally:
            pool.close()
        assert pool_response.status == 200, pool_response.body
        families = parse_prometheus_text(pool_response.body.decode("utf-8"))
        assert "hub_requests_total" in families, (
            pool_response.body, server.metrics.snapshot()
        )

    def test_draining_hub_rejects_with_503(self, hub):
        server, client = hub
        server.begin_drain()
        with pytest.raises(TrackingError, match="503"):
            client.health()

    def test_fleet_endpoints_404_without_replicas(self, hub):
        _server, client = hub
        with pytest.raises(TrackingError, match="404"):
            client.fleet_status()


def read_sse_frames(host, port, run_id, cursor=None, max_events=None):
    """Raw SSE consumption so tests control disconnects precisely.

    Returns ``(frames, last_id, finished)`` where frames are the raw data
    payloads in order.
    """
    connection = HTTPConnection(host, port, timeout=60)
    frames, last_id, finished = [], cursor, False
    try:
        headers = {}
        if cursor is not None:
            headers["Last-Event-ID"] = str(cursor)
        connection.request("GET", f"/runs/{run_id}/events", headers=headers)
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"

        def lines():
            while True:
                line = response.readline()
                if not line:
                    return
                yield line.decode("utf-8").rstrip("\r\n")

        for sse in parse_sse_lines(lines()):
            if sse.event == "end_of_stream":
                finished = True
                break
            frames.append(sse.data)
            last_id = int(sse.event_id)
            if max_events is not None and len(frames) >= max_events:
                break  # force mid-stream disconnect
    finally:
        connection.close()
    return frames, last_id, finished


class TestSSEAcceptance:
    def test_disconnect_and_resume_is_byte_identical(self, hub):
        """Acceptance: forced mid-run disconnect + Last-Event-ID reconnect
        yields the exact event sequence a post-hoc read_events scan sees,
        down to the bytes."""
        server, client = hub
        host, port = server.address
        run_id = client.submit(dict(SMOKE_SPEC))

        # leg 1: connect while the run is live, drop after 3 events
        first, cursor, finished = read_sse_frames(
            host, port, run_id, max_events=3
        )
        assert len(first) == 3 and not finished

        # leg 2: reconnect exactly where we left off, drain to the end
        second, _cursor, finished = read_sse_frames(
            host, port, run_id, cursor=cursor
        )
        assert finished

        streamed = first + second
        run = RunStore(server.store.root).get(run_id)
        scan = read_events(run.journal_path)
        assert not scan.truncated_tail
        assert [json.loads(raw) for raw in streamed] == scan.events
        # byte-identity: journal lines travel verbatim, so rejoining the
        # streamed payloads reconstructs the journal file exactly
        reconstructed = ("\n".join(streamed) + "\n").encode("utf-8")
        assert reconstructed == run.journal_path.read_bytes()

    def test_resume_past_everything_gets_end_of_stream(self, hub):
        server, client = hub
        host, port = server.address
        run_id = client.submit(dict(SMOKE_SPEC))
        wait_terminal(client, run_id)
        run = RunStore(server.store.root).get(run_id)
        size = run.journal_path.stat().st_size
        frames, _cursor, finished = read_sse_frames(
            host, port, run_id, cursor=size
        )
        assert frames == [] and finished

    def test_bad_cursor_is_400(self, hub):
        server, client = hub
        run_id = client.submit(dict(SMOKE_SPEC))
        wait_terminal(client, run_id)
        connection = HTTPConnection(*server.address, timeout=10)
        try:
            connection.request(
                "GET", f"/runs/{run_id}/events",
                headers={"Last-Event-ID": "not-a-number"},
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_client_generator_reconnects_transparently(self, hub):
        """HubClient.stream_events hides the reconnect loop: events arrive
        exactly once and in order even when consumed across a run's life."""
        server, client = hub
        run_id = client.submit(dict(SMOKE_SPEC))
        events = list(client.stream_events(run_id))
        run = RunStore(server.store.root).get(run_id)
        scan = read_events(run.journal_path)
        assert [e.event for e in events] == scan.events
        assert [e.raw for e in events] == [
            line.decode("utf-8")
            for line in run.journal_path.read_bytes().splitlines()
        ]
        assert events[-1].type == "run_end"

    def test_client_generator_survives_server_restart(self, tmp_path):
        """Satellite: stream_events resumes from its byte cursor across a
        full hub restart — events arrive exactly once, in order, with no
        replays of the pre-restart prefix."""
        import socket
        import threading

        from repro.tracking.journal import EventJournal

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        root = tmp_path / "runs"
        handle = RunStore(root).create_run(
            manifest={"status": "running", "method": "unico"}
        )
        with EventJournal(handle.journal_path) as journal:
            for i in range(3):
                journal.append("evaluation", {"iteration": i})

        server = HubServer(
            root, port=port, sse_poll_interval_s=0.02,
            reconcile_on_start=False,
        )
        server.start()
        client = HubClient(server.url)
        received = []
        done = threading.Event()

        def collect():
            for event in client.stream_events(
                handle.run_id, reconnect_delay_s=0.05
            ):
                received.append(event)
            done.set()

        thread = threading.Thread(target=collect, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while len(received) < 3 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert len(received) == 3

        server.stop()  # restart leg: client must reconnect and resume
        with EventJournal(handle.journal_path) as journal:
            for i in range(3, 6):
                journal.append("evaluation", {"iteration": i})
        server = HubServer(
            root, port=port, sse_poll_interval_s=0.02,
            reconcile_on_start=False,
        )
        server.start()
        try:
            handle.set_status("completed")
            assert done.wait(timeout=20.0), received
        finally:
            client.close()
            server.stop()

        assert [e.event["iteration"] for e in received] == list(range(6))
        # offsets are the journal's own byte cursors: strictly increasing
        # and ending at the file size
        offsets = [e.offset for e in received]
        assert offsets == sorted(set(offsets))
        assert offsets[-1] == handle.journal_path.stat().st_size
