"""Generic discrete hardware design-space machinery.

Both platforms (the open-source spatial accelerator and the Ascend-like
core) are described as Cartesian products of named discrete dimensions.
:class:`DiscreteDesignSpace` provides the operations every search algorithm
in the library needs:

* uniform sampling and mutation (for genetic / random baselines),
* ordinal encoding of configurations into ``[0, 1]^d`` vectors and decoding
  back (for the GP surrogate and acquisition optimization),
* cardinality and membership checks.

Concrete spaces subclass it, supply dimension grids, and implement
``to_config`` / ``from_config`` to translate between assignment dicts and
typed config dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import DesignSpaceError
from repro.utils.rng import SeedLike, as_generator

ConfigT = TypeVar("ConfigT")


@dataclass(frozen=True)
class Dimension:
    """One named discrete axis with an ordered choice grid."""

    name: str
    choices: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise DesignSpaceError(f"dimension {self.name!r} has no choices")
        if len(set(self.choices)) != len(self.choices):
            raise DesignSpaceError(f"dimension {self.name!r} has duplicate choices")

    def __len__(self) -> int:
        return len(self.choices)

    @cached_property
    def _index_map(self) -> Dict[Any, int]:
        """O(1) value -> ordinal index lookup (choices are hashable)."""
        return {value: index for index, value in enumerate(self.choices)}

    @cached_property
    def codes(self) -> np.ndarray:
        """Normalized ordinal code of every choice, in grid order."""
        if len(self.choices) == 1:
            return np.zeros(1)
        span = len(self.choices) - 1
        return np.array([index / span for index in range(len(self.choices))])

    def index_of(self, value: Any) -> int:
        try:
            return self._index_map[value]
        except (KeyError, TypeError):
            raise DesignSpaceError(
                f"value {value!r} not in dimension {self.name!r}"
            ) from None

    def encode(self, value: Any) -> float:
        """Map a choice to its normalized ordinal position in [0, 1]."""
        if len(self.choices) == 1:
            return 0.0
        return self.index_of(value) / (len(self.choices) - 1)

    def decode(self, coordinate: float) -> Any:
        """Map a [0, 1] coordinate to the nearest grid choice."""
        position = float(np.clip(coordinate, 0.0, 1.0)) * (len(self.choices) - 1)
        return self.choices[int(round(position))]


class DiscreteDesignSpace(Generic[ConfigT]):
    """A Cartesian product of :class:`Dimension` axes with typed configs."""

    def __init__(self, name: str, dimensions: Sequence[Dimension]):
        if not dimensions:
            raise DesignSpaceError(f"design space {name!r} has no dimensions")
        names = [dim.name for dim in dimensions]
        if len(set(names)) != len(names):
            raise DesignSpaceError(f"design space {name!r} has duplicate dimensions")
        self.name = name
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self._by_name: Dict[str, Dimension] = {dim.name: dim for dim in dimensions}

    # -- subclass contract -------------------------------------------------
    def to_config(self, assignment: Dict[str, Any]) -> ConfigT:
        """Build a typed config from a full dimension assignment."""
        raise NotImplementedError

    def from_config(self, config: ConfigT) -> Dict[str, Any]:
        """Extract the dimension assignment from a typed config."""
        raise NotImplementedError

    # -- generic operations -------------------------------------------------
    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    @property
    def size(self) -> int:
        """Cardinality of the Cartesian product."""
        total = 1
        for dim in self.dimensions:
            total *= len(dim)
        return total

    def dimension(self, name: str) -> Dimension:
        if name not in self._by_name:
            raise DesignSpaceError(f"no dimension {name!r} in space {self.name!r}")
        return self._by_name[name]

    def contains(self, config: ConfigT) -> bool:
        try:
            assignment = self.from_config(config)
            for name, value in assignment.items():
                self.dimension(name).index_of(value)
        except DesignSpaceError:
            return False
        return True

    def validate(self, config: ConfigT) -> None:
        if not self.contains(config):
            raise DesignSpaceError(
                f"config {config!r} is outside design space {self.name!r}"
            )

    def sample(self, seed: SeedLike = None) -> ConfigT:
        """Draw one uniform-random configuration."""
        rng = as_generator(seed)
        assignment = {
            dim.name: dim.choices[int(rng.integers(0, len(dim)))]
            for dim in self.dimensions
        }
        return self.to_config(assignment)

    def sample_batch(
        self, count: int, seed: SeedLike = None, unique: bool = True
    ) -> List[ConfigT]:
        """Draw ``count`` configurations, de-duplicated when ``unique``."""
        if count < 0:
            raise DesignSpaceError(f"count must be non-negative, got {count}")
        rng = as_generator(seed)
        if not unique:
            return [self.sample(rng) for _ in range(count)]
        seen: set = set()
        batch: List[ConfigT] = []
        attempts = 0
        max_attempts = max(1000, 50 * count)
        while len(batch) < count and attempts < max_attempts:
            candidate = self.sample(rng)
            key = tuple(self.encode(candidate))
            if key not in seen:
                seen.add(key)
                batch.append(candidate)
            attempts += 1
        if len(batch) < count:
            raise DesignSpaceError(
                f"could not draw {count} unique configs from {self.name!r} "
                f"(size {self.size})"
            )
        return batch

    def encode(self, config: ConfigT) -> np.ndarray:
        """Encode a config as a normalized ordinal vector in [0, 1]^d."""
        assignment = self.from_config(config)
        return np.array(
            [dim.encode(assignment[dim.name]) for dim in self.dimensions],
            dtype=float,
        )

    def encode_batch(self, configs: Sequence[ConfigT]) -> np.ndarray:
        """Encode many configs into one ``(len(configs), d)`` matrix.

        One NumPy allocation for the whole batch with cached per-dimension
        code tables; values are bit-identical to stacking :meth:`encode`
        rows (same ``index / (len - 1)`` arithmetic).
        """
        if not configs:
            return np.zeros((0, self.num_dimensions))
        codes = [dim.codes for dim in self.dimensions]
        rows = []
        for config in configs:
            assignment = self.from_config(config)
            rows.append(
                [
                    codes[i][dim.index_of(assignment[dim.name])]
                    for i, dim in enumerate(self.dimensions)
                ]
            )
        return np.array(rows, dtype=float)

    @cached_property
    def _choice_counts(self) -> np.ndarray:
        """Per-dimension grid cardinalities (for batched index draws)."""
        return np.array([len(dim) for dim in self.dimensions], dtype=np.int64)

    def sample_indices(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw a ``(count, d)`` matrix of uniform grid indices in one call.

        Consumes the generator stream exactly like ``count`` sequential
        :meth:`sample` calls (NumPy fills bounded integer draws row-major,
        one bounded draw per element), so batched pool construction stays
        bit-compatible with the scalar sampling loop it replaces.
        """
        if count < 0:
            raise DesignSpaceError(f"count must be non-negative, got {count}")
        rng = as_generator(seed)
        if count == 0:
            return np.zeros((0, self.num_dimensions), dtype=np.int64)
        return rng.integers(
            0, self._choice_counts, size=(count, self.num_dimensions)
        )

    def config_from_indices(self, indices: Sequence[int]) -> ConfigT:
        """Build the typed config selected by one row of grid indices."""
        assignment = {
            dim.name: dim.choices[int(indices[i])]
            for i, dim in enumerate(self.dimensions)
        }
        return self.to_config(assignment)

    def key_from_indices(self, indices: Sequence[int]) -> Tuple[Any, ...]:
        """The :meth:`config_key` of a grid-index row, without building it."""
        return tuple(
            dim.choices[int(indices[i])] for i, dim in enumerate(self.dimensions)
        )

    def decode(self, vector: np.ndarray) -> ConfigT:
        """Decode a [0, 1]^d vector to the nearest grid configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.num_dimensions,):
            raise DesignSpaceError(
                f"expected vector of shape ({self.num_dimensions},), "
                f"got {vector.shape}"
            )
        assignment = {
            dim.name: dim.decode(vector[i]) for i, dim in enumerate(self.dimensions)
        }
        return self.to_config(assignment)

    def mutate(
        self,
        config: ConfigT,
        seed: SeedLike = None,
        num_moves: int = 1,
        step: int = 2,
    ) -> ConfigT:
        """Return a neighbor: ``num_moves`` dimensions stepped on their grid.

        Each move shifts one dimension's index by up to ``step`` positions —
        a local move in the ordinal geometry, which is the metric the GP
        encoding uses too.
        """
        rng = as_generator(seed)
        assignment = self.from_config(config)
        move_dims = rng.choice(
            self.num_dimensions, size=min(num_moves, self.num_dimensions), replace=False
        )
        for dim_index in move_dims:
            dim = self.dimensions[int(dim_index)]
            current = dim.index_of(assignment[dim.name])
            offset = 0
            while offset == 0:
                offset = int(rng.integers(-step, step + 1))
            new_index = int(np.clip(current + offset, 0, len(dim) - 1))
            assignment[dim.name] = dim.choices[new_index]
        return self.to_config(assignment)

    def crossover(
        self, parent_a: ConfigT, parent_b: ConfigT, seed: SeedLike = None
    ) -> ConfigT:
        """Uniform crossover of two configs (for genetic baselines)."""
        rng = as_generator(seed)
        assign_a = self.from_config(parent_a)
        assign_b = self.from_config(parent_b)
        child = {
            name: assign_a[name] if rng.random() < 0.5 else assign_b[name]
            for name in assign_a
        }
        return self.to_config(child)

    def config_key(self, config: ConfigT) -> Tuple[Any, ...]:
        """A hashable identity for de-duplication."""
        assignment = self.from_config(config)
        return tuple(assignment[dim.name] for dim in self.dimensions)

    def grid_iter(self, max_configs: Optional[int] = None):
        """Iterate the full grid (guarded; only for small spaces/tests)."""
        import itertools

        limit = self.size if max_configs is None else max_configs
        if max_configs is None and self.size > 1_000_000:
            raise DesignSpaceError(
                f"refusing to enumerate space {self.name!r} of size {self.size}; "
                "pass max_configs explicitly"
            )
        produced = 0
        for values in itertools.product(*(dim.choices for dim in self.dimensions)):
            if produced >= limit:
                return
            assignment = dict(zip((d.name for d in self.dimensions), values))
            yield self.to_config(assignment)
            produced += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, dims={self.num_dimensions}, "
            f"size={self.size:.3g})"
        )
