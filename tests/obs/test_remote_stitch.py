"""Cross-process trace stitching through the PPA service wire."""

import json
from urllib.request import urlopen

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.service import (
    METRICS_SCHEMA_VERSION,
    PPAServiceServer,
    RemotePPAEngine,
)
from repro.costmodel.maestro import spatial_area_mm2
from repro.mapping import GemmMapping
from repro.obs.prom import parse_prometheus_text
from repro.obs.trace import InMemorySink, Tracer


@pytest.fixture()
def traced_server(tiny_network):
    """Service whose request handler opens server-side spans."""
    backend = MaestroEngine(tiny_network)
    server_sink = InMemorySink()
    tracer = Tracer(sinks=[server_sink])
    with PPAServiceServer(backend, tracer=tracer) as srv:
        srv._test_sink = server_sink
        yield srv


@pytest.fixture()
def traced_remote(traced_server, tiny_network):
    """Tracing client engine pointed at the traced service."""
    engine = RemotePPAEngine(
        tiny_network, traced_server.url, area_fn=spatial_area_mm2
    )
    sink = InMemorySink()
    engine.tracer = Tracer(sinks=[sink])
    engine._test_sink = sink
    return engine


class TestStitching:
    def test_server_span_joins_client_trace(
        self, traced_server, traced_remote, sample_hw
    ):
        traced_remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        spans = traced_remote._test_sink.spans
        by_name = {s["name"]: s for s in spans}
        client_span = by_name["remote/evaluate_layer"]
        server_span = by_name["service/evaluate_layer"]
        # one trace: the server span adopted the client's trace id ...
        assert server_span["trace_id"] == traced_remote.tracer.trace_id
        # ... and hangs off the client request span
        assert server_span["parent_id"] == client_span["span_id"]
        assert server_span["attrs"]["remote"] is True
        assert server_span["attrs"]["status"] == 200
        # server-measured duration fits inside the client request interval
        assert server_span["wall_dur_s"] <= client_span["wall_dur_s"] + 1e-6
        assert server_span["wall_start_s"] >= client_span["wall_start_s"]

    def test_server_side_sink_sees_adopted_trace_id(
        self, traced_server, traced_remote, sample_hw
    ):
        traced_remote.evaluate_layer(sample_hw, GemmMapping(2, 4, 4), "gemm")
        server_spans = traced_server._test_sink.spans
        assert server_spans
        assert all(
            s["trace_id"] == traced_remote.tracer.trace_id
            for s in server_spans
        )

    def test_untraced_client_unaffected(
        self, traced_server, tiny_network, sample_hw
    ):
        """A NullTracer client works against a tracing server."""
        engine = RemotePPAEngine(
            tiny_network, traced_server.url, area_fn=spatial_area_mm2
        )
        result = engine.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        assert result.feasible

    def test_untraced_server_tolerated(self, tiny_network, sample_hw):
        """A tracing client against a plain server: no remote spans, no error."""
        backend = MaestroEngine(tiny_network)
        with PPAServiceServer(backend) as srv:
            engine = RemotePPAEngine(
                tiny_network, srv.url, area_fn=spatial_area_mm2
            )
            sink = InMemorySink()
            engine.tracer = Tracer(sinks=[sink])
            result = engine.evaluate_layer(
                sample_hw, GemmMapping(4, 8, 4), "gemm"
            )
        assert result.feasible
        names = [s["name"] for s in sink.spans]
        assert "remote/evaluate_layer" in names
        assert not any(n.startswith("service/") for n in names)


class TestMetricsEndpoint:
    def test_json_metrics_schema_version_and_stable_ordering(
        self, traced_server
    ):
        with urlopen(f"{traced_server.url}/metrics") as response:
            raw = response.read().decode()
        payload = json.loads(raw)
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert raw == json.dumps(payload, sort_keys=True)

    def test_prom_metrics_parse(
        self, traced_server, traced_remote, sample_hw
    ):
        """Acceptance criterion: ?format=prom output is scrapeable."""
        traced_remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        with urlopen(f"{traced_server.url}/metrics?format=prom") as response:
            assert response.headers.get_content_type() == "text/plain"
            text = response.read().decode()
        families = parse_prometheus_text(text)
        assert any(f.startswith("service_requests") for f in families)
        histograms = [
            f for f, d in families.items() if d["type"] == "histogram"
        ]
        assert histograms  # request latency histogram present
