"""Figure 8: reliability of the robustness metric R.

UNICO (without the R objective) co-optimizes on {UNET, SRGAN, BERT}; pairs
of Pareto designs with similar training PPA but different R are validated
on {ResNet, ResUNet, VIT, MobileNet} with individual SW mapping searches.
Expected shape (paper): in each selected pair, the lower-R design achieves
lower average latency on the unseen networks (paper: 10-28.5% better).
"""

import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import run_fig8

SEED = 0


@pytest.mark.benchmark(group="fig8")
def test_fig8_robustness_indicator(benchmark, results_dir):
    record = run_once(benchmark, run_fig8, "bench", seed=SEED)
    save_record(results_dir, "fig8", record)

    print("\n=== Fig. 8: R as a generalization indicator, bench preset ===")
    print(f"Pareto designs on training set: {record.get('pareto_size')}")
    print(f"Comparable pairs found: {record.get('num_pairs')} "
          f"(PPA tolerance {record.get('pair_tolerance_used'):.2f})")
    for name, pair in record.children.items():
        if not name.startswith("pair_"):
            continue
        print(
            f"{name}: R_robust={pair.get('robust_r'):.4f} "
            f"R_fragile={pair.get('fragile_r'):.4f} | "
            f"validation latency robust={pair.get('robust_mean_latency_ms'):.2f}ms "
            f"fragile={pair.get('fragile_mean_latency_ms'):.2f}ms "
            f"-> robust wins: {pair.get('robust_wins')}"
        )

    assert record.get("num_pairs", 0) >= 1, "no comparable Pareto pairs found"
    # the paper's claim: lower R predicts better unseen-workload latency
    assert record.get("fraction_pairs_consistent") >= 0.5
