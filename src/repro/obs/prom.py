"""Prometheus text-format exposition for :class:`~repro.utils.metrics.MetricsRegistry`.

The estimation service serves ``GET /metrics?format=prom`` with the
output of :func:`render_prometheus`, so a stock Prometheus scraper can
monitor it without a JSON exporter in between.  The renderer follows the
text exposition format conventions:

* metric names sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* counters emitted under one ``# TYPE <name> counter`` header — the
  registry's ``name[label]`` convention (e.g.
  ``service_requests_total[/evaluate_layer]``) becomes a proper
  ``{path="/evaluate_layer"}`` label set;
* histograms as cumulative ``_bucket{le="..."}`` series plus ``_sum``
  and ``_count``, closed by the mandatory ``+Inf`` bucket.

:func:`parse_prometheus_text` is the matching strict parser; tests use
it to prove the rendered output is actually scrapeable, and it validates
the cumulative-bucket invariants a real Prometheus server enforces.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary registry name into a legal Prometheus name."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_LABEL_KEY = re.compile(r"^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)=(?P<value>.+)$")


def _split_labeled_name(name: str) -> Tuple[str, Optional[str], str]:
    """Split the registry's labeled-name conventions into (base, value, key).

    Two spellings exist:

    * ``base[label]`` — a bare value under the default ``path`` key; the
      service records per-path request counters as
      ``service_requests_total[/evaluate_layer]``;
    * ``base[key=value]`` — an explicit label key; the fleet router
      records per-replica counters as
      ``fleet_requests_total[shard=shard-0]``.
    """
    if name.endswith("]"):
        idx = name.find("[")
        if 0 < idx < len(name) - 1:
            inner = name[idx + 1 : -1]
            match = _LABEL_KEY.match(inner)
            if match is not None:
                return name[:idx], match.group("value"), match.group("key")
            return name[:idx], inner, "path"
    return name, None, "path"


def _fmt(value: float) -> str:
    """Prometheus-friendly number formatting (``%g``)."""
    return f"{float(value):g}"


def render_prometheus(snapshot: Dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Deterministic: families and series appear in sorted-name order, so
    repeated scrapes of an idle registry are byte-identical.
    """
    lines: List[str] = []

    families: Dict[str, List[Tuple[Optional[str], str, float]]] = {}
    for name, value in snapshot.get("counters", {}).items():
        base, label, key = _split_labeled_name(str(name))
        families.setdefault(sanitize_metric_name(base), []).append(
            (label, key, float(value))
        )
    for base in sorted(families):
        lines.append(f"# TYPE {base} counter")
        for label, key, value in sorted(
            families[base], key=lambda item: (item[1], item[0] or "")
        ):
            if label is None:
                lines.append(f"{base} {_fmt(value)}")
            else:
                lines.append(
                    f'{base}{{{key}="{_escape_label_value(label)}"}} '
                    f"{_fmt(value)}"
                )

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        hist = histograms[name]
        base = sanitize_metric_name(str(name))
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, bucket in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += bucket
            lines.append(f'{base}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += hist["bucket_counts"][-1]
        lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{base}_sum {_fmt(hist['sum'])}")
        lines.append(f"{base}_count {hist['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    """Parse the ``key="value",...`` body of a label set; strict."""
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    for part in raw.split(","):
        match = _LABEL.match(part.strip())
        if match is None:
            raise ValueError(f"malformed label pair: {part!r}")
        labels[match.group("key")] = (
            match.group("value")
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Strictly parse Prometheus text exposition into metric families.

    Returns ``{family_name: {"type": str, "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`ValueError` on malformed lines,
    samples without a preceding ``# TYPE``, illegal metric names, or
    histogram families violating the cumulative ``_bucket``/``_sum``/
    ``_count`` conventions — i.e. anything a real scraper would reject.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
                current = parts[2]
                if not _NAME_OK.match(current):
                    raise ValueError(
                        f"line {lineno}: illegal metric name {current!r}"
                    )
                if current in families:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {current!r}"
                    )
                families[current] = {"type": parts[3], "samples": []}
            continue  # HELP / comments
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        if current is None or not (
            name == current or name.startswith(current + "_")
        ):
            raise ValueError(
                f"line {lineno}: sample {name!r} outside its TYPE family"
            )
        labels = _parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value in {line!r}"
            ) from None
        families[current]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] == "histogram":
            _validate_histogram_family(family, data["samples"])
    return families


def _validate_histogram_family(
    family: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    """Enforce cumulative-bucket/_sum/_count invariants for one family."""
    buckets = [(l, v) for (n, l, v) in samples if n == family + "_bucket"]
    counts = [v for (n, l, v) in samples if n == family + "_count"]
    sums = [v for (n, l, v) in samples if n == family + "_sum"]
    if not buckets or len(counts) != 1 or len(sums) != 1:
        raise ValueError(
            f"histogram {family!r} must have _bucket series and exactly "
            "one _sum and one _count"
        )
    if any("le" not in labels for labels, _ in buckets):
        raise ValueError(f"histogram {family!r} has a bucket without le=")
    if buckets[-1][0].get("le") != "+Inf":
        raise ValueError(f"histogram {family!r} must end with le=\"+Inf\"")
    values = [v for _, v in buckets]
    if any(b > a for b, a in zip(values, values[1:])):
        raise ValueError(f"histogram {family!r} buckets are not cumulative")
    if values[-1] != counts[0]:
        raise ValueError(
            f"histogram {family!r}: +Inf bucket {values[-1]} != _count {counts[0]}"
        )


__all__ = [
    "parse_prometheus_text",
    "render_prometheus",
    "sanitize_metric_name",
]
