"""Software-mapping representation for the GEMMCore intrinsic.

A :class:`GemmMapping` fixes, for one GEMM-shaped operator, the scheduling
primitives of Section 2 (split / reorder / unroll):

* **split** — L1-level tile sizes ``(tile_m, tile_n, tile_k)``; tiles are
  divisor-aligned so loop counts are exact,
* **reorder** — the outer (inter-tile) loop order, a permutation of
  ``m, n, k``,
* **spatial** — which tile dims unroll across the PE array axes
  (``"mn"``: m on pe_x / n on pe_y, or ``"nm"`` transposed),
* **unroll** — inner reduction unrolling factor (pipeline ramp hiding).

The per-layer mapping space has on the order of 1e4-1e6 points for the
paper's layer shapes, matching the "~1e6 per layer" quoted in Section 4.1.
A network-level mapping is a dict ``layer name -> GemmMapping``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.utils.intmath import divisors, nearest_divisor
from repro.utils.rng import SeedLike, as_generator
from repro.workloads.layers import GemmShape

LOOP_ORDERS: Tuple[Tuple[str, str, str], ...] = tuple(
    itertools.permutations(("m", "n", "k"))
)
SPATIAL_CHOICES: Tuple[str, ...] = ("mn", "nm")
UNROLL_CHOICES: Tuple[int, ...] = (1, 2, 4, 8)

#: GEMM dimension codes shared with the batch cost-model kernels
DIM_INDEX: Dict[str, int] = {"m": 0, "n": 1, "k": 2}


@dataclass(frozen=True)
class GemmMapping:
    """One point in the per-operator software mapping space."""

    tile_m: int
    tile_n: int
    tile_k: int
    loop_order: Tuple[str, str, str] = ("n", "m", "k")
    spatial: str = "mn"
    unroll: int = 1

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k) < 1:
            raise MappingError(
                f"tile sizes must be >= 1, got "
                f"{(self.tile_m, self.tile_n, self.tile_k)}"
            )
        if tuple(self.loop_order) not in LOOP_ORDERS:
            raise MappingError(f"invalid loop order {self.loop_order!r}")
        if self.spatial not in SPATIAL_CHOICES:
            raise MappingError(f"invalid spatial choice {self.spatial!r}")
        if self.unroll not in UNROLL_CHOICES:
            raise MappingError(f"invalid unroll factor {self.unroll}")
        # canonical integer row consumed by the batch cost-model kernels
        # (repro.costmodel.maestro_batch); precomputed once here so batch
        # evaluation does not re-derive it per candidate per call
        object.__setattr__(self, "_row", (
            self.tile_m, self.tile_n, self.tile_k, self.unroll,
            1 if self.spatial == "mn" else 0,
            DIM_INDEX[self.loop_order[2]],
        ))

    def tiles(self) -> Tuple[int, int, int]:
        return (self.tile_m, self.tile_n, self.tile_k)

    def with_tiles(self, tile_m: int, tile_n: int, tile_k: int) -> "GemmMapping":
        return replace(self, tile_m=tile_m, tile_n=tile_n, tile_k=tile_k)

    def key(self) -> Tuple:
        """Hashable identity for visited-set bookkeeping."""
        return (
            self.tile_m,
            self.tile_n,
            self.tile_k,
            self.loop_order,
            self.spatial,
            self.unroll,
        )


class GemmMappingSpace:
    """The mapping space induced by one :class:`GemmShape`.

    Tile sizes range over the divisors of each GEMM dimension (capped at
    ``max_tile`` to bound footprints), crossed with loop orders, spatial
    choices and unroll factors.
    """

    def __init__(self, shape: GemmShape, max_tile: int = 4096):
        self.shape = shape
        self.tile_m_choices = tuple(d for d in divisors(shape.m) if d <= max_tile)
        self.tile_n_choices = tuple(d for d in divisors(shape.n) if d <= max_tile)
        self.tile_k_choices = tuple(d for d in divisors(shape.k) if d <= max_tile)
        if not (self.tile_m_choices and self.tile_n_choices and self.tile_k_choices):
            raise MappingError(f"empty tile grid for shape {shape}")

    @property
    def size(self) -> int:
        return (
            len(self.tile_m_choices)
            * len(self.tile_n_choices)
            * len(self.tile_k_choices)
            * len(LOOP_ORDERS)
            * len(SPATIAL_CHOICES)
            * len(UNROLL_CHOICES)
        )

    def sample(self, seed: SeedLike = None) -> GemmMapping:
        rng = as_generator(seed)
        return GemmMapping(
            tile_m=int(self.tile_m_choices[rng.integers(0, len(self.tile_m_choices))]),
            tile_n=int(self.tile_n_choices[rng.integers(0, len(self.tile_n_choices))]),
            tile_k=int(self.tile_k_choices[rng.integers(0, len(self.tile_k_choices))]),
            loop_order=LOOP_ORDERS[int(rng.integers(0, len(LOOP_ORDERS)))],
            spatial=SPATIAL_CHOICES[int(rng.integers(0, len(SPATIAL_CHOICES)))],
            unroll=UNROLL_CHOICES[int(rng.integers(0, len(UNROLL_CHOICES)))],
        )

    def seeded_mapping(self, pe_x: int, pe_y: int) -> GemmMapping:
        """A sensible starting point: tiles snapped near the PE array shape.

        Heuristic seeds accelerate every search tool without biasing the
        comparison (all tools share the same seeding rule).
        """
        tile_m = nearest_divisor(self.shape.m, max(pe_x, min(self.shape.m, 4 * pe_x)))
        tile_n = nearest_divisor(self.shape.n, max(pe_y, min(self.shape.n, 4 * pe_y)))
        tile_k = nearest_divisor(self.shape.k, min(self.shape.k, 64))
        return GemmMapping(tile_m=tile_m, tile_n=tile_n, tile_k=tile_k)

    def seeded_mapping_for(self, hw) -> GemmMapping:
        """Capacity-aware seed: the largest tiling that fits ``hw``'s buffers.

        Mirrors what a production auto-scheduler's first candidate looks
        like: spread m/n over the PE array with a small per-PE sub-tile,
        choose the deepest reduction tile the (double-buffered) L1 budget
        allows, and keep the reduction loop innermost so accumulators
        complete in place.  Falls back to the plain PE-shaped seed when
        nothing fits.
        """
        m, n, k = self.shape.m, self.shape.n, self.shape.k
        l1_bytes = getattr(hw, "l1_bytes", None)
        l2_bytes = getattr(hw, "l2_bytes", None)
        if l1_bytes is None or l2_bytes is None:
            return self.seeded_mapping(hw.pe_x, hw.pe_y)
        acc_bytes = 4
        for sub in (8, 4, 2, 1):
            tile_m = nearest_divisor(m, min(m, sub * hw.pe_x))
            tile_n = nearest_divisor(n, min(n, sub * hw.pe_y))
            sub_m = -(-tile_m // hw.pe_x)
            sub_n = -(-tile_n // hw.pe_y)
            # 2*(sub_m*tk + tk*sub_n) + sub_m*sub_n*acc <= l1_bytes
            tk_budget = (l1_bytes - sub_m * sub_n * acc_bytes) // (
                2 * (sub_m + sub_n)
            )
            if tk_budget < 1:
                continue
            tile_k = nearest_divisor(k, min(k, int(tk_budget), 512))
            while (
                2 * (sub_m * tile_k + tile_k * sub_n) + sub_m * sub_n * acc_bytes
                > l1_bytes
                and tile_k > 1
            ):
                tile_k = nearest_divisor(k, max(1, tile_k // 2))
            l1_need = (
                2 * (sub_m * tile_k + tile_k * sub_n) + sub_m * sub_n * acc_bytes
            )
            l2_need = 2 * (tile_m + tile_n) * tile_k + tile_m * tile_n * acc_bytes
            if l1_need <= l1_bytes and l2_need <= l2_bytes:
                return GemmMapping(
                    tile_m=tile_m,
                    tile_n=tile_n,
                    tile_k=tile_k,
                    loop_order=("n", "m", "k"),
                    unroll=4,
                )
        return self.seeded_mapping(hw.pe_x, hw.pe_y)

    def mutate(self, mapping: GemmMapping, seed: SeedLike = None) -> GemmMapping:
        """Propose a neighbor by perturbing one primitive."""
        rng = as_generator(seed)
        move = int(rng.integers(0, 6))
        if move in (0, 1, 2):
            grids = {
                0: ("tile_m", self.tile_m_choices),
                1: ("tile_n", self.tile_n_choices),
                2: ("tile_k", self.tile_k_choices),
            }
            field_name, grid = grids[move]
            current = getattr(mapping, field_name)
            index = grid.index(current) if current in grid else 0
            offset = 0
            while offset == 0:
                offset = int(rng.integers(-2, 3))
            new_index = max(0, min(len(grid) - 1, index + offset))
            return replace(mapping, **{field_name: int(grid[new_index])})
        if move == 3:
            order = LOOP_ORDERS[int(rng.integers(0, len(LOOP_ORDERS)))]
            return replace(mapping, loop_order=order)
        if move == 4:
            other = "nm" if mapping.spatial == "mn" else "mn"
            return replace(mapping, spatial=other)
        unroll = UNROLL_CHOICES[int(rng.integers(0, len(UNROLL_CHOICES)))]
        return replace(mapping, unroll=unroll)

    def crossover(
        self, parent_a: GemmMapping, parent_b: GemmMapping, seed: SeedLike = None
    ) -> GemmMapping:
        """Uniform crossover (GAMMA-style genetic operator)."""
        rng = as_generator(seed)

        def pick(field_name: str):
            source = parent_a if rng.random() < 0.5 else parent_b
            return getattr(source, field_name)

        return GemmMapping(
            tile_m=pick("tile_m"),
            tile_n=pick("tile_n"),
            tile_k=pick("tile_k"),
            loop_order=pick("loop_order"),
            spatial=pick("spatial"),
            unroll=pick("unroll"),
        )


NetworkMapping = Dict[str, GemmMapping]


def default_network_mapping(
    spaces: Dict[str, GemmMappingSpace], pe_x: int, pe_y: int
) -> NetworkMapping:
    """Seed every layer of a network with its heuristic starting mapping."""
    return {name: space.seeded_mapping(pe_x, pe_y) for name, space in spaces.items()}
