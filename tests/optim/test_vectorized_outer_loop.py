"""Bit-exactness and correctness tests for the vectorized MOBO outer loop.

The structure-of-arrays rewrite of ``suggest_batch`` (shared Cholesky,
pooled posterior, matrix EI) must be *bit-identical* to the slot-by-slot
scalar path under a fixed seed — not approximately equal.  These tests pin
that contract, plus the fast paths it rests on: the vectorized ParEGO
kernel, the reusable Cholesky factor, the analytic marginal-likelihood
gradient, and the SoA successive-halving bookkeeping.
"""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.hw import edge_design_space
from repro.optim.gp import GaussianProcess, factorize
from repro.optim.mobo import MOBOSampler
from repro.optim.mobo_legacy import parego_scalars_loop
from repro.optim.scalarize import parego_scalar, parego_scalars, uniform_weights
from repro.optim.sh import (
    relative_auc_score,
    relative_auc_scores,
    select_survivors_detailed,
    select_survivors_soa,
    terminal_value,
    terminal_values,
)


@pytest.fixture(scope="module")
def space():
    return edge_design_space()


def _training_set(space, num=32, num_objectives=3, seed=0):
    rng = np.random.default_rng(seed)
    configs = [space.sample(rng) for _ in range(num)]
    objectives = rng.random((num, num_objectives))
    return configs, objectives


class TestParegoVectorizedParity:
    """The einsum kernel must reproduce the scalar formula bit for bit."""

    def test_bit_exact_vs_scalar_random_matrices(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(1, 40))
            m = int(rng.integers(2, 6))
            matrix = rng.normal(0, 2, (n, m))
            w = rng.dirichlet(np.ones(m))
            batched = parego_scalars(matrix, w)
            single = np.array([parego_scalar(row, w) for row in matrix])
            assert np.array_equal(batched, single)  # exact, not approx

    def test_bit_exact_with_nan_and_inf_rows(self):
        rng = np.random.default_rng(1)
        matrix = rng.random((10, 3))
        matrix[2, 1] = np.inf
        matrix[5, 0] = np.nan
        matrix[7, 2] = -np.inf
        w = uniform_weights(3)
        batched = parego_scalars(matrix, w)
        assert batched[2] == np.inf
        assert batched[5] == np.inf
        assert batched[7] == np.inf
        finite_rows = [i for i in range(10) if i not in (2, 5, 7)]
        for i in finite_rows:
            assert batched[i] == parego_scalar(matrix[i], w)

    def test_row_value_independent_of_batch(self):
        """A row scalarizes identically alone or inside a larger matrix."""
        rng = np.random.default_rng(2)
        matrix = rng.random((17, 4))
        w = rng.dirichlet(np.ones(4))
        full = parego_scalars(matrix, w)
        for i in (0, 8, 16):
            assert full[i] == parego_scalars(matrix[i : i + 1], w)[0]

    def test_matches_legacy_loop_approx(self):
        """The old ddot formula agrees to float roundoff (not bit-exact)."""
        rng = np.random.default_rng(3)
        matrix = rng.random((25, 4))
        w = rng.dirichlet(np.ones(4))
        np.testing.assert_allclose(
            parego_scalars(matrix, w), parego_scalars_loop(matrix, w), rtol=1e-12
        )

    def test_empty_matrix(self):
        assert parego_scalars(np.zeros((0, 3)), uniform_weights(3)).shape == (0,)

    def test_validation_preserved(self):
        with pytest.raises(ValueError):
            parego_scalars(np.ones((2, 3)), [0.5, 0.5])  # shape mismatch
        with pytest.raises(ValueError):
            parego_scalars(np.ones((2, 2)), [1.5, -0.5])  # negative weight
        with pytest.raises(ValueError):
            parego_scalars(np.ones((2, 2)), [0.6, 0.6])  # sum != 1
        with pytest.raises(ValueError):
            parego_scalar(np.ones((2, 2)), [0.5, 0.5])  # matrix to scalar API


class TestGPFastPaths:
    def _data(self, n=30, d=5, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, (n, d))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2 + 0.05 * rng.standard_normal(n)
        return x, y

    @pytest.mark.parametrize("kernel", ["matern52", "rbf"])
    def test_analytic_gradient_matches_finite_differences(self, kernel):
        x, y = self._data()
        y = (y - y.mean()) / y.std()
        gp = GaussianProcess(kernel)
        rng = np.random.default_rng(1)
        params = rng.normal(0, 0.5, x.shape[1] + 2)
        _, grad = gp._neg_log_marginal_and_grad(params, x, y)
        eps = 1e-6
        for i in range(len(params)):
            up, down = params.copy(), params.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (
                gp._neg_log_marginal_and_grad(up, x, y)[0]
                - gp._neg_log_marginal_and_grad(down, x, y)[0]
            ) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_gradient_fit_matches_fd_fit_quality(self):
        """Analytic-gradient fitting finds an optimum at least as good."""
        x, y = self._data(n=40)
        y_std = (y - y.mean()) / y.std()
        grad_gp = GaussianProcess().fit(x, y, seed=0, num_restarts=1)
        fd_gp = GaussianProcess().fit(
            x, y, seed=0, num_restarts=1, use_gradient=False
        )

        def nll(gp):
            params = np.concatenate(
                [
                    np.log(gp.hyper.lengthscales),
                    [np.log(gp.hyper.variance)],
                    [np.log(max(gp.hyper.noise - gp.noise_floor, 1e-12))],
                ]
            )
            return gp._neg_log_marginal(params, x, y_std)

        assert nll(grad_gp) <= nll(fd_gp) + 1e-3

    def test_factor_fit_bit_identical_to_hyper_fit(self):
        """fit(factor=...) must equal fit(hyper=...) on every prediction."""
        x, y = self._data()
        base = GaussianProcess().fit(x, y, seed=0, num_restarts=1)
        factor = factorize("matern52", x, base.hyper)

        rng = np.random.default_rng(7)
        y2 = rng.random(len(y))  # a different target, same X and hyper
        via_hyper = GaussianProcess().fit(x, y2, hyper=base.hyper)
        via_factor = GaussianProcess().fit(x, y2, factor=factor)

        x_query = rng.uniform(0, 1, (50, x.shape[1]))
        mean_h, std_h = via_hyper.predict(x_query)
        mean_f, std_f = via_factor.predict(x_query)
        assert np.array_equal(mean_h, mean_f)
        assert np.array_equal(std_h, std_f)

    def test_factorize_matches_finalize_chol(self):
        x, y = self._data()
        gp = GaussianProcess().fit(x, y, seed=0, num_restarts=1)
        factor = factorize("matern52", x, gp.hyper)
        assert np.array_equal(factor.chol, gp._chol)


class TestSuggestBatchParity:
    """vectorized=True and vectorized=False must return identical batches."""

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_bit_identical_batches(self, space, seed):
        configs, objectives = _training_set(space, seed=seed)
        incumbents = configs[:3]
        kwargs = dict(seed=seed, pool_size=128, min_observations=8)
        vec = MOBOSampler(space, 3, vectorized=True, **kwargs)
        ref = MOBOSampler(space, 3, vectorized=False, **kwargs)
        for _ in range(2):  # two rounds: RNG streams must stay in lockstep
            batch_vec = vec.suggest_batch(
                configs, objectives, 6, incumbents=incumbents
            )
            batch_ref = ref.suggest_batch(
                configs, objectives, 6, incumbents=incumbents
            )
            assert [space.config_key(c) for c in batch_vec] == [
                space.config_key(c) for c in batch_ref
            ]
            assert len(batch_vec) == 6

    def test_shared_hyper_identical(self, space):
        configs, objectives = _training_set(space)
        vec = MOBOSampler(space, 3, seed=5, pool_size=64, vectorized=True)
        ref = MOBOSampler(space, 3, seed=5, pool_size=64, vectorized=False)
        vec.suggest_batch(configs, objectives, 4)
        ref.suggest_batch(configs, objectives, 4)
        assert np.array_equal(
            vec._shared_hyper.lengthscales, ref._shared_hyper.lengthscales
        )
        assert vec._shared_hyper.variance == ref._shared_hyper.variance
        assert vec._shared_hyper.noise == ref._shared_hyper.noise

    def test_fixed_seed_determinism(self, space):
        configs, objectives = _training_set(space)
        batches = [
            MOBOSampler(space, 3, seed=99, pool_size=64).suggest_batch(
                configs, objectives, 5
            )
            for _ in range(2)
        ]
        assert [space.config_key(c) for c in batches[0]] == [
            space.config_key(c) for c in batches[1]
        ]

    def test_random_fallback_unaffected_by_flag(self, space):
        configs, objectives = _training_set(space, num=4)
        vec = MOBOSampler(space, 3, seed=3, vectorized=True)
        ref = MOBOSampler(space, 3, seed=3, vectorized=False)
        batch_vec = vec.suggest_batch(configs, objectives, 5)
        batch_ref = ref.suggest_batch(configs, objectives, 5)
        assert [space.config_key(c) for c in batch_vec] == [
            space.config_key(c) for c in batch_ref
        ]

    def test_non_finite_objectives_raise(self, space):
        configs, objectives = _training_set(space)
        objectives[3, 1] = np.inf
        for vectorized in (True, False):
            sampler = MOBOSampler(
                space, 3, seed=1, pool_size=32, vectorized=vectorized
            )
            with pytest.raises(SurrogateError):
                sampler.suggest_batch(configs, objectives, 4)


class TestPredictObjectivesSharedHyper:
    def test_uses_shared_hyper_when_set(self, space):
        """predict_objectives must reuse the suggest-time hyperparameters."""
        configs, objectives = _training_set(space)
        sampler = MOBOSampler(space, 3, seed=11, pool_size=64)
        sampler.suggest_batch(configs, objectives, 4)
        assert sampler._shared_hyper is not None

        queries = configs[:6]
        means, stds = sampler.predict_objectives(configs, objectives, queries)

        x_train = space.encode_batch(configs)
        x_query = space.encode_batch(queries)
        for j in range(3):
            gp = GaussianProcess().fit(
                x_train, objectives[:, j], hyper=sampler._shared_hyper
            )
            mean_j, std_j = gp.predict(x_query)
            assert np.array_equal(means[:, j], mean_j)
            assert np.array_equal(stds[:, j], std_j)

    def test_fresh_fit_before_any_batch(self, space):
        """Without shared hyper each column falls back to its own fit."""
        configs, objectives = _training_set(space, num=16)
        sampler = MOBOSampler(space, 3, seed=11)
        assert sampler._shared_hyper is None
        means, stds = sampler.predict_objectives(
            configs, objectives, configs[:4]
        )
        assert means.shape == (4, 3)
        assert np.all(np.isfinite(means)) and np.all(stds >= 0)


class TestMshSoA:
    def _curves(self, seed=0, count=25):
        rng = np.random.default_rng(seed)
        curves = []
        for i in range(count):
            length = int(rng.integers(0, 60))
            curve = np.minimum.accumulate(rng.random(length) + 0.05)
            if length and i % 5 == 0:
                curve[: min(3, length)] = np.inf
            curves.append(curve)
        return curves

    def test_terminal_values_match_scalar(self):
        curves = self._curves()
        batched = terminal_values(curves)
        for value, curve in zip(batched, curves):
            assert value == terminal_value(curve)  # exact (incl. inf)

    def test_relative_auc_scores_match_scalar(self):
        curves = self._curves()
        batched = relative_auc_scores(curves)
        expected = np.array([relative_auc_score(c) for c in curves])
        np.testing.assert_allclose(batched, expected, rtol=1e-12, atol=1e-15)

    def test_auc_edge_cases(self):
        curves = [
            np.array([]),  # empty -> 0
            np.array([1.0]),  # single point -> 0
            np.array([np.inf, np.inf]),  # never feasible -> 0
            np.array([np.inf, 2.0, 1.0]),  # warmup then progress
            np.array([-1.0, -2.0, -3.0]),  # negative terminal: raw AUC
        ]
        batched = relative_auc_scores(curves)
        expected = np.array([relative_auc_score(c) for c in curves])
        np.testing.assert_allclose(batched, expected, rtol=1e-12, atol=1e-15)
        assert batched[0] == batched[1] == batched[2] == 0.0

    def test_select_survivors_soa_matches_dict_path(self):
        rng = np.random.default_rng(4)
        for trial in range(30):
            n = int(rng.integers(2, 40))
            ids = list(range(n))
            tvs = np.round(rng.random(n), 2)  # rounding forces score ties
            aucs = np.round(rng.random(n), 2)
            keep = int(rng.integers(0, n))
            promotions = int(rng.integers(0, keep + 1))
            via_dict = select_survivors_detailed(
                ids, dict(enumerate(tvs)), dict(enumerate(aucs)), keep, promotions
            )
            via_soa = select_survivors_soa(ids, tvs, aucs, keep, promotions)
            assert via_soa == via_dict

    def test_select_survivors_soa_validation(self):
        with pytest.raises(Exception):
            select_survivors_soa([0, 1], np.zeros(2), np.zeros(2), -1, 0)
        with pytest.raises(Exception):
            select_survivors_soa([0, 1], np.zeros(2), np.zeros(2), 1, 2)

    def test_keep_all_shortcut(self):
        survivors, promoted = select_survivors_soa(
            [3, 1, 2], np.array([0.1, 0.2, 0.3]), np.zeros(3), 5, 1
        )
        assert survivors == [3, 1, 2] and promoted == []


class TestDesignSpaceBatchOps:
    def test_encode_batch_bit_identical(self, space):
        rng = np.random.default_rng(0)
        configs = [space.sample(rng) for _ in range(20)]
        stacked = np.vstack([space.encode(c) for c in configs])
        assert np.array_equal(space.encode_batch(configs), stacked)

    def test_encode_batch_empty(self, space):
        assert space.encode_batch([]).shape == (0, space.num_dimensions)

    def test_sample_indices_stream_identical_to_sample(self, space):
        """Batched index draws consume the RNG exactly like scalar draws."""
        seq_rng = np.random.default_rng(42)
        expected = [space.config_key(space.sample(seq_rng)) for _ in range(50)]
        batch_rng = np.random.default_rng(42)
        rows = space.sample_indices(50, batch_rng)
        got = [space.key_from_indices(row) for row in rows]
        assert got == expected
        # and the generators end in the same state
        assert (
            seq_rng.bit_generator.state == batch_rng.bit_generator.state
        )

    def test_config_from_indices_round_trip(self, space):
        rows = space.sample_indices(10, 3)
        for row in rows:
            config = space.config_from_indices(row)
            assert space.config_key(config) == space.key_from_indices(row)
