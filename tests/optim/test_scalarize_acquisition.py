"""Tests for ParEGO scalarization and acquisition functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.acquisition import expected_improvement, upper_confidence_bound
from repro.optim.scalarize import (
    parego_scalar,
    parego_scalars,
    sample_weight_vector,
    uniform_weights,
)


class TestParegoScalar:
    def test_eq1_structure(self):
        """v = max_j(w_j y_j) + rho * Y.W, rho = 0.2 by default."""
        y = [0.4, 0.8, 0.2, 0.6]
        w = [0.25, 0.25, 0.25, 0.25]
        expected = 0.25 * 0.8 + 0.2 * (np.dot(y, w))
        assert parego_scalar(y, w) == pytest.approx(expected)

    def test_custom_rho(self):
        y = [1.0, 0.0]
        w = [0.5, 0.5]
        assert parego_scalar(y, w, rho=0.0) == pytest.approx(0.5)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            parego_scalar([1, 2], [0.6, 0.6])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            parego_scalar([1, 2], [1.5, -0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            parego_scalar([1, 2, 3], [0.5, 0.5])

    def test_infinite_objectives_give_inf(self):
        assert parego_scalar([np.inf, 0], [0.5, 0.5]) == float("inf")

    def test_vectorized_matches_scalar(self):
        matrix = np.array([[0.1, 0.9], [0.5, 0.5]])
        w = [0.3, 0.7]
        values = parego_scalars(matrix, w)
        assert values[0] == pytest.approx(parego_scalar(matrix[0], w))
        assert values[1] == pytest.approx(parego_scalar(matrix[1], w))

    @given(
        st.lists(st.floats(0, 1), min_size=4, max_size=4),
        st.lists(st.floats(0, 1), min_size=4, max_size=4),
    )
    @settings(max_examples=50)
    def test_monotone_in_objectives(self, y, delta):
        """Worsening any objective never lowers the fidelity scalar."""
        w = uniform_weights(4)
        worse = [a + b for a, b in zip(y, delta)]
        assert parego_scalar(worse, w) >= parego_scalar(y, w) - 1e-12


class TestWeightSampling:
    def test_sums_to_one(self, rng):
        for _ in range(10):
            w = sample_weight_vector(4, rng)
            assert w.sum() == pytest.approx(1.0)
            assert np.all(w >= 0)

    def test_uniform_weights(self):
        assert uniform_weights(4).tolist() == [0.25] * 4

    def test_varies(self, rng):
        a = sample_weight_vector(3, rng)
        b = sample_weight_vector(3, rng)
        assert not np.allclose(a, b)


class TestExpectedImprovement:
    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.0]), best=0.5)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_better_mean_higher_ei(self):
        ei = expected_improvement(
            np.array([0.1, 0.9]), np.array([0.1, 0.1]), best=1.0
        )
        assert ei[0] > ei[1]

    def test_uncertainty_raises_ei_at_equal_mean(self):
        ei = expected_improvement(
            np.array([1.0, 1.0]), np.array([0.01, 1.0]), best=1.0
        )
        assert ei[1] > ei[0]

    def test_non_negative(self, rng):
        mean = rng.normal(0, 1, 50)
        std = rng.uniform(0.01, 1, 50)
        assert np.all(expected_improvement(mean, std, best=0.0) >= 0)

    def test_deep_improvement_close_to_gap(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-6]), best=10.0)
        assert ei[0] == pytest.approx(10.0, rel=0.01)


class TestUCB:
    def test_prefers_low_mean(self):
        ucb = upper_confidence_bound(np.array([0.0, 1.0]), np.array([0.1, 0.1]))
        assert ucb[0] > ucb[1]

    def test_prefers_high_std(self):
        ucb = upper_confidence_bound(np.array([1.0, 1.0]), np.array([0.5, 0.1]))
        assert ucb[0] > ucb[1]
