"""Tests for the REST PPA service and its remote-engine client."""

import json
from urllib.request import Request, urlopen

import numpy as np
import pytest

from repro.camodel.mapping import AscendMapping
from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import (
    PPAServiceServer,
    RemotePPAEngine,
    decode_object,
    encode_object,
)
from repro.errors import EvaluationError
from repro.hw import default_ascend_config
from repro.mapping import FlexTensorSearch, GemmMapping


@pytest.fixture()
def server(tiny_network):
    backend = MaestroEngine(tiny_network)
    with PPAServiceServer(backend) as srv:
        yield srv


@pytest.fixture()
def remote(server, tiny_network):
    return RemotePPAEngine(
        tiny_network, server.url, area_fn=spatial_area_mm2
    )


class TestCodec:
    def test_spatial_hw_roundtrip(self, sample_hw):
        assert decode_object(encode_object(sample_hw)) == sample_hw

    def test_ascend_hw_roundtrip(self):
        hw = default_ascend_config()
        assert decode_object(encode_object(hw)) == hw

    def test_gemm_mapping_roundtrip(self):
        mapping = GemmMapping(4, 8, 16, loop_order=("k", "m", "n"), unroll=4)
        assert decode_object(encode_object(mapping)) == mapping

    def test_ascend_mapping_roundtrip(self):
        mapping = AscendMapping(4, 8, 16, fuse_output=True)
        assert decode_object(encode_object(mapping)) == mapping

    def test_unknown_type_rejected(self):
        with pytest.raises(EvaluationError):
            decode_object({"type": "Mystery", "fields": {}})

    def test_payload_is_json_serializable(self, sample_hw):
        json.dumps(encode_object(sample_hw))


class TestServer:
    def test_health(self, server, tiny_network):
        with urlopen(f"{server.url}/health") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["workload"] == tiny_network.name

    def test_evaluate_layer_endpoint(self, server, sample_hw):
        request = Request(
            f"{server.url}/evaluate_layer",
            data=json.dumps(
                {
                    "hw": encode_object(sample_hw),
                    "mapping": encode_object(GemmMapping(4, 8, 4)),
                    "layer": "gemm",
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["feasible"]
        assert payload["latency_s"] > 0

    def test_bad_layer_is_400(self, server, sample_hw):
        request = Request(
            f"{server.url}/evaluate_layer",
            data=json.dumps(
                {
                    "hw": encode_object(sample_hw),
                    "mapping": encode_object(GemmMapping(1, 1, 1)),
                    "layer": "missing",
                }
            ).encode(),
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(request)
        assert exc_info.value.code == 400

    def test_unknown_path_is_404(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(f"{server.url}/nope")
        assert exc_info.value.code == 404


class TestRemoteEngine:
    def test_matches_local_engine(self, remote, tiny_network, sample_hw):
        local = MaestroEngine(tiny_network)
        mapping = GemmMapping(4, 8, 4)
        remote_result = remote.evaluate_layer(sample_hw, mapping, "gemm")
        local_result = local.evaluate_layer(sample_hw, mapping, "gemm")
        assert remote_result.latency_s == pytest.approx(local_result.latency_s)
        assert remote_result.energy_j == pytest.approx(local_result.energy_j)

    def test_caching_avoids_second_request(self, remote, server, sample_hw):
        mapping = GemmMapping(4, 8, 4)
        remote.evaluate_layer(sample_hw, mapping, "gemm")
        backend_queries = server.engine.num_queries
        remote.evaluate_layer(sample_hw, mapping, "gemm")
        assert server.engine.num_queries == backend_queries  # served from cache
        assert remote.num_cache_hits == 1

    def test_infeasible_transported(self, remote, tiny_network):
        from repro.hw import edge_design_space

        tiny_hw = edge_design_space().to_config(
            {
                "pe_x": 1,
                "pe_y": 1,
                "l1_bytes": 64,
                "l2_kb": 8,
                "noc_bw": 64,
                "dataflow": "ws",
            }
        )
        result = remote.evaluate_layer(tiny_hw, GemmMapping(32, 64, 48), "gemm")
        assert not result.feasible
        assert np.isinf(result.latency_s)

    def test_full_search_through_service(self, remote, tiny_network, sample_hw):
        """A mapping search can run entirely against the remote engine."""
        search = FlexTensorSearch(tiny_network, sample_hw, remote, seed=0)
        search.run(15)
        assert np.isfinite(search.best_objective)
        assert search.best_ppa.feasible

    def test_health_passthrough(self, remote):
        assert remote.health()["status"] == "ok"
