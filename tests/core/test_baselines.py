"""Tests for the baseline co-optimizers."""

import numpy as np
import pytest

from repro.core import (
    HascoBaseline,
    HascoConfig,
    MobohbBaseline,
    MobohbConfig,
    NSGA2Codesign,
    NSGA2CodesignConfig,
    RandomCodesign,
    RandomCodesignConfig,
)
from repro.costmodel import MaestroEngine


def _run(cls, config, tiny_network, edge_space, seed=7):
    engine = MaestroEngine(tiny_network)
    optimizer = cls(
        edge_space, tiny_network, engine, config, power_cap_w=100.0, seed=seed
    )
    return optimizer.optimize()


class TestHasco:
    def test_end_to_end(self, tiny_network, edge_space):
        result = _run(
            HascoBaseline,
            HascoConfig(max_candidates=5, full_budget=20),
            tiny_network,
            edge_space,
        )
        assert result.method == "hasco"
        assert result.total_hw_evaluated == 5
        assert result.best_design() is not None

    def test_every_candidate_full_budget(self, tiny_network, edge_space):
        engine = MaestroEngine(tiny_network)
        optimizer = HascoBaseline(
            edge_space,
            tiny_network,
            engine,
            HascoConfig(max_candidates=4, full_budget=15),
            power_cap_w=100.0,
            seed=0,
        )
        optimizer.optimize()
        # HASCO never early-stops: every observation carries full budget
        assert all(
            np.isfinite(y).all() or True for y in optimizer.observed_objectives
        )
        assert len(optimizer.observed_configs) == 4

    def test_time_budget(self, tiny_network, edge_space):
        result = _run(
            HascoBaseline,
            HascoConfig(max_candidates=100, full_budget=20, time_budget_s=500.0),
            tiny_network,
            edge_space,
        )
        assert result.total_hw_evaluated < 100


class TestNSGA2Codesign:
    def test_end_to_end(self, tiny_network, edge_space):
        result = _run(
            NSGA2Codesign,
            NSGA2CodesignConfig(population_size=4, max_generations=2, eval_budget=12),
            tiny_network,
            edge_space,
        )
        assert result.method == "nsgaii"
        assert result.total_hw_evaluated == 4 + 2 * 4
        assert result.extras["generations"] == 2

    def test_pareto_non_empty(self, tiny_network, edge_space):
        result = _run(
            NSGA2Codesign,
            NSGA2CodesignConfig(population_size=4, max_generations=1, eval_budget=12),
            tiny_network,
            edge_space,
        )
        assert len(result.pareto) >= 1


class TestMobohb:
    def test_end_to_end(self, tiny_network, edge_space):
        result = _run(
            MobohbBaseline,
            MobohbConfig(max_budget=9, eta=3.0, max_hyperband_loops=1),
            tiny_network,
            edge_space,
        )
        assert result.method == "mobohb"
        assert result.total_hw_evaluated > 0
        assert result.extras["hyperband_loops"] == 1

    def test_model_kicks_in_after_min_observations(self, tiny_network, edge_space):
        engine = MaestroEngine(tiny_network)
        optimizer = MobohbBaseline(
            edge_space,
            tiny_network,
            engine,
            MobohbConfig(max_budget=9, eta=3.0, max_hyperband_loops=2, min_observations=3),
            power_cap_w=100.0,
            seed=1,
        )
        result = optimizer.optimize()
        assert len(optimizer.observed_configs) >= 3


class TestRandom:
    def test_end_to_end(self, tiny_network, edge_space):
        result = _run(
            RandomCodesign,
            RandomCodesignConfig(max_candidates=5, full_budget=10),
            tiny_network,
            edge_space,
        )
        assert result.method == "random"
        assert result.total_hw_evaluated >= 4  # duplicates skipped, not retried

    def test_deterministic(self, tiny_network, edge_space):
        def run_once():
            result = _run(
                RandomCodesign,
                RandomCodesignConfig(max_candidates=4, full_budget=8),
                tiny_network,
                edge_space,
            )
            best = result.best_design()
            return None if best is None else best.ppa.latency_s

        assert run_once() == run_once()


class TestCommonResultShape:
    @pytest.mark.parametrize(
        "cls,config",
        [
            (HascoBaseline, HascoConfig(max_candidates=3, full_budget=8)),
            (
                NSGA2Codesign,
                NSGA2CodesignConfig(
                    population_size=4, max_generations=1, eval_budget=8
                ),
            ),
            (MobohbBaseline, MobohbConfig(max_budget=4, max_hyperband_loops=1)),
            (RandomCodesign, RandomCodesignConfig(max_candidates=3, full_budget=8)),
        ],
    )
    def test_uniform_result_anatomy(self, cls, config, tiny_network, edge_space):
        result = _run(cls, config, tiny_network, edge_space)
        assert result.network == "tinynet"
        assert result.total_time_s > 0
        assert len(result.timeline) == result.total_hw_evaluated
        for entry in result.timeline:
            assert entry.ppa_vector.shape == (3,)
        assert result.pareto.points.shape[1] == 3
