"""Objective scalarization: ParEGO / augmented Tchebycheff.

Two uses in UNICO (Section 3.2):

1. the acquisition layer scalarizes the objective space with a *random*
   weight vector per batch candidate (qParEGO batch diversity), and
2. the high-fidelity update rule computes the fidelity scalar

   ``v_ParEGO = max_j(w_j * y_j) + rho * Y^T W``  (Eq. 1, rho = 0.2)

   over *normalized* objectives with fixed importance weights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator

DEFAULT_RHO = 0.2


def _validated_weights(weights: Sequence[float], num_objectives: int) -> np.ndarray:
    """Shared weight validation of Eq. (1): non-negative, summing to 1."""
    w = np.asarray(weights, dtype=float)
    if w.shape != (num_objectives,):
        raise ValueError(
            f"objectives ({num_objectives},) vs weights {w.shape}"
        )
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"weights must sum to 1, got {total}")
    return w


def parego_scalars(
    objective_matrix: np.ndarray,
    weights: Sequence[float],
    rho: float = DEFAULT_RHO,
) -> np.ndarray:
    """Vectorized Eq. (1) over the rows of ``objective_matrix``.

    One elementwise ``max`` plus one ``einsum`` row reduction over the whole
    matrix — no per-row Python.  ``einsum`` (not BLAS ``@``) keeps each
    row's reduction order independent of the batch size, so a row's scalar
    is bit-identical whether it is computed alone or inside a pool matrix
    (the property the scalar/vectorized acquisition parity tests rely on).
    Rows with any non-finite objective scalarize to ``inf``, exactly like
    :func:`parego_scalar`.
    """
    matrix = np.atleast_2d(np.asarray(objective_matrix, dtype=float))
    w = _validated_weights(weights, matrix.shape[1])
    if matrix.shape[0] == 0:
        return np.zeros(0)
    values = np.max(w * matrix, axis=1) + rho * np.einsum("ij,j->i", matrix, w)
    values[~np.all(np.isfinite(matrix), axis=1)] = np.inf
    return values


def parego_scalar(
    objectives: Sequence[float],
    weights: Sequence[float],
    rho: float = DEFAULT_RHO,
) -> float:
    """Eq. (1): augmented Tchebycheff fidelity scalar (lower is better).

    ``objectives`` should already be normalized to a shared scale; weights
    must be non-negative and sum to 1.  Delegates to the vectorized kernel
    so the scalar and batched paths are bit-identical by construction.
    """
    y = np.asarray(objectives, dtype=float)
    if y.ndim != 1:
        raise ValueError(f"objectives must be a vector, got shape {y.shape}")
    return float(parego_scalars(y[None, :], weights, rho)[0])


def sample_weight_vector(
    num_objectives: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniform Dirichlet(1) weights — the ParEGO random scalarization."""
    rng = as_generator(seed)
    raw = rng.dirichlet(np.ones(num_objectives))
    return raw


def uniform_weights(num_objectives: int) -> np.ndarray:
    """Equal importance weights."""
    return np.full(num_objectives, 1.0 / num_objectives)
