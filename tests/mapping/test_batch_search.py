"""Speculative batching must not change search trajectories.

``batch_size > 1`` drafts proposals ahead of time, evaluates them through
one vectorized engine call, then *replays* the proposals under the true
post-fold state — so the history, the monotone best-so-far curve, the
incumbents and the final RNG state are byte-identical to the scalar loop,
for every tool (speculation-safe ones reuse the batch results; the rest
silently fall back to scalar stepping).
"""

import pytest

from repro.costmodel import MaestroEngine
from repro.errors import SearchBudgetError
from repro.mapping.cosa import CosaMapper
from repro.mapping.flextensor import FlexTensorSearch
from repro.mapping.gamma import GammaSearch
from repro.mapping.random_search import RandomMappingSearch

ALL_TOOLS = [FlexTensorSearch, RandomMappingSearch, GammaSearch, CosaMapper]


def _run(tool_cls, network, hw, batch_size, budgets=(40, 23), seed=7):
    engine = MaestroEngine(network)
    search = tool_cls(
        network, hw, engine, objective="latency", seed=seed, batch_size=batch_size
    )
    for budget in budgets:  # uneven rounds cross batch boundaries
        search.run(budget)
    return search


@pytest.mark.parametrize("tool_cls", ALL_TOOLS)
def test_batched_history_identical_to_scalar(tool_cls, tiny_network, sample_hw):
    scalar = _run(tool_cls, tiny_network, sample_hw, batch_size=1)
    batched = _run(tool_cls, tiny_network, sample_hw, batch_size=8)
    assert len(scalar.history) == len(batched.history) == 63
    for a, b in zip(scalar.history, batched.history):
        assert a == b  # every field of every MappingSearchPoint
    assert scalar.best_layer_mapping == batched.best_layer_mapping
    assert scalar.rng.bit_generator.state == batched.rng.bit_generator.state


def test_random_search_speculation_never_misses(tiny_network, sample_hw):
    """Pure-RNG proposals replay with a 100% batch-pool hit rate."""
    batched = _run(RandomMappingSearch, tiny_network, sample_hw, batch_size=8)
    assert batched.num_speculative_evals == 63
    assert batched.num_speculation_misses == 0
    # and therefore the engine charged exactly the scalar query count
    scalar = _run(RandomMappingSearch, tiny_network, sample_hw, batch_size=1)
    assert batched.engine.num_queries == scalar.engine.num_queries


def test_stateful_tools_fall_back_honestly(tiny_network, sample_hw):
    """Fold-dependent proposals may mispredict; misses are counted, not hidden."""
    batched = _run(FlexTensorSearch, tiny_network, sample_hw, batch_size=8)
    assert batched.num_speculative_evals > 0
    # Metropolis folds consume RNG, so some replays diverge from the drafts
    assert batched.num_speculation_misses > 0


def test_non_speculative_tool_skips_batching(tiny_network, sample_hw):
    """CoSA pops a queue in _propose; it must never enter the batch path."""
    assert CosaMapper.supports_speculation is False
    batched = _run(CosaMapper, tiny_network, sample_hw, batch_size=8)
    assert batched.num_speculative_evals == 0
    assert batched.engine.num_batch_queries == 0


def test_batch_size_one_uses_scalar_path(tiny_network, sample_hw):
    search = _run(RandomMappingSearch, tiny_network, sample_hw, batch_size=1)
    assert search.num_speculative_evals == 0
    assert search.engine.num_batch_queries == 0


def test_engine_without_batch_api_still_works(tiny_network, sample_hw):
    """A speculation-safe tool over an engine lacking evaluate_candidates."""

    class MinimalEngine:
        def __init__(self, inner):
            self._inner = inner
            self.tech = inner.tech

        def evaluate_layer(self, hw, mapping, layer_name):
            return self._inner.evaluate_layer(hw, mapping, layer_name)

        def area_mm2(self, hw):
            return self._inner.area_mm2(hw)

    engine = MinimalEngine(MaestroEngine(tiny_network))
    batched = RandomMappingSearch(
        tiny_network, sample_hw, engine, seed=7, batch_size=8
    )
    batched.run(20)
    reference = _run(
        RandomMappingSearch, tiny_network, sample_hw, batch_size=1, budgets=(20,)
    )
    assert [p.best_objective for p in batched.history] == [
        p.best_objective for p in reference.history
    ]


def test_invalid_batch_size_rejected(tiny_network, sample_hw, tiny_engine):
    with pytest.raises(SearchBudgetError):
        RandomMappingSearch(tiny_network, sample_hw, tiny_engine, batch_size=0)
