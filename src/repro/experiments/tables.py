"""Tables 1-2: per-network PPA + search cost under edge/cloud constraints.

For each network and method the harness runs the full co-search, selects
the min-Euclidean-distance design on the PPA Pareto front, and reports
``(latency, power, area, cost-in-hours)`` — the exact columns of the paper's
tables.  The expected shape: UNICO's design dominates (or trades one metric
slightly for large gains on the other two) at a several-fold smaller
Cost(h).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.experiments.harness import run_method
from repro.experiments.presets import Preset
from repro.utils.records import RunRecord

TABLE_METHODS = ("hasco", "nsgaii", "unico")


def run_table_cell(
    method: str,
    scenario: str,
    network: str,
    preset: Union[str, Preset],
    seed: int = 0,
) -> Dict[str, float]:
    """One (method, network) cell: the paper's four reported values."""
    result = run_method(method, scenario, network, preset, seed=seed)
    best = result.best_design()
    if best is None:
        return {
            "latency_ms": float("inf"),
            "power_mw": float("inf"),
            "area_mm2": float("inf"),
            "cost_h": result.total_time_h,
            "pareto_size": 0,
        }
    return {
        "latency_ms": best.ppa.latency_s * 1e3,
        "power_mw": best.ppa.power_w * 1e3,
        "area_mm2": best.ppa.area_mm2,
        "cost_h": result.total_time_h,
        "pareto_size": len(result.pareto),
    }


def run_table(
    scenario: str,
    networks: Sequence[str],
    preset: Union[str, Preset] = "smoke",
    methods: Sequence[str] = TABLE_METHODS,
    seed: int = 0,
) -> RunRecord:
    """Regenerate Table 1 (scenario='edge') or Table 2 (scenario='cloud')."""
    record = RunRecord(f"table-{scenario}")
    record.put("scenario", scenario)
    record.put("methods", list(methods))
    for network in networks:
        network_record = record.child(network)
        for method in methods:
            cell = run_table_cell(method, scenario, network, preset, seed=seed)
            network_record.child(method).update(cell)
    return record


def format_table(record: RunRecord) -> str:
    """Render a table record as the paper-style text table."""
    lines = [
        f"{'Network':<16s}"
        + "".join(
            f"{method:>12s}(L ms){method:>10s}(P mW){method:>10s}(A mm2)"
            f"{method:>8s}(h)"
            for method in record.get("methods", [])
        )
    ]
    for network, network_record in record.children.items():
        cells = []
        for method in record.get("methods", []):
            metrics = network_record.children[method].metrics
            cells.append(
                f"{metrics['latency_ms']:18.4g}{metrics['power_mw']:16.4g}"
                f"{metrics['area_mm2']:17.3g}{metrics['cost_h']:9.2f}"
            )
        lines.append(f"{network:<16s}" + "".join(cells))
    return "\n".join(lines)
