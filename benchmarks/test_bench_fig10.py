"""Figure 10: ablation of MSH and the high-fidelity update rule.

Four variants on {UNET, SRGAN, BERT, VIT}: HASCO, SH+ChampionUpdate,
MSH+ChampionUpdate, and full UNICO.  Expected shape (paper): MSH+Champion
beats plain SH+Champion (which over-prunes and can fall below HASCO), and
full UNICO (MSH + HighFidelityUpdate) achieves the best hypervolume —
paper numbers: MSH+Champion ~13.7% over HASCO, UNICO ~28% over HASCO.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import run_fig10
from repro.workloads import FIG10_NETWORKS

SEED = 0


@pytest.mark.benchmark(group="fig10")
def test_fig10_ablation(benchmark, results_dir):
    record = run_once(benchmark, run_fig10, "bench", seed=SEED)
    save_record(results_dir, "fig10", record)

    print("\n=== Fig. 10: feature ablation (final hypervolume), bench preset ===")
    for network in FIG10_NETWORKS:
        panel = record.children[network]
        cells = "  ".join(
            f"{m}={panel.children[m].get('final_hv'):.4f}"
            for m in ("hasco", "sh_champion", "msh_champion", "unico")
        )
        print(f"{network:<10s} {cells}")
    for method in ("sh_champion", "msh_champion", "unico"):
        value = record.get(f"mean_improvement_{method}_pct")
        print(f"mean improvement over HASCO, {method}: {value:+.1f}%")

    unico_gain = record.get("mean_improvement_unico_pct")
    msh_gain = record.get("mean_improvement_msh_champion_pct")
    sh_gain = record.get("mean_improvement_sh_champion_pct")
    # ordering of the paper's ablation: MSH >= SH, and full UNICO on top
    assert msh_gain >= sh_gain - 5.0  # MSH not worse than SH (tolerance)
    assert unico_gain >= -5.0  # full UNICO at least matches HASCO
    assert unico_gain >= sh_gain - 5.0
