"""End-to-end telemetry acceptance: a hub scraping a live 2-replica
FleetSupervisor fleet must page when a replica dies mid-run (``replica_down``
and ``evals_per_sec_floor`` within two scrape intervals of the first failed
scrape), surface the alerts on ``GET /alerts`` and the SSE stream, resolve
them once the replica returns, and keep a crash-survivable metrics store."""

import socket
import threading
import time

import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import PPAServiceServer
from repro.fleet.client import ShardedPPAEngine
from repro.fleet.server import FleetSupervisor, ReplicaSpec
from repro.hub import HubClient, HubServer
from repro.hw import edge_design_space
from repro.mapping import GemmMapping
from repro.tracking.journal import read_events
from repro.workloads import get_network

INTERVAL = 0.2
MAPPINGS = [GemmMapping(4, 8, 4), GemmMapping(8, 8, 8), GemmMapping(16, 16, 8)]


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def drive(network, urls, hw):
    sharded = ShardedPPAEngine(
        network, list(urls), area_fn=spatial_area_mm2,
        timeout_s=10.0, batch_size=2,
    )
    try:
        sharded.evaluate_candidates(hw, "fc", MAPPINGS)
    finally:
        sharded.close()


class Driver:
    """Continuous query traffic, like a co-search mid-run.

    Keeps evaluating against the whole fleet until stopped; once a
    replica dies its keys fail over down the rendezvous ranking, so the
    survivors stay busy and only the dead replica's rate collapses.
    """

    def __init__(self, network, urls, hw):
        self._sharded = ShardedPPAEngine(
            network, list(urls), area_fn=spatial_area_mm2,
            timeout_s=10.0, batch_size=2,
        )
        self._hw = hw
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self):
        self._thread.start()
        return self

    def _loop(self):
        i = 0
        while not self._stop.is_set():
            # vary the tiles each round so neither the client's nor the
            # replicas' result caches swallow the traffic
            i += 1
            fresh = [
                GemmMapping(4, 8, 3 * i - 2),
                GemmMapping(8, 8, 3 * i - 1),
                GemmMapping(16, 16, 3 * i),
            ]
            try:
                self._sharded.evaluate_candidates(self._hw, "fc", fresh)
            except Exception:
                pass  # a mid-kill batch may fail; keep the traffic flowing
            self._stop.wait(0.05)

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=30.0)
        self._sharded.close()


def firing(client, target):
    return {
        a["rule"]
        for a in client.alerts()["active"]
        if a["state"] == "firing" and a["target"] == target
    }


class TestFleetTelemetryAcceptance:
    def test_kill_restore_alert_lifecycle(self, tmp_path):
        network = get_network("mobilenetv3_small")
        hw = edge_design_space().to_config({
            "pe_x": 8, "pe_y": 8, "l1_bytes": 4096,
            "l2_kb": 256, "noc_bw": 64, "dataflow": "ws",
        })
        ports = (free_port(), free_port())
        spec = ReplicaSpec(
            network="mobilenetv3_small", cache_capacity=256, ports=ports
        )
        fleet = FleetSupervisor(spec, replicas=2).start()
        down_target = f"replica:127.0.0.1:{ports[0]}"
        hub = HubServer(
            tmp_path / "runs",
            replica_urls=list(fleet.urls),
            telemetry=True,
            scrape_interval_s=INTERVAL,
        )
        hub.start()
        client = HubClient(hub.url)
        streamed = []
        collector = threading.Thread(
            target=lambda: streamed.extend(client.stream_alerts()),
            daemon=True,
        )
        collector.start()
        replacement = None
        driver = Driver(network, fleet.urls, hw).start()
        try:
            # -- healthy fleet: scrape a few ticks of real query traffic
            self._wait_ticks(hub, 4)
            assert firing(client, down_target) == set()

            # -- kill replica 0 mid-run; the driver fails over and keeps
            # the survivor busy, so only the dead replica's rate collapses
            proc = fleet._procs[0]
            fleet.terminate_replica(0)
            proc.join(timeout=10.0)
            assert not proc.is_alive()

            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if {"replica_down", "evals_per_sec_floor"} <= firing(
                    client, down_target
                ):
                    break
                time.sleep(0.05)
            assert {"replica_down", "evals_per_sec_floor"} <= firing(
                client, down_target
            ), client.alerts()["active"]

            # both alerts fired within 2 scrape intervals of the first
            # failed scrape (the tick that recorded up=0)
            samples = client.obs_export(down_target)["samples"]
            first_down_t = next(
                s["t"] for s in samples if s["s"].get("up") == 0.0
            )
            history = client.alerts()["history"]
            for rule in ("replica_down", "evals_per_sec_floor"):
                fired_t = min(
                    e["t"] for e in history
                    if e["state"] == "firing"
                    and e["target"] == down_target
                    and e["rule"] == rule
                    and e["t"] >= first_down_t - 1e-6
                )
                assert fired_t - first_down_t <= 2 * INTERVAL + 1e-6, (
                    rule, fired_t, first_down_t
                )

            # -- bring the replica back on the same port
            replacement = PPAServiceServer(
                MaestroEngine(network), port=ports[0]
            )
            replacement.start()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                active = firing(client, down_target)
                if not active:
                    break
                if "evals_per_sec_floor" in active:
                    # the floor rule resolves on hysteresis: it needs the
                    # eval rate clearly back above the floor, so keep
                    # serving real queries through the restored replica
                    drive(network, [replacement.url], hw)
                time.sleep(0.1)
            assert firing(client, down_target) == set(), (
                client.alerts()["active"]
            )

            history = client.alerts()["history"]
            for rule in ("replica_down", "evals_per_sec_floor"):
                states = [
                    e["state"] for e in history
                    if e["rule"] == rule and e["target"] == down_target
                ]
                # full lifecycle observed: at least one firing -> resolved
                # cycle, alternating, ending resolved
                assert "firing" in states and states[-1] == "resolved", (
                    rule, states
                )
                assert states == [
                    "firing" if i % 2 == 0 else "resolved"
                    for i in range(len(states))
                ], (rule, states)
        finally:
            driver.stop()
            hub.stop()  # drains: the SSE alert stream ends cleanly
            client.close()
            if replacement is not None:
                replacement.stop()
            fleet.stop()

        # the drained hub closed the SSE stream; every journalled alert
        # transition for the dead replica also travelled over SSE
        collector.join(timeout=10.0)
        assert not collector.is_alive()
        scan = read_events(hub.telemetry.alerts_journal_path)
        journalled = [
            (e["state"], e["rule"]) for e in scan.events
            if e["target"] == down_target
        ]
        assert ("firing", "replica_down") in journalled
        assert ("resolved", "replica_down") in journalled
        streamed_pairs = [
            (e.event["state"], e.event["rule"])
            for e in streamed
            if e.event is not None and e.event.get("target") == down_target
        ]
        assert streamed_pairs == journalled

    def _wait_ticks(self, hub, n, timeout_s=15.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if hub.telemetry.status()["ticks"] >= n:
                return
            time.sleep(0.02)
        raise AssertionError(f"pipeline never reached {n} ticks")

    def test_store_survives_crash_and_hub_restart(self, tmp_path):
        """The metrics store under the hub tolerates a torn tail across a
        hub restart and resumes appending byte-consistently."""
        obs_dir = tmp_path / "runs" / "obs"
        hub = HubServer(
            tmp_path / "runs", telemetry=True, scrape_interval_s=0.05
        )
        hub.start()
        try:
            self._wait_ticks(hub, 3)
        finally:
            hub.stop()
        path = obs_dir / "hub.jsonl"
        clean = read_events(path).valid_bytes
        before = path.read_bytes()[:clean]
        with open(path, "ab") as handle:
            handle.write(b'{"t": 1.0, "s": {"hub_queue')  # torn write

        hub = HubServer(
            tmp_path / "runs", telemetry=True, scrape_interval_s=0.05
        )
        hub.start()
        try:
            self._wait_ticks(hub, 2)
        finally:
            hub.stop()
        scan = read_events(path)
        assert not scan.truncated_tail  # damage truncated, never welded
        assert path.read_bytes().startswith(before)
        assert len(scan.events) > len(before.splitlines())
