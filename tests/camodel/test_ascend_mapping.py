"""Tests for the Ascend mapping representation itself."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.errors import MappingError
from repro.workloads.layers import GemmShape


class TestAscendMapping:
    def test_valid(self):
        mapping = AscendMapping(8, 16, 32, fuse_input=True)
        assert mapping.tiles() == (8, 16, 32)
        assert mapping.fuse_input and not mapping.fuse_output

    def test_invalid_tile(self):
        with pytest.raises(MappingError):
            AscendMapping(0, 1, 1)

    def test_with_tiles_preserves_flags(self):
        mapping = AscendMapping(1, 1, 1, fuse_output=True).with_tiles(2, 4, 8)
        assert mapping.tiles() == (2, 4, 8)
        assert mapping.fuse_output

    def test_key_includes_fusion(self):
        a = AscendMapping(2, 4, 8)
        b = AscendMapping(2, 4, 8, fuse_output=True)
        assert a.key() != b.key()


class TestAscendMappingSpace:
    SHAPE = GemmShape(m=56, n=4800, k=108)

    def test_size_counts_fusion(self):
        space = AscendMappingSpace(self.SHAPE)
        tiles_only = (
            len(space.tile_m_choices)
            * len(space.tile_n_choices)
            * len(space.tile_k_choices)
        )
        assert space.size == 4 * tiles_only

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_samples_divide(self, seed):
        space = AscendMappingSpace(self.SHAPE)
        mapping = space.sample(seed=seed)
        assert self.SHAPE.m % mapping.tile_m == 0
        assert self.SHAPE.n % mapping.tile_n == 0
        assert self.SHAPE.k % mapping.tile_k == 0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_mutation_chain_stays_valid(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        space = AscendMappingSpace(self.SHAPE)
        mapping = space.sample(rng)
        for _ in range(6):
            mapping = space.mutate(mapping, rng)
        assert self.SHAPE.m % mapping.tile_m == 0
        assert self.SHAPE.n % mapping.tile_n == 0
        assert self.SHAPE.k % mapping.tile_k == 0

    def test_crossover_fields_from_parents(self, rng):
        space = AscendMappingSpace(self.SHAPE)
        a, b = space.sample(rng), space.sample(rng)
        child = space.crossover(a, b, rng)
        for field in ("tile_m", "tile_n", "tile_k", "fuse_input", "fuse_output"):
            assert getattr(child, field) in (getattr(a, field), getattr(b, field))

    def test_empty_grid_rejected(self):
        # max_tile below every divisor > 0 cannot happen (1 always divides),
        # so the space is never empty for valid shapes
        space = AscendMappingSpace(GemmShape(m=7, n=11, k=13), max_tile=1)
        assert space.size > 0
