"""UNICO — Algorithm 1: unified, robust HW-SW co-optimization.

One MOBO iteration:

1. **Sample** a batch of N hardware configurations from the surrogate-guided
   qParEGO sampler (random until enough high-fidelity data exists).
2. **Search** software mappings for the batch with modified successive
   halving: every candidate gets the first-round budget; survivors (top-k by
   terminal value plus top-p steep convergers by AUC) continue with doubled
   budget until ``b_max``.  Jobs within a round run in parallel on
   ``workers`` machines (simulated-clock makespan accounting).
3. **Assess** every batch member: ``Y = (latency, power, area, sensitivity)``
   where sensitivity is the robustness metric R of Section 3.4.
4. **Update** the surrogate training set through the high-fidelity UUL rule
   (or the champion rule, for ablations) and the PPA Pareto front.

Stopping: ``max_iterations`` MOBO trials or a simulated wall-clock budget,
whichever comes first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.base import CoOptimizer, CoSearchResult
from repro.core.evaluation import HWEvaluation
from repro.core.highfidelity import (
    DEFAULT_UUL_PERCENTILE,
    ChampionSelector,
    HighFidelitySelector,
)
from repro.core.runner import BACKENDS as RUNNER_BACKENDS
from repro.core.runner import JobRunner
from repro.errors import ConfigurationError
from repro.optim.hypervolume import hypervolume, reference_point_from
from repro.optim.mobo import MOBOSampler
from repro.optim.pareto import ObjectiveNormalizer
from repro.optim.sh import (
    plan_rounds,
    relative_auc_scores,
    select_survivors_soa,
    terminal_values,
)

SURROGATE_UPDATES = ("high_fidelity", "champion")


def _advance_trial(trial, additional: int) -> int:
    """Run one trial for ``additional`` budget; returns fresh queries spent."""
    before = trial.queries_spent
    if additional > 0:
        trial.run(additional)
    return trial.queries_spent - before


def _advance_trial_roundtrip(trial, additional: int):
    """Process-backend variant of :func:`_advance_trial`.

    The child advances a *pickled copy* of the trial, so every mutation
    the round produced must travel back explicitly: the advanced trial
    itself (its search state is the round's result), the trial-local
    query delta (simulated-clock charging), and the engine-side query
    delta — queries the child's engine copy served that the parent's
    shared engine never saw and must absorb into its accounting.
    """
    engine_queries_before = trial.engine.num_queries
    delta = _advance_trial(trial, additional)
    return trial, delta, trial.engine.num_queries - engine_queries_before


@dataclass
class UnicoConfig:
    """Hyperparameters of Algorithm 1 (defaults follow the paper)."""

    batch_size: int = 30  # N
    max_iterations: int = 10  # MaxIter
    max_budget: int = 300  # b_max
    eta: float = 2.0
    keep_fraction: float = 0.5  # k = floor(0.5 N)
    auc_fraction: float = 0.15  # p = floor(0.15 N)
    use_msh: bool = True
    surrogate_update: str = "high_fidelity"
    include_robustness: bool = True
    uul_percentile: float = DEFAULT_UUL_PERCENTILE
    rho: float = 0.2
    robustness_alpha: float = 0.05
    pool_size: int = 256
    workers: int = 1
    #: real-compute dispatch of each MSH round's trials.  ``serial`` is
    #: exact and default; ``thread`` overlaps remote-engine (Fig. 6b)
    #: round trips and produces identical results (per-trial query
    #: accounting is race-free and the engines are deterministic).
    #: ``process`` ships each trial to a worker and back as an explicit
    #: round-trip value (the paper's multi-processing dispatch): the
    #: returned trial replaces the local one and the queries its engine
    #: copy served are absorbed into the shared engine, so fronts and
    #: clock accounting reproduce the serial backend exactly.
    runner_backend: str = "serial"
    mobo_overhead_s: float = 5.0
    time_budget_s: Optional[float] = None
    min_observations: int = 8
    #: speculative-batch width of the inner mapping search (candidates per
    #: PPA-engine batch call); 1 keeps the scalar loop.  Results are
    #: byte-identical either way (speculation replays the fold under the
    #: true state); 8 amortizes engine dispatch by default.  Distinct from
    #: ``batch_size``, which is the MOBO *hardware* batch N.
    eval_batch_size: int = 8
    #: warm-start configurations injected into the first batch (e.g. the
    #: expert default when tuning an existing industrial architecture)
    initial_configs: tuple = ()

    def __post_init__(self) -> None:
        if self.batch_size < 2:
            raise ConfigurationError(f"batch_size must be >= 2, got {self.batch_size}")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.max_budget < 1:
            raise ConfigurationError("max_budget must be >= 1")
        if self.surrogate_update not in SURROGATE_UPDATES:
            raise ConfigurationError(
                f"surrogate_update must be one of {SURROGATE_UPDATES}, "
                f"got {self.surrogate_update!r}"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.eval_batch_size < 1:
            raise ConfigurationError(
                f"eval_batch_size must be >= 1, got {self.eval_batch_size}"
            )
        if self.runner_backend not in RUNNER_BACKENDS:
            raise ConfigurationError(
                f"runner_backend must be one of {RUNNER_BACKENDS}, got "
                f"{self.runner_backend!r}"
            )


@dataclass
class IterationRecord:
    """Per-MOBO-iteration diagnostics."""

    iteration: int
    time_s: float
    uul: float
    num_selected: int
    num_feasible: int
    pareto_size: int
    best_scalar: float


class Unico(CoOptimizer):
    """The UNICO co-optimizer."""

    method_name = "unico"
    # optimize() drives run_start/iteration_*/run_end itself
    emits_lifecycle_events = True

    def __init__(self, space, network, engine, config: Optional[UnicoConfig] = None, **kwargs):
        config = config or UnicoConfig()
        super().__init__(
            space,
            network,
            engine,
            include_robustness=config.include_robustness,
            robustness_alpha=config.robustness_alpha,
            eval_batch_size=config.eval_batch_size,
            **kwargs,
        )
        self.config = config
        # the co-optimizer owns all wall-clock accounting
        self.engine.charge_clock = False
        self.num_objectives = 4 if config.include_robustness else 3
        self.sampler = MOBOSampler(
            space,
            self.num_objectives,
            seed=self.seeds.generator("mobo"),
            rho=config.rho,
            pool_size=config.pool_size,
            min_observations=config.min_observations,
        )
        if config.surrogate_update == "high_fidelity":
            self.selector = HighFidelitySelector(
                num_objectives=self.num_objectives,
                rho=config.rho,
                percentile=config.uul_percentile,
            )
        else:
            self.selector = ChampionSelector(
                num_objectives=self.num_objectives, rho=config.rho
            )
        self.normalizer = ObjectiveNormalizer(self.num_objectives)
        self.runner = JobRunner(
            backend=config.runner_backend,
            max_workers=config.workers,
            metrics=self.engine.metrics,
        )
        self.train_configs: List = []
        self.train_objectives_raw: List[np.ndarray] = []
        self.iteration_records: List[IterationRecord] = []
        self.evaluations: List[HWEvaluation] = []
        #: iterations fully finished so far; ``optimize()`` starts here, so
        #: a checkpoint-restored optimizer continues rather than restarting
        #: (and the configured ``max_iterations`` budget is never mutated)
        self.completed_iterations = 0
        self._current_iteration = 0

    # ------------------------------------------------------------------ parts
    def _normalized_training_set(self) -> np.ndarray:
        if not self.train_objectives_raw:
            return np.zeros((0, self.num_objectives))
        return np.vstack(
            [self.normalizer.transform(y) for y in self.train_objectives_raw]
        )

    def _dispatch_round(self, trials: List, active: List[int], round_args) -> List[int]:
        """Run one MSH round's trials through the configured backend.

        Serial/thread backends mutate the trials in place.  The process
        backend gets explicit round-trip values instead: each returned
        trial replaces the local one and is re-pointed at the shared
        engine, whose accounting absorbs the queries the child's engine
        copy served.  Replacement is identity-checked because the runner
        degrades to in-place execution (serial shortcut for one-trial
        rounds, thread fallback for unpicklable jobs) — absorbing those
        deltas again would double-count.
        """
        if self.runner.backend != "process":
            return self.runner.starmap(_advance_trial, round_args)
        outcomes = self.runner.starmap(_advance_trial_roundtrip, round_args)
        deltas: List[int] = []
        external_queries = 0
        for trial_id, (returned, delta, engine_delta) in zip(active, outcomes):
            if returned is not trials[trial_id]:
                returned.reattach_engine(self.engine)
                trials[trial_id] = returned
                external_queries += engine_delta
            deltas.append(delta)
        if external_queries:
            self.engine.absorb_external_queries(external_queries)
        return deltas

    def _run_msh(self, trials: List) -> None:
        """Modified successive halving with parallel clock accounting.

        The trials of one round are dispatched through :class:`JobRunner`
        (``runner_backend``); per-trial query counts come back from the
        jobs themselves, so the simulated-clock makespan accounting is
        identical whichever backend ran the round.
        """
        config = self.config
        plans = plan_rounds(
            len(trials), config.max_budget, config.eta, config.keep_fraction
        )
        # structure-of-arrays bookkeeping: budget spent, init-cost charging,
        # and curve statistics are arrays indexed like `trials`, not dicts
        active = list(range(len(trials)))
        spent = np.zeros(len(trials), dtype=np.int64)
        init_charged = np.zeros(len(trials), dtype=bool)
        for plan_index, plan in enumerate(plans):
            # NullTracer.span is a shared no-op; sim time inside this span
            # is the round's advance_parallel makespan, so traces attribute
            # simulated search cost at MSH-round granularity.
            with self.tracer.span(
                "msh_round",
                round=plan_index,
                budget=plan.cumulative_budget,
                active=len(active),
            ) as round_span:
                additional = plan.cumulative_budget - spent[active]
                round_args = [
                    (trials[trial_id], int(extra))
                    for trial_id, extra in zip(active, additional)
                ]
                spent[active] = np.maximum(spent[active], plan.cumulative_budget)
                deltas = np.asarray(
                    self._dispatch_round(trials, active, round_args),
                    dtype=np.int64,
                )
                total_queries = np.array(
                    [trials[trial_id].queries_spent for trial_id in active],
                    dtype=np.int64,
                )
                # first round charges initialization evals (queries spent
                # before the round) on top of the round's own delta
                duration_queries = np.where(
                    init_charged[active], deltas, total_queries
                )
                init_charged[active] = True
                self.clock.advance_parallel(
                    (duration_queries * self.engine.eval_cost_s).tolist(),
                    label="sw-search",
                )
                is_last = plan_index == len(plans) - 1
                if is_last and not self.tracker.enabled:
                    round_span.set_attribute("survivors", len(active))
                    break
                curves = [trials[trial_id].best_curve() for trial_id in active]
                tvs = terminal_values(curves)
                aucs = relative_auc_scores(curves)
                if is_last:
                    self.tracker.on_msh_round(
                        self,
                        self._current_iteration,
                        plan_index,
                        plan.cumulative_budget,
                        list(active),
                        dict(zip(active, tvs.tolist())),
                        dict(zip(active, aucs.tolist())),
                        list(active),
                        [],
                    )
                    round_span.set_attribute("survivors", len(active))
                    break
                keep = min(plans[plan_index + 1].num_candidates, len(active))
                promotions = 0
                if config.use_msh:
                    promotions = min(
                        int(np.floor(config.auc_fraction * len(trials))), keep
                    )
                survivors, promoted = select_survivors_soa(
                    active, tvs, aucs, keep, promotions
                )
                if self.tracker.enabled:
                    self.tracker.on_msh_round(
                        self,
                        self._current_iteration,
                        plan_index,
                        plan.cumulative_budget,
                        list(active),
                        dict(zip(active, tvs.tolist())),
                        dict(zip(active, aucs.tolist())),
                        list(survivors),
                        promoted,
                    )
                round_span.set_attribute("survivors", len(survivors))
                active = survivors

    # ------------------------------------------------------------ telemetry
    def _search_health(self) -> dict:
        """The per-iteration ``search_health`` beacon payload.

        Hypervolume is measured against a reference point frozen at the
        first non-empty front, so the series is monotone non-decreasing
        within a run and a flat window genuinely means "no progress" —
        the signal the hub's ``hv_stall`` rule watches.  Only assembled
        when a tracker is enabled; an untracked search pays nothing.
        """
        points = self.pareto.points
        hv = 0.0
        if len(points):
            reference = getattr(self, "_hv_reference", None)
            if reference is None:
                reference = reference_point_from(points)
                self._hv_reference = reference
            hv = float(hypervolume(points, reference))
        health = {
            "hypervolume": hv,
            "pareto_size": len(self.pareto),
            "engine_queries": int(getattr(self.engine, "num_queries", 0)),
            "evaluations": len(self.evaluations),
            "time_s": float(self.clock.now_s),
        }
        screen_stats = getattr(self.engine, "screen_stats", None)
        if screen_stats is not None:
            stats = screen_stats()
            health["screening"] = {
                "candidates_seen": int(stats.get("candidates_seen", 0)),
                "forwarded": int(stats.get("forwarded", 0)),
                "escalated": int(stats.get("escalated", 0)),
            }
        return health

    # ----------------------------------------------------------------- driver
    def optimize(self) -> CoSearchResult:
        config = self.config
        self.clock.workers = config.workers
        # the sampler is built in __init__, before any set_tracer() call
        self.sampler.tracer = self.tracer
        self.tracker.on_run_start(self)
        # the run span must finish before tracker.on_run_end, which closes
        # the journal the JournalSpanSink writes into
        with self.tracer.span(
            "run", method=self.method_name, network=self.network.name
        ) as run_span:
            for iteration in range(
                self.completed_iterations, config.max_iterations
            ):
                if (
                    config.time_budget_s is not None
                    and self.clock.now_s >= config.time_budget_s
                ):
                    break
                self._current_iteration = iteration
                with self.tracer.span(
                    "iteration", iteration=iteration
                ) as iteration_span:
                    self.tracker.on_iteration_start(self, iteration)
                    # (1) batch sampling guided by the high-fidelity surrogate
                    incumbents = [design.hw for design in self.pareto.items]
                    with self.tracer.span(
                        "mobo_sample", train_size=len(self.train_configs)
                    ):
                        batch = self.sampler.suggest_batch(
                            self.train_configs,
                            self._normalized_training_set(),
                            config.batch_size,
                            incumbents=incumbents,
                        )
                        self.clock.advance(config.mobo_overhead_s, label="mobo")
                    if iteration == 0 and config.initial_configs:
                        seeds = list(config.initial_configs)[: len(batch)]
                        batch = seeds + batch[len(seeds):]
                    if not batch:
                        break
                    if self.tracker.enabled:
                        self.tracker.on_hw_sampled(self, iteration, batch)
                    # (2) adaptive SW mapping search via (M)SH
                    with self.tracer.span("trial_init", batch=len(batch)):
                        trials = [self.new_trial(hw) for hw in batch]
                    self._run_msh(trials)
                    # (3) assess every candidate
                    with self.tracer.span("assess", batch=len(trials)):
                        batch_evaluations = [
                            self.finish_candidate(
                                trial, batch_id=iteration, batch_size=len(trials)
                            )
                            for trial in trials
                        ]
                    self.evaluations.extend(batch_evaluations)
                    for evaluation in batch_evaluations:
                        self.normalizer.observe(evaluation.objectives)
                    # (4) high-fidelity surrogate update
                    with self.tracer.span("surrogate_update"):
                        normalized = np.vstack(
                            [
                                self.normalizer.transform(evaluation.objectives)
                                for evaluation in batch_evaluations
                            ]
                        )
                        uul_before = self.selector.uul
                        selected, scalars = self.selector.select(normalized)
                    if self.tracker.enabled:
                        self.tracker.on_surrogate_update(
                            self, iteration, scalars, selected, uul_before,
                            self.selector.uul,
                        )
                    for index in np.flatnonzero(selected):
                        self.train_configs.append(batch[index])
                        self.train_objectives_raw.append(
                            batch_evaluations[index].objectives
                        )
                    record = IterationRecord(
                        iteration=iteration,
                        time_s=self.clock.now_s,
                        uul=self.selector.uul,
                        num_selected=int(selected.sum()),
                        num_feasible=sum(
                            1
                            for evaluation in batch_evaluations
                            if evaluation.feasible
                        ),
                        pareto_size=len(self.pareto),
                        best_scalar=float(np.min(scalars[np.isfinite(scalars)]))
                        if np.isfinite(scalars).any()
                        else float("inf"),
                    )
                    self.iteration_records.append(record)
                    self.completed_iterations = iteration + 1
                    iteration_span.set_attribute("pareto_size", len(self.pareto))
                    self.tracker.on_iteration_end(self, record)
                    if self.tracker.enabled:
                        self.tracker.on_search_health(
                            self, iteration, self._search_health()
                        )
            run_span.set_attribute("iterations", len(self.iteration_records))
            run_span.set_attribute("pareto_size", len(self.pareto))
        extras = {
            "iterations": len(self.iteration_records),
            "train_set_size": len(self.train_configs),
            "final_uul": self.selector.uul,
            "iteration_records": self.iteration_records,
        }
        # a learned screening wrapper reports how many analytical
        # evaluations it saved (and at what measured precision/recall)
        screen_stats = getattr(self.engine, "screen_stats", None)
        if screen_stats is not None:
            extras["screening"] = screen_stats()
        result = self.make_result(extras=extras)
        self.tracker.on_run_end(self, result)
        return result
