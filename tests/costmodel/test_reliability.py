"""Failure-injection tests: flaky engines and the retry wrapper."""

import numpy as np
import pytest

from repro.costmodel import MaestroEngine
from repro.costmodel.reliability import FlakyEngine, RetryingEngine
from repro.errors import EvaluationError
from repro.mapping import FlexTensorSearch, GemmMapping

MAPPING = GemmMapping(4, 8, 4)


@pytest.fixture()
def flaky(tiny_network):
    inner = MaestroEngine(tiny_network)
    return FlakyEngine(inner, failure_rate=0.4, seed=0)


class TestFlakyEngine:
    def test_injects_failures(self, flaky, sample_hw, tiny_network):
        failures = 0
        space_samples = 0
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(0)
        for _ in range(40):
            try:
                flaky.evaluate_layer(
                    sample_hw, space.sample(rng), tiny_network.layers[0].name
                )
            except EvaluationError:
                failures += 1
            space_samples += 1
        assert failures > 0
        assert flaky.num_injected_failures == failures

    def test_invalid_rate(self, tiny_network):
        with pytest.raises(EvaluationError):
            FlakyEngine(MaestroEngine(tiny_network), failure_rate=1.0)


class TestRetryingEngine:
    def test_recovers_from_transient_failures(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.4, seed=1)
        robust = RetryingEngine(flaky, max_attempts=6)
        result = robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert result.feasible

    def test_counts_retries(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.5, seed=2)
        robust = RetryingEngine(flaky, max_attempts=8)
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(0)
        for _ in range(30):
            robust.evaluate_layer(
                sample_hw, space.sample(rng), tiny_network.layers[0].name
            )
        assert robust.num_retries > 0

    def test_gives_up_eventually(self, tiny_network, sample_hw):
        class AlwaysDown(MaestroEngine):
            def _compute_layer_by_name(self, hw, mapping, layer_name, shape):
                raise EvaluationError("service unreachable")

        down = AlwaysDown(tiny_network)
        robust = RetryingEngine(down, max_attempts=3)
        with pytest.raises(EvaluationError, match="after 3 attempts"):
            robust.evaluate_layer(sample_hw, MAPPING, "gemm")

    def test_retries_charge_the_clock(self, tiny_network, sample_hw):
        inner = MaestroEngine(tiny_network)
        flaky = FlakyEngine(inner, failure_rate=0.5, seed=3)
        robust = RetryingEngine(flaky, max_attempts=8)
        from repro.mapping import GemmMappingSpace

        space = GemmMappingSpace(tiny_network.layers[0].to_gemm())
        rng = np.random.default_rng(1)
        for _ in range(20):
            robust.evaluate_layer(
                sample_hw, space.sample(rng), tiny_network.layers[0].name
            )
        # clock charged for fresh queries AND failed attempts
        expected_min = 20 * robust.eval_cost_s
        assert robust.clock.now_s > expected_min

    def test_results_match_clean_engine(self, tiny_network, sample_hw):
        clean = MaestroEngine(tiny_network)
        flaky = FlakyEngine(MaestroEngine(tiny_network), failure_rate=0.4, seed=4)
        robust = RetryingEngine(flaky, max_attempts=10)
        a = clean.evaluate_layer(sample_hw, MAPPING, "gemm")
        b = robust.evaluate_layer(sample_hw, MAPPING, "gemm")
        assert a.latency_s == b.latency_s

    def test_full_search_survives_flakiness(self, tiny_network, sample_hw):
        """An entire mapping search completes over a 30%-flaky service."""
        flaky = FlakyEngine(MaestroEngine(tiny_network), failure_rate=0.3, seed=5)
        robust = RetryingEngine(flaky, max_attempts=10)
        search = FlexTensorSearch(tiny_network, sample_hw, robust, seed=0)
        search.run(60)
        assert np.isfinite(search.best_objective)

    def test_invalid_attempts(self, tiny_network):
        with pytest.raises(EvaluationError):
            RetryingEngine(MaestroEngine(tiny_network), max_attempts=0)
