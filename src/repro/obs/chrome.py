"""Chrome-trace-event export: ``trace.json`` loadable in Perfetto.

The Trace Event Format (the JSON understood by ``chrome://tracing`` and
https://ui.perfetto.dev) renders nested spans as a flame graph.  Every
span becomes a complete ("ph": "X") event on the **wall-clock** timeline;
spans that also consumed simulated search time get a twin event in a
second synthetic process, so one file answers both "where did the CPU
go" and "where did the modeled search budget go".

Spans carry their trace/span/parent ids and typed attributes in
``args``, so a stitched client+server trace stays navigable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Union

from repro.obs.trace import SpanSink

#: Synthetic pid of the wall-clock timeline in the exported trace.
WALL_PID = 1
#: Synthetic pid of the simulated-search-time timeline.
SIM_PID = 2


def spans_to_trace_events(spans: Sequence[Dict]) -> List[Dict]:
    """Convert finished-span dicts into Trace Event Format events."""
    events: List[Dict] = [
        {"ph": "M", "pid": WALL_PID, "name": "process_name",
         "args": {"name": "wall clock"}},
        {"ph": "M", "pid": SIM_PID, "name": "process_name",
         "args": {"name": "simulated search time"}},
    ]
    for span in spans:
        args = dict(span.get("attrs") or {})
        args["span_id"] = span.get("span_id")
        args["parent_id"] = span.get("parent_id")
        args["trace_id"] = span.get("trace_id")
        args["sim_start_s"] = span.get("sim_start_s", 0.0)
        args["sim_dur_s"] = span.get("sim_dur_s", 0.0)
        events.append(
            {
                "name": span.get("name", "span"),
                "cat": "wall",
                "ph": "X",
                "ts": float(span.get("wall_start_s", 0.0)) * 1e6,
                "dur": float(span.get("wall_dur_s", 0.0)) * 1e6,
                "pid": WALL_PID,
                "tid": span.get("thread", 0),
                "args": args,
            }
        )
        if float(span.get("sim_dur_s", 0.0)) > 0.0:
            events.append(
                {
                    "name": span.get("name", "span"),
                    "cat": "sim",
                    "ph": "X",
                    "ts": float(span.get("sim_start_s", 0.0)) * 1e6,
                    "dur": float(span.get("sim_dur_s", 0.0)) * 1e6,
                    "pid": SIM_PID,
                    "tid": 0,
                    "args": {"span_id": span.get("span_id"),
                             "parent_id": span.get("parent_id")},
                }
            )
    return events


def write_chrome_trace(
    spans: Sequence[Dict], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write spans as a Chrome trace JSON file; returns the path."""
    path = pathlib.Path(path)
    document = {
        "traceEvents": spans_to_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro.obs chrome trace", "version": 1},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True))
    return path


class ChromeTraceSink(SpanSink):
    """Accumulates spans and writes ``trace.json`` on :meth:`flush`.

    The file is (re)written whole on every flush — partial traces are not
    useful in a viewer, and the crash-safe artifact is the journal's
    ``span`` events, from which ``repro runs trace`` can regenerate this
    file at any time.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self.spans: List[Dict] = []

    def record(self, span: Dict) -> None:
        """Buffer one finished span for the next flush."""
        self.spans.append(span)

    def flush(self) -> None:
        """Write (or rewrite) the Chrome trace file."""
        write_chrome_trace(self.spans, self.path)


__all__ = [
    "SIM_PID",
    "WALL_PID",
    "ChromeTraceSink",
    "spans_to_trace_events",
    "write_chrome_trace",
]
