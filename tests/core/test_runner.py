"""Tests for the job-runner backends."""

import threading
import time

import pytest

from repro.core.runner import BACKENDS, JobRunner
from repro.errors import ConfigurationError


class TestJobRunner:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_order(self, backend):
        runner = JobRunner(backend=backend, max_workers=4)
        jobs = [lambda i=i: i * i for i in range(10)]
        assert runner.map(jobs) == [i * i for i in range(10)]

    def test_empty(self):
        assert JobRunner().map([]) == []

    def test_starmap(self):
        runner = JobRunner()
        assert runner.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_thread_backend_actually_overlaps(self):
        barrier = threading.Barrier(3, timeout=5)

        def job():
            barrier.wait()  # only passes if 3 jobs run concurrently
            return True

        runner = JobRunner(backend="thread", max_workers=3)
        assert runner.map([job, job, job]) == [True, True, True]

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("job failed")

        runner = JobRunner(backend="thread", max_workers=2)
        with pytest.raises(RuntimeError):
            runner.map([lambda: 1, boom])

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            JobRunner(backend="mpi")

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            JobRunner(max_workers=0)
