"""Benchmark-suite helpers.

Every benchmark regenerates one table/figure of the paper at the ``bench``
preset (reduced budgets, same algorithms and accounting), prints the rows
the paper reports, and writes the full record as JSON next to the suite so
EXPERIMENTS.md can cite the measured values.

Simulated search cost (the paper's Cost(h) axis) is tracked by the
SimulatedClock inside each run; pytest-benchmark's timer measures the real
compute of regenerating the experiment.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_record(results_dir: pathlib.Path, name: str, record) -> None:
    """Persist an experiment record as JSON."""
    path = results_dir / f"{name}.json"
    path.write_text(record.to_json())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
