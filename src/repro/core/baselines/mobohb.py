"""MOBOHB baseline: a multi-objective BOHB.

Section 4.2 compares against "a multi-objective version of BOHB [18]".
BOHB = Hyperband's bracket schedule + model-based candidate sampling.  The
multi-objective twist here follows the usual recipe: each bracket draws a
random ParEGO weight vector, scalarizes all completed observations with it
and uses GP-EI to sample the bracket's candidates (random before enough
data); *vanilla* successive halving (terminal value only) prunes within
brackets.  All evaluated candidates feed the shared Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.base import CoOptimizer, CoSearchResult
from repro.optim.gp import GaussianProcess
from repro.optim.acquisition import expected_improvement
from repro.optim.hyperband import hyperband_brackets
from repro.optim.pareto import ObjectiveNormalizer
from repro.optim.scalarize import parego_scalars, sample_weight_vector
from repro.optim.sh import select_survivors, terminal_value


@dataclass
class MobohbConfig:
    """Knobs of the MOBOHB baseline."""

    max_budget: int = 300
    eta: float = 3.0
    max_hyperband_loops: int = 4
    time_budget_s: Optional[float] = None
    min_observations: int = 8
    pool_size: int = 256
    model_overhead_s: float = 2.0
    #: candidate model: "gp" (EI on a scalarized GP) or "tpe" (the original
    #: BOHB model: good/bad Parzen estimators, l(x)/g(x) maximization)
    model: str = "gp"


class MobohbBaseline(CoOptimizer):
    """Hyperband brackets + model-based sampling + random scalarization."""

    method_name = "mobohb"

    def __init__(self, space, network, engine, config: Optional[MobohbConfig] = None, **kwargs):
        super().__init__(space, network, engine, include_robustness=False, **kwargs)
        self.config = config or MobohbConfig()
        self.engine.charge_clock = False
        self.num_objectives = 3
        self.normalizer = ObjectiveNormalizer(self.num_objectives)
        self.observed_configs: List = []
        self.observed_objectives: List[np.ndarray] = []

    # ----------------------------------------------------------- model sampler
    def _sample_candidates(self, count: int) -> List:
        observed_keys = {self.space.config_key(c) for c in self.observed_configs}
        if len(self.observed_configs) < self.config.min_observations:
            return self._random_unique(count, observed_keys)
        weights = sample_weight_vector(self.num_objectives, self.seeds.generator("mobohb-w", len(self.observed_configs)))
        normalized = np.vstack(
            [self.normalizer.transform(y) for y in self.observed_objectives]
        )
        scalar = parego_scalars(normalized, weights)
        if self.config.model == "tpe":
            from repro.optim.tpe import TPESampler

            sampler = TPESampler(
                self.space,
                min_observations=self.config.min_observations,
                seed=self.seeds.generator("mobohb-tpe", len(self.observed_configs)),
            )
            return sampler.suggest(self.observed_configs, scalar, count=count)
        x_train = np.vstack([self.space.encode(c) for c in self.observed_configs])
        gp = GaussianProcess()
        gp.fit(x_train, scalar, num_restarts=1, seed=len(self.observed_configs))
        chosen: List = []
        keys = set(observed_keys)
        rng = self.seeds.generator("mobohb-pool", len(self.observed_configs))
        pool = []
        while len(pool) < self.config.pool_size:
            candidate = self.space.sample(rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                pool.append(candidate)
        x_pool = np.vstack([self.space.encode(c) for c in pool])
        mean, std = gp.predict(x_pool)
        ei = expected_improvement(mean, std, best=float(scalar.min()))
        order = np.argsort(-ei)
        for index in order[:count]:
            chosen.append(pool[int(index)])
        return chosen

    def _random_unique(self, count: int, exclude) -> List:
        rng = self.seeds.generator("mobohb-rand", len(self.observed_configs))
        keys = set(exclude)
        batch: List = []
        attempts = 0
        while len(batch) < count and attempts < 100 * max(count, 1):
            candidate = self.space.sample(rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                batch.append(candidate)
            attempts += 1
        return batch

    # ---------------------------------------------------------------- brackets
    def _run_bracket(self, bracket) -> None:
        candidates = self._sample_candidates(bracket.num_candidates)
        self.clock.advance(self.config.model_overhead_s, label="model")
        if not candidates:
            return
        trials = [self.new_trial(hw) for hw in candidates]
        active = list(range(len(trials)))
        budget = bracket.initial_budget
        spent = {i: 0 for i in active}
        init_charged = {i: False for i in active}
        while True:
            for trial_id in active:
                additional = budget - spent[trial_id]
                queries_before = trials[trial_id].queries_spent
                if additional > 0:
                    trials[trial_id].run(additional)
                    spent[trial_id] = budget
                duration = trials[trial_id].queries_spent - queries_before
                if not init_charged[trial_id]:
                    duration += queries_before
                    init_charged[trial_id] = True
                self.clock.advance(
                    duration * self.engine.eval_cost_s, label="sw-search"
                )
            if budget >= bracket.max_budget or len(active) <= 1:
                break
            keep = max(1, int(np.floor(len(active) / bracket.eta)))
            tv = {i: terminal_value(trials[i].best_curve()) for i in active}
            # vanilla SH: terminal value only
            active = select_survivors(active, tv, {i: 0.0 for i in active}, keep, 0)
            budget = min(bracket.max_budget, int(round(budget * bracket.eta)))
        for trial in trials:
            evaluation = self.finish_candidate(trial)
            self.normalizer.observe(evaluation.objectives)
            self.observed_configs.append(trial.hw)
            self.observed_objectives.append(evaluation.objectives)

    def optimize(self) -> CoSearchResult:
        config = self.config
        brackets = hyperband_brackets(config.max_budget, config.eta)
        loops = 0
        done = False
        while loops < config.max_hyperband_loops and not done:
            for bracket in brackets:
                if (
                    config.time_budget_s is not None
                    and self.clock.now_s >= config.time_budget_s
                ):
                    done = True
                    break
                self._run_bracket(bracket)
            loops += 1
        return self.make_result(
            extras={
                "hyperband_loops": loops,
                "candidates": len(self.observed_configs),
            }
        )
