"""Fault tolerance for estimation services: retries over flaky engines.

In the master-slave deployment (Fig. 6b) the PPA estimation engine is a
network service; transient failures (timeouts, worker restarts) are
routine and must not kill a multi-hour co-search.  This module provides:

* :class:`RetryingEngine` — wraps any engine; transient
  :class:`~repro.errors.EvaluationError` failures are retried with
  bounded attempts, charging the simulated clock for each retry (failed
  work still burned wall-clock);
* :class:`FlakyEngine` — a failure-injection wrapper for tests: fails a
  configurable fraction of fresh computations deterministically.
"""

from __future__ import annotations

from typing import Optional

from repro.costmodel.engine import PPAEngine
from repro.costmodel.results import LayerPPA
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike, as_generator


class RetryingEngine(PPAEngine):
    """Retry transient failures of an inner engine.

    Shares the inner engine's workload, clock, cache-key scheme and cost;
    a query that keeps failing after ``max_attempts`` raises, because at
    that point the service is down, not flaky.
    """

    def __init__(self, inner: PPAEngine, max_attempts: int = 3):
        if max_attempts < 1:
            raise EvaluationError(f"max_attempts must be >= 1, got {max_attempts}")
        super().__init__(
            inner.network,
            clock=inner.clock,
            eval_cost_s=inner.eval_cost_s,
            tech=inner.tech,
            cache_capacity=inner.cache_capacity,
            metrics=inner.metrics,
        )
        self.inner = inner
        self.max_attempts = max_attempts
        self.num_retries = 0

    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        last_error: Optional[EvaluationError] = None
        for attempt in range(self.max_attempts):
            try:
                return self.inner._compute_layer_by_name(
                    hw, mapping, layer_name, shape
                )
            except EvaluationError as error:
                last_error = error
                self.num_retries += 1
                self.metrics.counter("engine_retries_total").inc()
                if self.charge_clock:
                    # the failed attempt burned service time too
                    self.clock.advance(self.eval_cost_s, label="ppa-retry")
        raise EvaluationError(
            f"query failed after {self.max_attempts} attempts: {last_error}"
        )

    def _compute_layer(self, hw, mapping, shape) -> LayerPPA:
        raise NotImplementedError("RetryingEngine dispatches by layer name")

    def area_mm2(self, hw) -> float:
        return self.inner.area_mm2(hw)

    def stats(self) -> dict:
        merged = super().stats()
        merged["num_retries"] = self.num_retries
        merged["inner"] = self.inner.stats()
        return merged


class FlakyEngine(PPAEngine):
    """Failure injection: a fraction of fresh computations raise.

    Failures are deterministic per construction seed (so tests replay) but
    *not* per query key — a retried query usually succeeds, modeling
    transient service errors.
    """

    def __init__(self, inner: PPAEngine, failure_rate: float = 0.2, seed: SeedLike = 0):
        if not 0.0 <= failure_rate < 1.0:
            raise EvaluationError(
                f"failure_rate must be in [0, 1), got {failure_rate}"
            )
        super().__init__(
            inner.network,
            clock=inner.clock,
            eval_cost_s=inner.eval_cost_s,
            tech=inner.tech,
            cache_capacity=inner.cache_capacity,
            metrics=inner.metrics,
        )
        self.inner = inner
        self.failure_rate = failure_rate
        self._rng = as_generator(seed)
        self.num_injected_failures = 0

    def _compute_layer_by_name(self, hw, mapping, layer_name, shape) -> LayerPPA:
        if self._rng.random() < self.failure_rate:
            self.num_injected_failures += 1
            self.metrics.counter("engine_injected_failures_total").inc()
            raise EvaluationError("injected transient failure")
        return self.inner._compute_layer_by_name(hw, mapping, layer_name, shape)

    def _compute_layer(self, hw, mapping, shape) -> LayerPPA:
        raise NotImplementedError("FlakyEngine dispatches by layer name")

    def area_mm2(self, hw) -> float:
        return self.inner.area_mm2(hw)
