"""Tests for the cycle-accurate engine wrapper (noise, cost, caching)."""

import pytest

from repro.camodel import CAMODEL_EVAL_COST_S, AscendCAEngine
from repro.camodel.mapping import AscendMapping
from repro.costmodel import ANALYTICAL_EVAL_COST_S
from repro.hw import default_ascend_config
from repro.workloads import get_network

MAPPING = AscendMapping(tile_m=8, tile_n=64, tile_k=12)


@pytest.fixture(scope="module")
def network():
    return get_network("fsrcnn_120x320")


class TestCost:
    def test_much_more_expensive_than_analytical(self):
        assert CAMODEL_EVAL_COST_S > 5 * ANALYTICAL_EVAL_COST_S

    def test_clock_charged(self, network):
        engine = AscendCAEngine(network)
        engine.evaluate_layer(default_ascend_config(), MAPPING, "shrink")
        assert engine.clock.now_s == pytest.approx(CAMODEL_EVAL_COST_S)


class TestNoise:
    def test_zero_noise_deterministic(self, network):
        engine = AscendCAEngine(network, noise_fraction=0.0)
        r1 = engine.evaluate_layer(default_ascend_config(), MAPPING, "shrink")
        assert engine._noise_factor(default_ascend_config(), MAPPING, None) == 1.0
        assert r1.feasible

    def test_noise_repeatable_per_query(self, network):
        """A simulator is deterministic: same query -> same (noisy) answer."""
        e1 = AscendCAEngine(network, noise_fraction=0.08)
        e2 = AscendCAEngine(network, noise_fraction=0.08)
        r1 = e1.evaluate_layer(default_ascend_config(), MAPPING, "shrink")
        r2 = e2.evaluate_layer(default_ascend_config(), MAPPING, "shrink")
        assert r1.latency_s == r2.latency_s

    def test_noise_bounded(self, network):
        clean_engine = AscendCAEngine(network, noise_fraction=0.0)
        noisy_engine = AscendCAEngine(network, noise_fraction=0.08)
        hw = default_ascend_config()
        clean = clean_engine.evaluate_layer(hw, MAPPING, "shrink")
        noisy = noisy_engine.evaluate_layer(hw, MAPPING, "shrink")
        ratio = noisy.latency_s / clean.latency_s
        assert 0.92 <= ratio <= 1.08

    def test_noise_differs_across_designs(self, network):
        engine = AscendCAEngine(network, noise_fraction=0.08)
        hw1 = default_ascend_config()
        hw2 = hw1.with_updates(l0a_kb=128)
        shape = network.layers[0].to_gemm()
        f1 = engine._noise_factor(hw1, MAPPING, shape)
        f2 = engine._noise_factor(hw2, MAPPING, shape)
        assert f1 != f2

    def test_negative_noise_rejected(self, network):
        with pytest.raises(ValueError):
            AscendCAEngine(network, noise_fraction=-0.1)


class TestNetworkEvaluation:
    def test_full_network(self, network):
        engine = AscendCAEngine(network)
        hw = default_ascend_config()
        mappings = {}
        for layer in network.layers:
            shape = layer.to_gemm()
            mappings[layer.name] = AscendMapping(
                tile_m=min(8, shape.m), tile_n=min(64, shape.n), tile_k=min(8, shape.k)
            )
        ppa = engine.evaluate_network(hw, mappings)
        assert ppa.feasible
        assert ppa.latency_s > 0
        assert ppa.area_mm2 == engine.area_mm2(hw)
