"""Tree-structured Parzen Estimator (TPE) sampler.

BOHB's model component is a TPE, not a GP: observations are split into a
*good* quantile and the rest, two kernel-density estimates l(x) and g(x)
are fit per dimension, and candidates maximizing l(x)/g(x) are proposed.
This implementation works over the ``[0, 1]^d`` ordinal encodings of a
:class:`~repro.hw.space.DiscreteDesignSpace` with per-dimension Gaussian
kernels (bandwidth by Scott's rule, floored), making the MOBOHB baseline's
model faithful to the original algorithm while remaining dependency-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SurrogateError
from repro.hw.space import DiscreteDesignSpace
from repro.utils.rng import SeedLike, as_generator

_MIN_BANDWIDTH = 0.05


class ParzenEstimator:
    """A per-dimension Gaussian KDE over [0, 1]^d points."""

    def __init__(self, points: np.ndarray):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] < 1:
            raise SurrogateError("ParzenEstimator needs at least one point")
        self.points = points
        n, d = points.shape
        # Scott's rule per dimension, floored to stay usable for tiny n
        stds = points.std(axis=0)
        self.bandwidths = np.maximum(
            stds * n ** (-1.0 / (d + 4)), _MIN_BANDWIDTH
        )

    def log_density(self, queries: np.ndarray) -> np.ndarray:
        """Mean-of-kernels log density at each query row."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        # (q, n, d) standardized distances
        z = (queries[:, None, :] - self.points[None, :, :]) / self.bandwidths
        log_kernel = -0.5 * np.sum(z**2, axis=2) - np.sum(
            np.log(self.bandwidths * np.sqrt(2 * np.pi))
        )
        # log-mean-exp over the n kernels
        max_log = log_kernel.max(axis=1, keepdims=True)
        return (
            max_log.squeeze(1)
            + np.log(np.mean(np.exp(log_kernel - max_log), axis=1))
        )

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw points: pick a kernel, add its bandwidth noise, clip."""
        indices = rng.integers(0, self.points.shape[0], size=count)
        noise = rng.standard_normal((count, self.points.shape[1]))
        draws = self.points[indices] + noise * self.bandwidths
        return np.clip(draws, 0.0, 1.0)


class TPESampler:
    """Good/bad-split TPE over a discrete design space."""

    def __init__(
        self,
        space: DiscreteDesignSpace,
        gamma: float = 0.25,
        num_candidates: int = 64,
        min_observations: int = 8,
        seed: SeedLike = None,
    ):
        if not 0.0 < gamma < 1.0:
            raise SurrogateError(f"gamma must be in (0, 1), got {gamma}")
        self.space = space
        self.gamma = gamma
        self.num_candidates = num_candidates
        self.min_observations = min_observations
        self.rng = as_generator(seed)

    def split(
        self, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Indices of the good quantile and the rest (finite scores only)."""
        scores = np.asarray(scores, dtype=float)
        finite = np.flatnonzero(np.isfinite(scores))
        if finite.size < 2:
            return finite, np.array([], dtype=int)
        order = finite[np.argsort(scores[finite])]
        n_good = max(1, int(np.ceil(self.gamma * order.size)))
        return order[:n_good], order[n_good:]

    def suggest(
        self,
        configs: Sequence,
        scores: np.ndarray,
        count: int = 1,
    ) -> List:
        """Propose ``count`` configurations maximizing l(x)/g(x).

        Falls back to uniform sampling until ``min_observations`` finite
        scores exist (or the bad set is empty).
        """
        scores = np.asarray(scores, dtype=float)
        finite_count = int(np.isfinite(scores).sum())
        if finite_count < self.min_observations:
            return [self.space.sample(self.rng) for _ in range(count)]
        good_idx, bad_idx = self.split(scores)
        if good_idx.size == 0 or bad_idx.size == 0:
            return [self.space.sample(self.rng) for _ in range(count)]
        encoded = np.vstack([self.space.encode(c) for c in configs])
        good = ParzenEstimator(encoded[good_idx])
        bad = ParzenEstimator(encoded[bad_idx])
        suggestions: List = []
        for _ in range(count):
            candidates = good.sample(self.num_candidates, self.rng)
            ei_proxy = good.log_density(candidates) - bad.log_density(candidates)
            best = candidates[int(np.argmax(ei_proxy))]
            suggestions.append(self.space.decode(best))
        return suggestions
