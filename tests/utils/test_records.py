"""Tests for run records and JSON normalization."""

import dataclasses
import json

import numpy as np

from repro.utils.records import RunRecord, to_jsonable


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float32(1.5)) == 1.5

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_dict(self):
        payload = to_jsonable({"a": np.array([1.0]), "b": {"c": np.int32(2)}})
        json.dumps(payload)  # must not raise
        assert payload == {"a": [1.0], "b": {"c": 2}}

    def test_dataclass(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        assert to_jsonable(Point(1, 2.0)) == {"x": 1, "y": 2.0}

    def test_tuple_and_set(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert sorted(to_jsonable({3, 1})) == [1, 3]

    def test_fallback_to_str(self):
        class Opaque:
            def __repr__(self):
                return "opaque!"

        assert to_jsonable(Opaque()) == "opaque!"


class TestRunRecord:
    def test_put_and_get(self):
        record = RunRecord("r").put("a", 1)
        assert record.get("a") == 1
        assert record.get("missing", 7) == 7

    def test_child_created_once(self):
        record = RunRecord("r")
        assert record.child("c") is record.child("c")

    def test_roundtrip(self):
        record = RunRecord("root")
        record.put("x", np.float64(1.5))
        record.child("sub").put("y", [1, 2])
        restored = RunRecord.from_dict(json.loads(record.to_json()))
        assert restored.name == "root"
        assert restored.get("x") == 1.5
        assert restored.children["sub"].get("y") == [1, 2]

    def test_rows_flatten(self):
        record = RunRecord("root")
        record.put("m", 1)
        record.child("a").put("n", 2)
        rows = record.rows()
        paths = {row["path"] for row in rows}
        assert paths == {"root", "root/a"}

    def test_update_chains(self):
        record = RunRecord("r").update({"a": 1, "b": 2})
        assert record.metrics == {"a": 1, "b": 2}
