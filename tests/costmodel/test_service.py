"""Tests for the REST PPA service and its remote-engine client."""

import contextlib
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.request import Request, urlopen

import numpy as np
import pytest

from repro.camodel.mapping import AscendMapping
from repro.costmodel import MaestroEngine
from repro.costmodel.maestro import spatial_area_mm2
from repro.costmodel.service import (
    PPAServiceServer,
    RemotePPAEngine,
    decode_object,
    encode_object,
)
from repro.errors import EvaluationError
from repro.hw import default_ascend_config
from repro.mapping import FlexTensorSearch, GemmMapping


@pytest.fixture()
def server(tiny_network):
    backend = MaestroEngine(tiny_network)
    with PPAServiceServer(backend) as srv:
        yield srv


@pytest.fixture()
def remote(server, tiny_network):
    return RemotePPAEngine(
        tiny_network, server.url, area_fn=spatial_area_mm2
    )


class TestCodec:
    def test_spatial_hw_roundtrip(self, sample_hw):
        assert decode_object(encode_object(sample_hw)) == sample_hw

    def test_ascend_hw_roundtrip(self):
        hw = default_ascend_config()
        assert decode_object(encode_object(hw)) == hw

    def test_gemm_mapping_roundtrip(self):
        mapping = GemmMapping(4, 8, 16, loop_order=("k", "m", "n"), unroll=4)
        assert decode_object(encode_object(mapping)) == mapping

    def test_ascend_mapping_roundtrip(self):
        mapping = AscendMapping(4, 8, 16, fuse_output=True)
        assert decode_object(encode_object(mapping)) == mapping

    def test_unknown_type_rejected(self):
        with pytest.raises(EvaluationError):
            decode_object({"type": "Mystery", "fields": {}})

    def test_payload_is_json_serializable(self, sample_hw):
        json.dumps(encode_object(sample_hw))


class TestServer:
    def test_health(self, server, tiny_network):
        with urlopen(f"{server.url}/health") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["workload"] == tiny_network.name

    def test_evaluate_layer_endpoint(self, server, sample_hw):
        request = Request(
            f"{server.url}/evaluate_layer",
            data=json.dumps(
                {
                    "hw": encode_object(sample_hw),
                    "mapping": encode_object(GemmMapping(4, 8, 4)),
                    "layer": "gemm",
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["feasible"]
        assert payload["latency_s"] > 0

    def test_bad_layer_is_400(self, server, sample_hw):
        request = Request(
            f"{server.url}/evaluate_layer",
            data=json.dumps(
                {
                    "hw": encode_object(sample_hw),
                    "mapping": encode_object(GemmMapping(1, 1, 1)),
                    "layer": "missing",
                }
            ).encode(),
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(request)
        assert exc_info.value.code == 400

    def test_unknown_path_is_404(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(f"{server.url}/nope")
        assert exc_info.value.code == 404


class TestRemoteEngine:
    def test_matches_local_engine(self, remote, tiny_network, sample_hw):
        local = MaestroEngine(tiny_network)
        mapping = GemmMapping(4, 8, 4)
        remote_result = remote.evaluate_layer(sample_hw, mapping, "gemm")
        local_result = local.evaluate_layer(sample_hw, mapping, "gemm")
        assert remote_result.latency_s == pytest.approx(local_result.latency_s)
        assert remote_result.energy_j == pytest.approx(local_result.energy_j)

    def test_caching_avoids_second_request(self, remote, server, sample_hw):
        mapping = GemmMapping(4, 8, 4)
        remote.evaluate_layer(sample_hw, mapping, "gemm")
        backend_queries = server.engine.num_queries
        remote.evaluate_layer(sample_hw, mapping, "gemm")
        assert server.engine.num_queries == backend_queries  # served from cache
        assert remote.num_cache_hits == 1

    def test_infeasible_transported(self, remote, tiny_network):
        from repro.hw import edge_design_space

        tiny_hw = edge_design_space().to_config(
            {
                "pe_x": 1,
                "pe_y": 1,
                "l1_bytes": 64,
                "l2_kb": 8,
                "noc_bw": 64,
                "dataflow": "ws",
            }
        )
        result = remote.evaluate_layer(tiny_hw, GemmMapping(32, 64, 48), "gemm")
        assert not result.feasible
        assert np.isinf(result.latency_s)

    def test_full_search_through_service(self, remote, tiny_network, sample_hw):
        """A mapping search can run entirely against the remote engine."""
        search = FlexTensorSearch(tiny_network, sample_hw, remote, seed=0)
        search.run(15)
        assert np.isfinite(search.best_objective)
        assert search.best_ppa.feasible

    def test_health_passthrough(self, remote):
        assert remote.health()["status"] == "ok"


# --------------------------------------------------------------------- helpers
def _fast_remote(network, url, **overrides):
    """A client with real-time knobs tuned so failure tests stay fast."""
    kwargs = dict(
        timeout_s=0.5,
        max_network_retries=0,
        backoff_base_s=0.001,
        backoff_max_s=0.002,
    )
    kwargs.update(overrides)
    return RemotePPAEngine(network, url, area_fn=spatial_area_mm2, **kwargs)


@contextlib.contextmanager
def _dead_url():
    """A URL nothing listens on (bind, grab the port, close)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    yield f"http://127.0.0.1:{port}"


@contextlib.contextmanager
def _silent_url():
    """A socket that accepts connections but never answers (client times out)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(4)
    try:
        yield f"http://127.0.0.1:{sock.getsockname()[1]}"
    finally:
        sock.close()


@contextlib.contextmanager
def _scripted_url(script):
    """Serve canned responses in order; after the script, repeat the last.

    Entries: ``("status", body_str)`` — e.g. ``(500, '{"error": "down"}')``
    or ``(200, "definitely not json")``.
    """
    remaining = list(script)
    lock = threading.Lock()
    hits = {"count": 0}

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):
            pass

        def _serve(self):
            with lock:
                hits["count"] += 1
                status, body = remaining.pop(0) if len(remaining) > 1 else remaining[0]
            payload = body.encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        do_GET = _serve
        do_POST = _serve

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}", hits
    finally:
        httpd.shutdown()
        httpd.server_close()


MAPPING = GemmMapping(4, 8, 4)


class TestTransportErrorMapping:
    """Satellite (a): network-level failures surface as EvaluationError."""

    def test_dead_server_raises_evaluation_error(self, tiny_network, sample_hw):
        with _dead_url() as url:
            remote = _fast_remote(tiny_network, url)
            with pytest.raises(EvaluationError, match="network failure"):
                remote.evaluate_layer(sample_hw, MAPPING, "gemm")

    def test_dead_server_health_raises_evaluation_error(self, tiny_network):
        with _dead_url() as url:
            remote = _fast_remote(tiny_network, url)
            with pytest.raises(EvaluationError):
                remote.health()

    def test_slow_server_times_out_as_evaluation_error(self, tiny_network, sample_hw):
        with _silent_url() as url:
            remote = _fast_remote(tiny_network, url, timeout_s=0.2)
            with pytest.raises(EvaluationError, match="network failure"):
                remote.evaluate_layer(sample_hw, MAPPING, "gemm")

    def test_malformed_json_reply_raises_evaluation_error(
        self, tiny_network, sample_hw
    ):
        with _scripted_url([(200, "definitely not json")]) as (url, _hits):
            remote = _fast_remote(tiny_network, url)
            with pytest.raises(EvaluationError, match="network failure"):
                remote.evaluate_layer(sample_hw, MAPPING, "gemm")

    def test_5xx_reply_raises_evaluation_error(self, tiny_network, sample_hw):
        with _scripted_url([(500, '{"error": "exploded"}')]) as (url, _hits):
            remote = _fast_remote(tiny_network, url)
            with pytest.raises(EvaluationError, match="service error 500"):
                remote.evaluate_layer(sample_hw, MAPPING, "gemm")


class TestNetworkRetries:
    def test_recovers_after_transient_500(self, tiny_network):
        ok = json.dumps({"status": "ok", "workload": tiny_network.name})
        script = [(500, '{"error": "warming up"}'), (500, '{"error": "still"}'),
                  (200, ok)]
        with _scripted_url(script) as (url, hits):
            remote = _fast_remote(tiny_network, url, max_network_retries=3)
            assert remote.health()["status"] == "ok"
            assert remote.num_network_retries == 2
            assert hits["count"] == 3

    def test_retries_exhausted_raises(self, tiny_network):
        with _scripted_url([(500, '{"error": "down"}')]) as (url, hits):
            remote = _fast_remote(tiny_network, url, max_network_retries=2)
            with pytest.raises(EvaluationError):
                remote.health()
            assert hits["count"] == 3  # initial try + 2 retries

    def test_4xx_is_not_retried(self, tiny_network, sample_hw):
        with _scripted_url([(400, '{"error": "bad layer"}')]) as (url, hits):
            remote = _fast_remote(tiny_network, url, max_network_retries=3)
            with pytest.raises(EvaluationError, match="rejected"):
                remote.evaluate_layer(sample_hw, MAPPING, "gemm")
            assert hits["count"] == 1
            assert remote.num_network_retries == 0

    def test_backoff_grows_and_caps(self, tiny_network):
        remote = _fast_remote(
            tiny_network,
            "http://127.0.0.1:1",
            backoff_base_s=0.1,
            backoff_max_s=0.25,
            jitter_fraction=0.0,
        )
        assert remote._backoff_delay(1) == pytest.approx(0.1)
        assert remote._backoff_delay(2) == pytest.approx(0.2)
        assert remote._backoff_delay(3) == pytest.approx(0.25)  # capped
        assert remote._backoff_delay(9) == pytest.approx(0.25)

    def test_jitter_stays_within_fraction(self, tiny_network):
        remote = _fast_remote(
            tiny_network,
            "http://127.0.0.1:1",
            backoff_base_s=0.1,
            backoff_max_s=1.0,
            jitter_fraction=0.5,
        )
        for _ in range(50):
            delay = remote._backoff_delay(1)
            assert 0.1 <= delay <= 0.15


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, tiny_network):
        with _dead_url() as url:
            remote = _fast_remote(
                tiny_network, url, breaker_threshold=2, breaker_cooldown_s=60.0
            )
            for _ in range(2):
                with pytest.raises(EvaluationError, match="network failure"):
                    remote.health()
            # breaker now open: fails fast without touching the network
            with pytest.raises(EvaluationError, match="circuit breaker open"):
                remote.health()
            assert remote.num_circuit_rejections == 1
            assert remote.metrics.counter_value("remote_circuit_opened_total") == 1

    def test_half_open_probe_recovers(self, tiny_network):
        ok = json.dumps({"status": "ok", "workload": tiny_network.name})
        script = [(500, '{"error": "down"}'), (200, ok)]
        with _scripted_url(script) as (url, _hits):
            remote = _fast_remote(
                tiny_network, url, breaker_threshold=1, breaker_cooldown_s=0.05
            )
            with pytest.raises(EvaluationError):
                remote.health()  # opens the breaker
            with pytest.raises(EvaluationError, match="circuit breaker open"):
                remote.health()
            time.sleep(0.1)  # cooldown elapses -> half-open
            assert remote.health()["status"] == "ok"  # probe succeeds, closes
            assert remote.health()["status"] == "ok"

    def test_semantic_rejection_does_not_trip_breaker(self, tiny_network, sample_hw):
        ok = json.dumps({"status": "ok", "workload": tiny_network.name})
        script = [(400, '{"error": "bad mapping"}')] * 3 + [(200, ok)]
        with _scripted_url(script) as (url, _hits):
            remote = _fast_remote(
                tiny_network, url, breaker_threshold=1, breaker_cooldown_s=60.0
            )
            for _ in range(3):
                with pytest.raises(EvaluationError, match="rejected"):
                    remote.evaluate_layer(sample_hw, MAPPING, "gemm")
            # breaker never opened: the next request reaches the service
            assert remote.health()["status"] == "ok"
            assert remote.num_circuit_rejections == 0


class TestServerErrorPaths:
    """Satellite (b): malformed payloads get JSON errors, never stack dumps."""

    def _post(self, url, path, payload, raw=None):
        data = raw if raw is not None else json.dumps(payload).encode()
        request = Request(f"{url}{path}", data=data,
                          headers={"Content-Type": "application/json"})
        import urllib.error

        try:
            with urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_invalid_json_body_is_400(self, server):
        status, payload = self._post(server.url, "/evaluate_layer", None,
                                     raw=b"{not json")
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_field_is_400(self, server, sample_hw):
        status, payload = self._post(
            server.url, "/evaluate_layer", {"hw": encode_object(sample_hw)}
        )
        assert status == 400
        assert "error" in payload

    def test_unexpected_dataclass_fields_are_500_json(self, server):
        bogus_hw = {"type": "SpatialHWConfig", "fields": {"bogus_field": 1}}
        status, payload = self._post(
            server.url,
            "/evaluate_layer",
            {"hw": bogus_hw,
             "mapping": encode_object(MAPPING),
             "layer": "gemm"},
        )
        assert status == 500
        assert payload["error"].startswith("internal error")

    def test_wrong_shape_payload_is_json_error(self, server):
        status, payload = self._post(
            server.url, "/evaluate_layer",
            {"hw": 42, "mapping": [], "layer": "gemm"},
        )
        assert status in (400, 500)
        assert "error" in payload

    def test_errors_counted_in_metrics(self, server):
        self._post(server.url, "/evaluate_layer", None, raw=b"{not json")
        with urlopen(f"{server.url}/metrics") as response:
            snapshot = json.loads(response.read())
        assert snapshot["metrics"]["counters"]["service_errors_total"] >= 1


class TestBatchEndpoint:
    def _items(self, mappings, layer="gemm"):
        return [{"mapping": encode_object(m), "layer": layer} for m in mappings]

    def test_batch_matches_single_layer_results(self, server, remote, tiny_network,
                                                sample_hw):
        local = MaestroEngine(tiny_network)
        requests = [
            (GemmMapping(4, 8, 4), "gemm"),
            (GemmMapping(8, 16, 8), "gemm"),
            (GemmMapping(4, 8, 4), "conv"),
        ]
        batched = remote.evaluate_layers(sample_hw, requests)
        for (mapping, layer), result in zip(requests, batched):
            expected = local.evaluate_layer(sample_hw, mapping, layer)
            assert result.latency_s == expected.latency_s
            assert result.energy_j == expected.energy_j

    def test_batch_uses_cache(self, server, remote, sample_hw):
        requests = [(GemmMapping(4, 8, 4), "gemm"), (GemmMapping(8, 16, 8), "gemm")]
        remote.evaluate_layers(sample_hw, requests)
        backend_queries = server.engine.num_queries
        results = remote.evaluate_layers(sample_hw, requests)
        assert server.engine.num_queries == backend_queries  # all cached
        assert remote.num_cache_hits == 2
        assert all(result.feasible for result in results)

    def test_batch_chunks_by_batch_size(self, server, tiny_network, sample_hw):
        remote = _fast_remote(tiny_network, server.url, batch_size=2)
        requests = [(GemmMapping(4, 8, 4, unroll=u), "gemm") for u in (1, 2, 4, 8)]
        before = remote.metrics.counter_value("remote_requests_total")
        remote.evaluate_layers(sample_hw, requests)
        assert remote.metrics.counter_value("remote_requests_total") - before == 2

    def test_batch_bad_item_raises_but_good_items_cached(self, server, tiny_network,
                                                         sample_hw):
        from repro.workloads import Gemm, Network

        # the client knows a layer the server does not: server-side rejection
        client_network = Network(
            name=tiny_network.name,
            layers=tiny_network.layers + (Gemm(name="ghost", m=8, n=8, k=8),),
            family="test",
            year=2023,
        )
        remote = _fast_remote(client_network, server.url)
        requests = [(GemmMapping(4, 8, 4), "gemm"), (GemmMapping(4, 8, 4), "ghost")]
        with pytest.raises(EvaluationError, match="ghost"):
            remote.evaluate_layers(sample_hw, requests)
        # the good item was still cached by the partial batch
        backend_queries = server.engine.num_queries
        remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        assert server.engine.num_queries == backend_queries
        assert remote.num_cache_hits == 1

    def test_batch_charges_clock_per_query(self, server, remote, sample_hw):
        requests = [(GemmMapping(4, 8, 4), "gemm"), (GemmMapping(8, 16, 8), "gemm")]
        remote.evaluate_layers(sample_hw, requests)
        assert remote.clock.now_s == pytest.approx(2 * remote.eval_cost_s)
        assert remote.num_queries == 2

    def test_server_side_per_item_errors(self, server, sample_hw):
        payload = {
            "hw": encode_object(sample_hw),
            "items": self._items([GemmMapping(4, 8, 4)], layer="gemm")
            + self._items([GemmMapping(4, 8, 4)], layer="missing"),
        }
        request = Request(f"{server.url}/evaluate_layers",
                          data=json.dumps(payload).encode(),
                          headers={"Content-Type": "application/json"})
        with urlopen(request) as response:
            reply = json.loads(response.read())
        assert reply["results"][0]["ok"] is True
        assert reply["results"][1]["ok"] is False
        assert "missing" in reply["results"][1]["error"]

    def test_items_must_be_list(self, server, sample_hw):
        import urllib.error

        request = Request(f"{server.url}/evaluate_layers",
                          data=json.dumps({"hw": encode_object(sample_hw),
                                           "items": "nope"}).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(request)
        assert exc_info.value.code == 400


class TestCandidatesEndpoint:
    """POST /evaluate_candidates: one request per candidate-batch chunk."""

    def _mappings(self, count):
        return [GemmMapping(4, 8, 4, unroll=u) for u in (1, 2, 4, 8)][:count]

    def test_remote_candidates_match_local(self, server, remote, tiny_network,
                                           sample_hw):
        local = MaestroEngine(tiny_network)
        mappings = self._mappings(4)
        batched = remote.evaluate_candidates(sample_hw, "gemm", mappings)
        for mapping, result in zip(mappings, batched):
            assert result == local.evaluate_layer(sample_hw, mapping, "gemm")

    def test_candidates_ship_as_chunked_requests(self, server, tiny_network,
                                                 sample_hw):
        remote = _fast_remote(tiny_network, server.url, batch_size=2)
        before = remote.metrics.counter_value("remote_requests_total")
        remote.evaluate_candidates(sample_hw, "gemm", self._mappings(4))
        # 4 misses / chunk size 2 -> exactly 2 POSTs
        assert remote.metrics.counter_value("remote_requests_total") - before == 2

    def test_candidates_cache_hits_stay_local(self, server, remote, sample_hw):
        mappings = self._mappings(3)
        remote.evaluate_candidates(sample_hw, "gemm", mappings)
        before = remote.metrics.counter_value("remote_requests_total")
        remote.evaluate_candidates(sample_hw, "gemm", mappings)
        assert remote.metrics.counter_value("remote_requests_total") == before
        assert remote.num_cache_hits == 3

    def test_server_vectorizes_candidate_batch(self, server, sample_hw):
        backend_batches = server.engine.num_batch_queries
        payload = {
            "hw": encode_object(sample_hw),
            "layer": "gemm",
            "mappings": [encode_object(m) for m in self._mappings(4)],
        }
        request = Request(f"{server.url}/evaluate_candidates",
                          data=json.dumps(payload).encode(),
                          headers={"Content-Type": "application/json"})
        with urlopen(request) as response:
            reply = json.loads(response.read())
        assert [entry["ok"] for entry in reply["results"]] == [True] * 4
        assert server.engine.num_batch_queries == backend_batches + 1

    def test_bad_item_isolated_per_entry(self, server, sample_hw):
        payload = {
            "hw": encode_object(sample_hw),
            "layer": "gemm",
            "mappings": [
                encode_object(GemmMapping(4, 8, 4)),
                {"type": "Mystery", "fields": {}},
            ],
        }
        request = Request(f"{server.url}/evaluate_candidates",
                          data=json.dumps(payload).encode(),
                          headers={"Content-Type": "application/json"})
        with urlopen(request) as response:
            reply = json.loads(response.read())
        assert reply["results"][0]["ok"] is True
        assert reply["results"][1]["ok"] is False
        assert "Mystery" in reply["results"][1]["error"]

    def test_mappings_must_be_list(self, server, sample_hw):
        import urllib.error

        request = Request(f"{server.url}/evaluate_candidates",
                          data=json.dumps({"hw": encode_object(sample_hw),
                                           "layer": "gemm",
                                           "mappings": "nope"}).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urlopen(request)
        assert exc_info.value.code == 400


class TestMetricsEndpoint:
    def test_engine_and_service_stats_exposed(self, server, remote, sample_hw):
        remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")  # cached
        with urlopen(f"{server.url}/metrics") as response:
            snapshot = json.loads(response.read())
        engine = snapshot["engine"]
        assert engine["engine"] == "MaestroEngine"
        assert engine["num_queries"] >= 1
        assert engine["cache_capacity"] is not None
        counters = snapshot["metrics"]["counters"]
        assert counters["service_requests_total[/evaluate_layer]"] >= 1
        histograms = snapshot["metrics"]["histograms"]
        assert histograms["service_request_seconds"]["count"] >= 1

    def test_remote_service_metrics_helper(self, remote, sample_hw):
        remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        snapshot = remote.service_metrics()
        assert "engine" in snapshot and "metrics" in snapshot

    def test_remote_stats_merge(self, remote, sample_hw):
        remote.evaluate_layer(sample_hw, GemmMapping(4, 8, 4), "gemm")
        stats = remote.stats()
        assert stats["engine"] == "RemotePPAEngine"
        assert stats["num_queries"] == 1
        assert stats["base_url"] == remote.base_url
        assert stats["num_network_retries"] == 0
        assert stats["num_circuit_rejections"] == 0


class TestClientValidation:
    def test_invalid_retry_count(self, tiny_network):
        with pytest.raises(EvaluationError):
            _fast_remote(tiny_network, "http://x", max_network_retries=-1)

    def test_invalid_breaker_threshold(self, tiny_network):
        with pytest.raises(EvaluationError):
            _fast_remote(tiny_network, "http://x", breaker_threshold=0)

    def test_invalid_batch_size(self, tiny_network):
        with pytest.raises(EvaluationError):
            _fast_remote(tiny_network, "http://x", batch_size=0)


class TestGracefulDrain:
    def _post_layer(self, url, hw):
        request = Request(
            f"{url}/evaluate_layer",
            data=json.dumps(
                {
                    "hw": encode_object(hw),
                    "mapping": encode_object(GemmMapping(4, 8, 4)),
                    "layer": "gemm",
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        return urlopen(request, timeout=5.0)

    def test_draining_returns_fast_503(self, tiny_network, sample_hw):
        import urllib.error

        with PPAServiceServer(MaestroEngine(tiny_network)) as server:
            server.begin_drain()
            assert server.draining
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self._post_layer(server.url, sample_hw)
            assert exc_info.value.code == 503
            assert json.loads(exc_info.value.read())["error"] == "service draining"
            assert (
                server.metrics.counter_value("service_drain_rejections_total")
                == 1
            )

    def test_drain_waits_for_inflight_requests(self, tiny_network, sample_hw):
        """An in-flight request completes; only then does drain() return."""
        started = threading.Event()

        class SlowEngine(MaestroEngine):
            def evaluate_layer(self, hw, mapping, layer_name):
                started.set()
                time.sleep(0.3)
                return super().evaluate_layer(hw, mapping, layer_name)

        with PPAServiceServer(SlowEngine(tiny_network)) as server:
            outcome = {}

            def inflight():
                with self._post_layer(server.url, sample_hw) as response:
                    outcome["payload"] = json.loads(response.read())

            worker = threading.Thread(target=inflight)
            worker.start()
            assert started.wait(timeout=5.0)
            server.begin_drain()
            assert server.inflight_requests >= 1
            assert server.drain(timeout_s=5.0)
            worker.join(timeout=5.0)
            assert outcome["payload"]["feasible"]
            assert server.inflight_requests == 0

    def test_stop_is_drain_then_shutdown(self, tiny_network):
        server = PPAServiceServer(MaestroEngine(tiny_network)).start()
        url = server.url
        server.stop()
        with pytest.raises(OSError):
            urlopen(f"{url}/health", timeout=0.5)

    def test_health_keeps_serving_during_drain(self, tiny_network):
        """GETs are rejected too -- a draining replica must read as down."""
        import urllib.error

        with PPAServiceServer(MaestroEngine(tiny_network)) as server:
            server.begin_drain()
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urlopen(f"{server.url}/health", timeout=2.0)
            assert exc_info.value.code == 503
