"""Objective scalarization: ParEGO / augmented Tchebycheff.

Two uses in UNICO (Section 3.2):

1. the acquisition layer scalarizes the objective space with a *random*
   weight vector per batch candidate (qParEGO batch diversity), and
2. the high-fidelity update rule computes the fidelity scalar

   ``v_ParEGO = max_j(w_j * y_j) + rho * Y^T W``  (Eq. 1, rho = 0.2)

   over *normalized* objectives with fixed importance weights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator

DEFAULT_RHO = 0.2


def parego_scalar(
    objectives: Sequence[float],
    weights: Sequence[float],
    rho: float = DEFAULT_RHO,
) -> float:
    """Eq. (1): augmented Tchebycheff fidelity scalar (lower is better).

    ``objectives`` should already be normalized to a shared scale; weights
    must be non-negative and sum to 1.
    """
    y = np.asarray(objectives, dtype=float)
    w = np.asarray(weights, dtype=float)
    if y.shape != w.shape:
        raise ValueError(f"objectives {y.shape} vs weights {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"weights must sum to 1, got {total}")
    if not np.all(np.isfinite(y)):
        return float("inf")
    return float(np.max(w * y) + rho * float(y @ w))


def parego_scalars(
    objective_matrix: np.ndarray,
    weights: Sequence[float],
    rho: float = DEFAULT_RHO,
) -> np.ndarray:
    """Vectorized :func:`parego_scalar` over rows of ``objective_matrix``."""
    matrix = np.asarray(objective_matrix, dtype=float)
    return np.array([parego_scalar(row, weights, rho) for row in matrix])


def sample_weight_vector(
    num_objectives: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniform Dirichlet(1) weights — the ParEGO random scalarization."""
    rng = as_generator(seed)
    raw = rng.dirichlet(np.ones(num_objectives))
    return raw


def uniform_weights(num_objectives: int) -> np.ndarray:
    """Equal importance weights."""
    return np.full(num_objectives, 1.0 / num_objectives)
