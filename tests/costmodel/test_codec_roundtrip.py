"""Randomized round-trip property tests for the service payload codec.

``decode(encode(x)) == x`` must hold for every transportable config type,
and the round-tripped object must hash/key identically — the remote
engine's cache correctness depends on it.
"""

import json

import pytest

from repro.camodel.mapping import AscendMapping, AscendMappingSpace
from repro.costmodel import MaestroEngine
from repro.costmodel.service import decode_object, encode_object
from repro.hw import ascend_design_space, edge_design_space
from repro.mapping import GemmMappingSpace
from repro.workloads import GemmShape

SEEDS = list(range(20))


def _json_roundtrip(payload):
    """The wire adds a JSON serialize/parse cycle; include it."""
    return json.loads(json.dumps(payload))


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_spatial_hw(self, seed):
        hw = edge_design_space().sample(seed)
        decoded = decode_object(_json_roundtrip(encode_object(hw)))
        assert decoded == hw

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ascend_hw(self, seed):
        hw = ascend_design_space().sample(seed)
        decoded = decode_object(_json_roundtrip(encode_object(hw)))
        assert decoded == hw

    @pytest.mark.parametrize("seed", SEEDS)
    def test_gemm_mapping(self, seed):
        space = GemmMappingSpace(GemmShape(m=48, n=64, k=96))
        mapping = space.sample(seed)
        decoded = decode_object(_json_roundtrip(encode_object(mapping)))
        assert decoded == mapping
        # tuple fields must come back as tuples, not JSON lists
        assert isinstance(decoded.loop_order, tuple)
        assert decoded.key() == mapping.key()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ascend_mapping(self, seed):
        space = AscendMappingSpace(GemmShape(m=48, n=64, k=96))
        mapping = space.sample(seed)
        decoded = decode_object(_json_roundtrip(encode_object(mapping)))
        assert decoded == mapping
        assert decoded.key() == mapping.key()

    @pytest.mark.parametrize("seed", SEEDS[:8])
    def test_hw_key_stable_across_the_wire(self, seed, tiny_network):
        engine = MaestroEngine(tiny_network)
        hw = edge_design_space().sample(seed)
        decoded = decode_object(_json_roundtrip(encode_object(hw)))
        assert engine.hw_key(decoded) == engine.hw_key(hw)
