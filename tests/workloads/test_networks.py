"""Tests for Network containers and the concrete network definitions."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    Conv2D,
    Gemm,
    Network,
    available_networks,
    get_network,
    merge_networks,
)


class TestNetwork:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            Network(name="empty", layers=())

    def test_rejects_duplicate_layer_names(self):
        layer = Gemm(name="same", m=2, n=2, k=2)
        with pytest.raises(WorkloadError):
            Network(name="dup", layers=(layer, layer))

    def test_counts(self, tiny_network):
        assert tiny_network.num_unique_layers == 3
        assert tiny_network.num_layers == 4  # gemm has count=2

    def test_total_macs(self, tiny_network):
        assert tiny_network.total_macs == sum(
            layer.total_macs for layer in tiny_network.layers
        )

    def test_layer_lookup(self, tiny_network):
        assert tiny_network.layer("gemm").count == 2
        with pytest.raises(WorkloadError):
            tiny_network.layer("nope")

    def test_gemms_cover_all_layers(self, tiny_network):
        pairs = tiny_network.gemms()
        assert len(pairs) == tiny_network.num_unique_layers

    def test_summary_keys(self, tiny_network):
        summary = tiny_network.summary()
        assert summary["unique_layers"] == 3
        assert summary["total_gmacs"] > 0


class TestMergeNetworks:
    def test_prefixes_names(self, tiny_network):
        merged = merge_networks("multi", [tiny_network, get_network("bert")])
        names = [layer.name for layer in merged.layers]
        assert any(name.startswith("tinynet.") for name in names)
        assert any(name.startswith("bert.") for name in names)

    def test_macs_add_up(self, tiny_network):
        bert = get_network("bert")
        merged = merge_networks("multi", [tiny_network, bert])
        assert merged.total_macs == tiny_network.total_macs + bert.total_macs

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            merge_networks("x", [])


class TestConcreteNetworks:
    def test_all_registered_networks_construct(self):
        for name in available_networks():
            network = get_network(name)
            assert network.total_macs > 0
            assert network.num_unique_layers >= 1

    @pytest.mark.parametrize(
        "name,min_gmacs,max_gmacs",
        [
            ("resnet", 3.0, 5.0),  # ResNet-50 is ~3.9 GMACs
            ("vgg", 14.0, 17.0),  # VGG-16 is ~15.5 GMACs
            ("mobilenet", 0.4, 0.8),  # MobileNetV1 is ~0.57 GMACs
            ("mobilenetv2", 0.2, 0.45),  # ~0.3 GMACs
            ("efficientnet_b0", 0.25, 0.55),  # ~0.39 GMACs
            ("densenet121", 2.3, 3.5),  # ~2.9 GMACs
        ],
    )
    def test_known_mac_counts(self, name, min_gmacs, max_gmacs):
        gmacs = get_network(name).total_macs / 1e9
        assert min_gmacs <= gmacs <= max_gmacs

    def test_bert_is_all_gemms(self):
        assert all(isinstance(l, Gemm) for l in get_network("bert").layers)

    def test_vit_has_patch_embed_conv(self):
        layers = get_network("vit").layers
        assert any(isinstance(l, Conv2D) for l in layers)

    def test_fsrcnn_resolution_scales_macs(self):
        small = get_network("fsrcnn_120x320").total_macs
        large = get_network("fsrcnn_240x640").total_macs
        assert large == pytest.approx(4 * small, rel=0.05)

    def test_validation_networks_are_newer(self):
        """Fig. 9's validation nets include newer architectures."""
        from repro.workloads import FIG9_TRAIN, FIG9_VALIDATION

        train_latest = max(get_network(n).year for n in FIG9_TRAIN)
        val_latest = max(get_network(n).year for n in FIG9_VALIDATION)
        assert val_latest > train_latest

    def test_unknown_network_raises(self):
        with pytest.raises(WorkloadError):
            get_network("alexnet-9000")

    def test_registry_is_cached(self):
        assert get_network("resnet") is get_network("resnet")


class TestExtraNetworks:
    def test_gpt2_decode_is_skinny_gemms(self):
        """Decoding processes few tokens: N dimension stays small except
        for the attention-score GEMM over the KV cache."""
        from repro.workloads import Gemm

        network = get_network("gpt2_decode")
        assert all(isinstance(l, Gemm) for l in network.layers)
        qkv = network.layer("qkv")
        assert qkv.n <= 64  # batch tokens, not sequence length

    def test_gpt2_kv_cache_in_attention(self):
        network = get_network("gpt2_decode")
        scores = network.layer("attn_scores")
        assert scores.n == 1024  # KV cache length

    def test_densenet_has_bottleneck_pattern(self):
        network = get_network("densenet121")
        names = [l.name for l in network.layers]
        assert any("bottleneck" in n for n in names)
        assert any("trans" in n for n in names)
