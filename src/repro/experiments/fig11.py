"""Figure 11: UNICO deployment on the Ascend-like commercial architecture.

Section 4.6: UNICO (N = 8, MaxIter = 30, b_max = 200) co-optimizes the
Ascend-like core under a 200 mm^2 area cap, per workload
(UNET, FSRCNN at three resolutions, DLEU).  The found architecture is
compared with the expert-selected default on *latency and power relative
reduction*, both evaluated by the cycle-accurate model with an individual
SW mapping search each.

Expected shape: positive latency savings on the super-resolution workloads
and a large average power saving; the discovered configuration tends to
rebalance the L0 buffers relative to the cube-derived defaults.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.camodel import AscendCAEngine
from repro.core.evaluation import SWSearchTrial
from repro.experiments.harness import run_method
from repro.experiments.presets import Preset, get_preset
from repro.hw import default_ascend_config
from repro.utils.records import RunRecord
from repro.workloads import FIG11_NETWORKS, get_network


def select_deployment_design(result, default_ppa):
    """Pick the Pareto design with the best worst-case ratio vs the default.

    Section 4.6's goal is "reducing both latency and power ... while not
    exceeding the area constraint", so the deployment decision minimizes
    ``max(latency / default_latency, power / default_power)`` over the
    found front — the design that improves the weaker of the two metrics
    the most.
    """
    best = None
    best_score = float("inf")
    for design in result.pareto.items:
        latency_ratio = design.ppa.latency_s / max(default_ppa.latency_s, 1e-30)
        power_ratio = design.ppa.power_w / max(default_ppa.power_w, 1e-30)
        score = max(latency_ratio, power_ratio)
        if score < best_score:
            best_score = score
            best = design
    return best


def evaluate_default(
    network_name: str, budget: int, seed: int = 0
) -> SWSearchTrial:
    """SW-mapping search for the expert default config on one workload."""
    network = get_network(network_name)
    engine = AscendCAEngine(network, noise_fraction=0.08)
    trial = SWSearchTrial(
        default_ascend_config(), network, engine, tool="fusion", seed=seed
    )
    trial.run(budget)
    return trial


def run_fig11(
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    networks: Sequence[str] = FIG11_NETWORKS,
) -> RunRecord:
    """The industrial deployment study."""
    preset = get_preset(preset) if isinstance(preset, str) else preset
    record = RunRecord("fig11")
    record.put("networks", list(networks))
    record.put("default_hw", str(default_ascend_config()))
    latency_savings = []
    power_savings = []
    for network_name in networks:
        child = record.child(network_name)
        default_trial = evaluate_default(
            network_name, budget=preset.ascend_budget, seed=seed
        )
        default_ppa = default_trial.best_ppa
        result = run_method("unico", "ascend", network_name, preset, seed=seed)
        best = select_deployment_design(result, default_ppa)
        child.put("default_latency_ms", default_ppa.latency_s * 1e3)
        child.put("default_power_mw", default_ppa.power_w * 1e3)
        child.put("search_cost_h", result.total_time_h)
        if best is None or not default_ppa.feasible:
            child.put("error", "no feasible design")
            continue
        child.put("unico_hw", str(best.hw))
        child.put("unico_latency_ms", best.ppa.latency_s * 1e3)
        child.put("unico_power_mw", best.ppa.power_w * 1e3)
        latency_saving = 100.0 * (
            default_ppa.latency_s - best.ppa.latency_s
        ) / max(default_ppa.latency_s, 1e-30)
        power_saving = 100.0 * (default_ppa.power_w - best.ppa.power_w) / max(
            default_ppa.power_w, 1e-30
        )
        child.put("latency_saving_pct", latency_saving)
        child.put("power_saving_pct", power_saving)
        latency_savings.append(latency_saving)
        power_savings.append(power_saving)
        default_hw = default_ascend_config()
        child.put(
            "buffer_rebalance",
            {
                "l0a_kb": {"default": default_hw.l0a_kb, "unico": best.hw.l0a_kb},
                "l0b_kb": {"default": default_hw.l0b_kb, "unico": best.hw.l0b_kb},
                "l0c_kb": {"default": default_hw.l0c_kb, "unico": best.hw.l0c_kb},
            },
        )
    if latency_savings:
        record.put("mean_latency_saving_pct", float(np.mean(latency_savings)))
        record.put("mean_power_saving_pct", float(np.mean(power_savings)))
    return record
