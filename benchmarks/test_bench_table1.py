"""Table 1: edge-device (power < 2 W) comparison of HASCO / NSGAII / UNICO.

Regenerates, per network, the paper's four columns — L(ms), P(mW), A(mm2)
and Cost(h) — at the ``bench`` preset.  Shape expectations (not absolute
values): UNICO's simulated search cost is substantially below HASCO's and
NSGAII's on average, and its selected design is competitive on PPA.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import format_table, run_table
from repro.workloads import TABLE12_NETWORKS

SEED = 0


@pytest.mark.benchmark(group="table1")
def test_table1_edge(benchmark, results_dir):
    record = run_once(
        benchmark, run_table, "edge", list(TABLE12_NETWORKS), "bench", seed=SEED
    )
    save_record(results_dir, "table1_edge", record)
    print("\n=== Table 1 (edge, power < 2 W), bench preset ===")
    print(format_table(record))

    unico_costs, hasco_costs, nsga_costs = [], [], []
    unico_wins = 0
    for network in TABLE12_NETWORKS:
        row = record.children[network]
        unico = row.children["unico"].metrics
        hasco = row.children["hasco"].metrics
        nsga = row.children["nsgaii"].metrics
        unico_costs.append(unico["cost_h"])
        hasco_costs.append(hasco["cost_h"])
        nsga_costs.append(nsga["cost_h"])
        unico_vec = np.array(
            [unico["latency_ms"], unico["power_mw"], unico["area_mm2"]]
        )
        hasco_vec = np.array(
            [hasco["latency_ms"], hasco["power_mw"], hasco["area_mm2"]]
        )
        # the paper's claim shape: UNICO's design may sacrifice one PPA
        # metric but gains on others, i.e. it is never dominated by HASCO's
        if np.any(unico_vec < hasco_vec * 1.001):
            unico_wins += 1

    # the paper's headline: noticeably smaller search cost across networks
    assert np.mean(unico_costs) < np.mean(hasco_costs)
    assert np.mean(unico_costs) < np.mean(nsga_costs)
    # and a non-dominated design on (nearly) every network
    assert unico_wins >= len(TABLE12_NETWORKS) - 1
