"""Tests for the SSE framing/parsing layer over the JSONL journal."""

import json

import pytest

from repro.hub.sse import (
    format_sse_comment,
    format_sse_event,
    journal_events_since,
    parse_sse_lines,
)
from repro.tracking.journal import EventJournal, read_events


def wire_to_lines(wire: bytes):
    """Decode wire bytes the way an SSE client iterates them."""
    return wire.decode("utf-8").split("\n")


class TestFraming:
    def test_full_frame(self):
        wire = format_sse_event('{"seq": 0}', event_id=27, event="run_start")
        assert wire == b'id: 27\nevent: run_start\ndata: {"seq": 0}\n\n'

    def test_data_only_frame(self):
        assert format_sse_event("x") == b"data: x\n\n"

    def test_newline_in_data_rejected(self):
        with pytest.raises(ValueError):
            format_sse_event("two\nlines")
        with pytest.raises(ValueError):
            format_sse_event("cr\rline")

    def test_comment_frame(self):
        assert format_sse_comment() == b": keepalive\n\n"
        assert format_sse_comment("hub draining") == b": hub draining\n\n"


class TestParser:
    def test_round_trip(self):
        wire = format_sse_event('{"seq": 1}', event_id=42, event="evaluation")
        (event,) = parse_sse_lines(wire_to_lines(wire))
        assert event.data == '{"seq": 1}'
        assert event.event_id == "42"
        assert event.event == "evaluation"

    def test_comments_dropped(self):
        wire = format_sse_comment() + format_sse_event("x", event_id=1)
        events = list(parse_sse_lines(wire_to_lines(wire)))
        assert [e.data for e in events] == ["x"]

    def test_multiple_events_in_order(self):
        wire = b"".join(
            format_sse_event(f"payload-{i}", event_id=i) for i in range(5)
        )
        events = list(parse_sse_lines(wire_to_lines(wire)))
        assert [e.data for e in events] == [f"payload-{i}" for i in range(5)]
        assert [e.event_id for e in events] == [str(i) for i in range(5)]

    def test_unterminated_final_event_not_dispatched(self):
        """A stream cut before the dispatching blank line must not leak a
        half-received event — mirrors the journal's partial-line rule."""
        wire = format_sse_event("complete", event_id=1)
        wire += b"id: 2\ndata: partial"  # no blank line
        events = list(parse_sse_lines(wire_to_lines(wire)))
        assert [e.data for e in events] == ["complete"]

    def test_unknown_fields_ignored(self):
        lines = ["retry: 1000", "data: x", ""]
        (event,) = parse_sse_lines(lines)
        assert event.data == "x"

    def test_crlf_line_endings(self):
        """The EventSource spec admits CRLF; a client splitting on \\n
        alone hands the parser lines with a trailing \\r — including the
        dispatching blank line, which must still dispatch."""
        wire = b'id: 7\r\nevent: evaluation\r\ndata: {"seq": 7}\r\n\r\n'
        (event,) = parse_sse_lines(wire.decode().split("\n"))
        assert event.data == '{"seq": 7}'
        assert event.event_id == "7"
        assert event.event == "evaluation"

    def test_crlf_strips_exactly_one_cr(self):
        # a literal \r at the end of the payload survives CRLF stripping
        (event,) = parse_sse_lines(["data: x\r\r", ""])
        assert event.data == "x\r"

    def test_multi_data_lines_joined_with_newline(self):
        lines = ["id: 3", "data: first", "data: second", "data:", ""]
        (event,) = parse_sse_lines(lines)
        assert event.data == "first\nsecond\n"
        assert event.event_id == "3"

    def test_multi_data_crlf_mix(self):
        wire = b"data: a\r\ndata: b\n\r\n"
        (event,) = parse_sse_lines(wire.decode().split("\n"))
        assert event.data == "a\nb"


class TestJournalEventsSince:
    def make_journal(self, tmp_path, count=4):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for i in range(count):
                journal.append("evaluation", {"iteration": i})
        return path

    def test_frames_are_verbatim_journal_lines(self, tmp_path):
        path = self.make_journal(tmp_path)
        frames, scan = journal_events_since(path, 0)
        raw = path.read_bytes()
        assert (
            b"\n".join(line for line, _end, _ev in frames) + b"\n" == raw
        )
        assert scan.valid_bytes == len(raw)
        for line, _end, event in frames:
            assert json.loads(line) == event

    def test_offsets_resume_exactly(self, tmp_path):
        path = self.make_journal(tmp_path, count=6)
        frames, _scan = journal_events_since(path, 0)
        cursor = frames[1][1]  # offset just past the second event
        rest, _ = journal_events_since(path, cursor)
        assert [ev["iteration"] for _l, _e, ev in rest] == [2, 3, 4, 5]

    def test_partial_line_not_streamed(self, tmp_path):
        path = self.make_journal(tmp_path, count=2)
        complete = read_events(path).valid_bytes
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "evalu')
        frames, scan = journal_events_since(path, complete)
        assert frames == []
        assert scan.valid_bytes == complete
        assert scan.truncated_tail
