"""Tests for the MAESTRO-like analytical model.

These check the *physics* the co-optimizer relies on: monotone effects of
hardware resources, reuse-driven traffic differences between loop orders,
capacity feasibility, and energy/area accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.maestro import analyze_gemm, evaluate_network, spatial_area_mm2
from repro.costmodel.technology import DEFAULT_TECHNOLOGY
from repro.hw import SpatialHWConfig
from repro.mapping import GemmMapping
from repro.workloads.layers import GemmShape


def _hw(**overrides) -> SpatialHWConfig:
    base = dict(
        pe_x=8, pe_y=8, l1_bytes=4096, l2_kb=512, noc_bw=64, dataflow="ws"
    )
    base.update(overrides)
    return SpatialHWConfig(**base)


SHAPE = GemmShape(m=64, n=256, k=128)
MAPPING = GemmMapping(tile_m=32, tile_n=32, tile_k=32)


class TestFeasibility:
    def test_feasible_case(self):
        result = analyze_gemm(_hw(), MAPPING, SHAPE)
        assert result.feasible
        assert np.isfinite(result.latency_s)

    def test_l1_overflow(self):
        result = analyze_gemm(_hw(l1_bytes=64), GemmMapping(64, 64, 128), SHAPE)
        assert not result.feasible
        assert "L1" in result.infeasible_reason

    def test_l2_overflow(self):
        result = analyze_gemm(
            _hw(l2_kb=8, l1_bytes=36864), GemmMapping(64, 256, 128), SHAPE
        )
        assert not result.feasible
        assert "L2" in result.infeasible_reason

    def test_minimal_tile_always_feasible(self):
        result = analyze_gemm(_hw(l1_bytes=64, l2_kb=8), GemmMapping(1, 1, 1), SHAPE)
        assert result.feasible


class TestMonotonicity:
    def test_more_pes_not_slower_compute(self):
        small = analyze_gemm(_hw(pe_x=4, pe_y=4), MAPPING, SHAPE)
        large = analyze_gemm(_hw(pe_x=16, pe_y=16), MAPPING, SHAPE)
        assert large.compute_cycles <= small.compute_cycles

    def test_more_noc_bw_not_slower(self):
        slow = analyze_gemm(_hw(noc_bw=64), MAPPING, SHAPE)
        fast = analyze_gemm(_hw(noc_bw=128), MAPPING, SHAPE)
        assert fast.noc_cycles <= slow.noc_cycles

    def test_tile_clipping_to_shape(self):
        oversized = GemmMapping(tile_m=4096, tile_n=4096, tile_k=4096)
        huge_hw = _hw(l1_bytes=10**7, l2_kb=10**6)
        result = analyze_gemm(huge_hw, oversized, SHAPE)
        exact = analyze_gemm(
            huge_hw, GemmMapping(SHAPE.m, SHAPE.n, SHAPE.k), SHAPE
        )
        assert result.latency_s == pytest.approx(exact.latency_s)


class TestReuseAnalysis:
    def test_single_tile_has_minimal_dram_traffic(self):
        """One tile covering the whole GEMM moves each operand once."""
        hw = _hw(l1_bytes=10**7, l2_kb=10**6)
        result = analyze_gemm(hw, GemmMapping(SHAPE.m, SHAPE.n, SHAPE.k), SHAPE)
        minimum = SHAPE.m * SHAPE.k + SHAPE.k * SHAPE.n + SHAPE.m * SHAPE.n
        assert result.dram_bytes == pytest.approx(minimum)

    def test_loop_order_changes_traffic(self):
        tiles = dict(tile_m=16, tile_n=16, tile_k=16)
        orders = {}
        for order in (("m", "n", "k"), ("k", "n", "m"), ("n", "k", "m")):
            result = analyze_gemm(
                _hw(), GemmMapping(loop_order=order, **tiles), SHAPE
            )
            orders[order] = result.dram_bytes
        assert len(set(orders.values())) > 1

    def test_k_innermost_avoids_partial_spills(self):
        """With the reduction innermost, C is written to DRAM exactly once."""
        k_inner = analyze_gemm(
            _hw(), GemmMapping(16, 16, 16, loop_order=("m", "n", "k")), SHAPE
        )
        k_outer = analyze_gemm(
            _hw(), GemmMapping(16, 16, 16, loop_order=("k", "m", "n")), SHAPE
        )
        assert k_inner.dram_bytes < k_outer.dram_bytes

    def test_reuse_penalty_increases_traffic(self):
        dense = analyze_gemm(_hw(), MAPPING, GemmShape(64, 256, 128))
        penalized = analyze_gemm(
            _hw(), MAPPING, GemmShape(64, 256, 128, reuse_penalty=0.35)
        )
        assert penalized.dram_bytes > dense.dram_bytes

    def test_dataflow_changes_noc_traffic(self):
        ws = analyze_gemm(_hw(dataflow="ws"), MAPPING, SHAPE)
        os_ = analyze_gemm(_hw(dataflow="os"), MAPPING, SHAPE)
        assert ws.noc_cycles != os_.noc_cycles


class TestEnergyAndArea:
    def test_energy_positive_and_finite(self):
        result = analyze_gemm(_hw(), MAPPING, SHAPE)
        assert 0 < result.energy_j < 1.0

    def test_energy_at_least_mac_energy(self):
        result = analyze_gemm(_hw(), MAPPING, SHAPE)
        assert result.energy_j >= SHAPE.macs * DEFAULT_TECHNOLOGY.mac_energy_j

    def test_area_grows_with_pes(self):
        assert spatial_area_mm2(_hw(pe_x=16, pe_y=16)) > spatial_area_mm2(
            _hw(pe_x=4, pe_y=4)
        )

    def test_area_grows_with_buffers(self):
        assert spatial_area_mm2(_hw(l2_kb=4096)) > spatial_area_mm2(_hw(l2_kb=64))

    def test_banking_costs_area(self):
        assert spatial_area_mm2(_hw(l2_banks=8)) > spatial_area_mm2(_hw(l2_banks=1))

    def test_realistic_area_range(self):
        """Edge-class configs land in the paper's few-mm^2 regime."""
        area = spatial_area_mm2(_hw())
        assert 0.3 < area < 10.0


class TestEvaluateNetwork:
    def test_aggregates_counts(self):
        shapes = {"a": (SHAPE, 2), "b": (GemmShape(32, 64, 32), 1)}
        mappings = {"a": MAPPING, "b": GemmMapping(16, 16, 16)}
        network_ppa = evaluate_network(_hw(), shapes, mappings)
        a = analyze_gemm(_hw(), MAPPING, SHAPE)
        assert network_ppa.feasible
        assert network_ppa.latency_s > 2 * a.latency_s  # includes layer b

    def test_missing_mapping_infeasible(self):
        shapes = {"a": (SHAPE, 1)}
        network_ppa = evaluate_network(_hw(), shapes, {})
        assert not network_ppa.feasible
        assert network_ppa.latency_s == float("inf")

    def test_power_includes_leakage(self):
        shapes = {"a": (SHAPE, 1)}
        network_ppa = evaluate_network(_hw(), shapes, {"a": MAPPING})
        leakage = DEFAULT_TECHNOLOGY.leakage_w_per_mm2 * network_ppa.area_mm2
        assert network_ppa.power_w > leakage

    def test_edp_property(self):
        shapes = {"a": (SHAPE, 1)}
        network_ppa = evaluate_network(_hw(), shapes, {"a": MAPPING})
        assert network_ppa.edp == pytest.approx(
            network_ppa.energy_j * network_ppa.latency_s
        )


@given(
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([16, 32, 64]),
)
@settings(max_examples=40)
def test_latency_bounded_below_by_ideal(tile_m, tile_n, tile_k):
    """No mapping beats the ideal compute bound MACs / (PEs * freq)."""
    hw = _hw(l1_bytes=10**6, l2_kb=10**5)
    shape = GemmShape(m=64, n=128, k=64)
    mapping = GemmMapping(tile_m, tile_n, tile_k)
    result = analyze_gemm(hw, mapping, shape)
    assert result.feasible
    ideal_s = shape.macs / (hw.num_pes * DEFAULT_TECHNOLOGY.frequency_hz)
    assert result.latency_s >= ideal_s * 0.99
