"""Figure 11: UNICO deployment on the Ascend-like commercial architecture.

UNICO co-optimizes the Ascend-like core per workload (UNET, FSRCNN at three
resolutions, DLEU) under the 200 mm^2 area cap, using the cycle-accurate
engine and the depth-first fusion mapping tool; the found architecture is
compared with the expert default.  Expected shape (paper): positive latency
savings on the super-resolution workloads (12.1% on UNET, 26.4% on
FSRCNN@120x320) and a large mean power saving (~32.3%), with the L0 buffer
split rebalanced away from the cube-derived defaults.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once, save_record
from repro.experiments import run_fig11
from repro.workloads import FIG11_NETWORKS

SEED = 0


@pytest.mark.benchmark(group="fig11")
def test_fig11_ascend_deployment(benchmark, results_dir):
    record = run_once(benchmark, run_fig11, "bench", seed=SEED)
    save_record(results_dir, "fig11", record)

    print("\n=== Fig. 11: Ascend-like deployment, bench preset ===")
    print(f"default: {record.get('default_hw')}")
    for network in FIG11_NETWORKS:
        child = record.children[network]
        if "error" in child.metrics:
            print(f"{network:<18s} ERROR: {child.get('error')}")
            continue
        print(
            f"{network:<18s} latency saving {child.get('latency_saving_pct'):+6.1f}%  "
            f"power saving {child.get('power_saving_pct'):+6.1f}%  "
            f"(search {child.get('search_cost_h'):.1f} simulated h)"
        )
        rebalance = child.get("buffer_rebalance")
        print(
            f"{'':<18s} L0A {rebalance['l0a_kb']['default']}→"
            f"{rebalance['l0a_kb']['unico']} KB, "
            f"L0B {rebalance['l0b_kb']['default']}→"
            f"{rebalance['l0b_kb']['unico']} KB, "
            f"L0C {rebalance['l0c_kb']['default']}→"
            f"{rebalance['l0c_kb']['unico']} KB"
        )
    print(
        f"mean latency saving {record.get('mean_latency_saving_pct'):+.1f}%, "
        f"mean power saving {record.get('mean_power_saving_pct'):+.1f}%"
    )

    # the paper's headline: clear average power saving over the default
    assert record.get("mean_power_saving_pct") > 0.0
    # and the co-search does not regress latency badly on average
    assert record.get("mean_latency_saving_pct") > -10.0
