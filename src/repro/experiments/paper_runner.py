"""One-shot reproduction driver: every table and figure in sequence.

``run_everything`` executes the full evaluation of Section 4 at a chosen
preset, writes each record as JSON into a results directory, and returns a
summary record.  The CLI exposes it as ``python -m repro reproduce``.

At the ``paper`` preset this is the multi-day full-scale run; ``bench``
finishes in minutes and is what the benchmark suite wraps piecewise.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.presets import Preset, get_preset
from repro.experiments.tables import run_table
from repro.utils.records import RunRecord
from repro.workloads import TABLE12_NETWORKS

EXPERIMENTS: Dict[str, Callable] = {
    "table1_edge": lambda preset, seed: run_table(
        "edge", list(TABLE12_NETWORKS), preset, seed=seed
    ),
    "table2_cloud": lambda preset, seed: run_table(
        "cloud", list(TABLE12_NETWORKS), preset, seed=seed
    ),
    "fig7a_edge": lambda preset, seed: run_fig7(
        "edge", list(TABLE12_NETWORKS), preset, seed=seed
    ),
    "fig7b_cloud": lambda preset, seed: run_fig7(
        "cloud", list(TABLE12_NETWORKS), preset, seed=seed
    ),
    "fig8": lambda preset, seed: run_fig8(preset, seed=seed),
    "fig9": lambda preset, seed: run_fig9(preset, seed=seed),
    "fig10": lambda preset, seed: run_fig10(preset, seed=seed),
    "fig11": lambda preset, seed: run_fig11(preset, seed=seed),
}


def run_everything(
    preset: Union[str, Preset] = "smoke",
    seed: int = 0,
    results_dir: Optional[pathlib.Path] = None,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RunRecord:
    """Run every (or a subset of) experiment(s); returns a summary record.

    Parameters
    ----------
    only:
        Restrict to these experiment names (keys of :data:`EXPERIMENTS`).
    results_dir:
        When given, each experiment's record is written there as JSON.
    progress:
        Optional callback invoked with a status line per experiment.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    selected: List[str] = list(only) if only else list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; available: {sorted(EXPERIMENTS)}"
        )
    summary = RunRecord("reproduction")
    summary.put("preset", preset_obj.name)
    summary.put("seed", seed)
    summary.put("experiments", selected)
    for name in selected:
        if progress:
            progress(f"running {name} (preset {preset_obj.name}) ...")
        record = EXPERIMENTS[name](preset_obj, seed)
        summary.children[name] = record
        if results_dir is not None:
            results_dir.mkdir(parents=True, exist_ok=True)
            (results_dir / f"{name}.json").write_text(record.to_json())
            if progress:
                progress(f"  wrote {results_dir / f'{name}.json'}")
    return summary
