"""Lowering scheduled loop nests onto the GEMMCore intrinsic.

A scheduled GEMM nest lowers to a
:class:`~repro.mapping.gemm_mapping.GemmMapping` when it matches the
intrinsic's shape contract:

* exactly two spatially bound axes, one on each PE-array dimension, over
  two *different* GEMM dims drawn from {m, n} (the intrinsic computes an
  output tile in parallel);
* the tile each DRAM-level iteration covers is the product of all
  non-outermost axes per dim (outermost axis per dim = the inter-tile
  loop);
* the inter-tile loop order is the relative order of those outermost axes.

:func:`lower_to_mapping` performs the match and returns the mapping;
:func:`raise_from_mapping` is the inverse — it reconstructs a canonical
scheduled nest from a mapping, which makes lowering round-trippable and
lets tests verify the two representations agree.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import MappingError
from repro.ir.loopnest import Loop, LoopNest, gemm_domain
from repro.mapping.gemm_mapping import GemmMapping, UNROLL_CHOICES


def _tile_sizes(nest: LoopNest) -> Dict[str, int]:
    """Per-dim tile = product of extents of all but the outermost axis."""
    tiles: Dict[str, int] = {}
    for dim, _size in nest.domain:
        axes = [l for l in nest.loops if l.dim == dim]
        if not axes:
            raise MappingError(f"nest has no axis over dim {dim!r}")
        tile = 1
        for axis in axes[1:]:
            tile *= axis.extent
        tiles[dim] = tile
    return tiles


def _outer_order(nest: LoopNest) -> Tuple[str, str, str]:
    """Relative order of each dim's outermost axis."""
    firsts: List[Tuple[int, str]] = []
    seen = set()
    for position, loop in enumerate(nest.loops):
        if loop.dim not in seen:
            seen.add(loop.dim)
            firsts.append((position, loop.dim))
    firsts.sort()
    order = tuple(dim for _pos, dim in firsts)
    if sorted(order) != ["k", "m", "n"]:
        raise MappingError(f"nest does not cover the GEMM dims: {order}")
    return order  # type: ignore[return-value]


def lower_to_mapping(nest: LoopNest) -> GemmMapping:
    """Lower a scheduled GEMM nest to a :class:`GemmMapping`.

    Raises :class:`MappingError` when the nest does not satisfy the
    intrinsic's contract (see module docstring).
    """
    if not nest.is_equivalent_to_domain():
        raise MappingError("nest does not preserve the iteration domain")
    spatial = nest.spatial_loops()
    if len(spatial) != 2:
        raise MappingError(
            f"GEMMCore needs exactly 2 spatial axes, found {len(spatial)}"
        )
    bindings = {loop.binding: loop for loop in spatial}
    if set(bindings) != {"spatial_x", "spatial_y"}:
        raise MappingError("need one spatial_x and one spatial_y axis")
    x_dim = bindings["spatial_x"].dim
    y_dim = bindings["spatial_y"].dim
    if {x_dim, y_dim} != {"m", "n"}:
        raise MappingError(
            f"spatial axes must cover m and n, got {x_dim!r}, {y_dim!r}"
        )
    spatial_mode = "mn" if x_dim == "m" else "nm"

    unrolled = [l for l in nest.loops if l.binding == "unroll"]
    unroll = 1
    if unrolled:
        if len(unrolled) > 1:
            raise MappingError("at most one unrolled axis is supported")
        if unrolled[0].dim != "k":
            raise MappingError("only the reduction axis may be unrolled")
        unroll = unrolled[0].extent
        if unroll not in UNROLL_CHOICES:
            raise MappingError(
                f"unroll extent {unroll} not a supported factor {UNROLL_CHOICES}"
            )

    tiles = _tile_sizes(nest)
    return GemmMapping(
        tile_m=tiles["m"],
        tile_n=tiles["n"],
        tile_k=tiles["k"],
        loop_order=_outer_order(nest),
        spatial=spatial_mode,
        unroll=unroll,
    )


def raise_from_mapping(mapping: GemmMapping, m: int, n: int, k: int) -> LoopNest:
    """Reconstruct the canonical scheduled nest of a mapping.

    The inverse of :func:`lower_to_mapping` up to axis naming: inter-tile
    loops in the mapping's order, then the spatial pair, then the per-PE
    temporal remainder with the unroll split on k.
    """
    if m % mapping.tile_m or n % mapping.tile_n or k % mapping.tile_k:
        raise MappingError(
            "mapping tiles must divide the problem "
            f"({m}, {n}, {k}) % {(mapping.tile_m, mapping.tile_n, mapping.tile_k)}"
        )
    trips = {
        "m": m // mapping.tile_m,
        "n": n // mapping.tile_n,
        "k": k // mapping.tile_k,
    }
    tiles = {"m": mapping.tile_m, "n": mapping.tile_n, "k": mapping.tile_k}
    loops: List[Loop] = [
        Loop(dim=dim, name=f"{dim}.0", extent=trips[dim])
        for dim in mapping.loop_order
    ]
    x_dim, y_dim = ("m", "n") if mapping.spatial == "mn" else ("n", "m")
    loops.append(Loop(dim=x_dim, name=f"{x_dim}.1", extent=tiles[x_dim], binding="spatial_x"))
    loops.append(Loop(dim=y_dim, name=f"{y_dim}.1", extent=tiles[y_dim], binding="spatial_y"))
    k_tile = tiles["k"]
    unroll = mapping.unroll if mapping.unroll <= k_tile and k_tile % mapping.unroll == 0 else 1
    if unroll > 1:
        loops.append(Loop(dim="k", name="k.1", extent=k_tile // unroll))
        loops.append(Loop(dim="k", name="k.2", extent=unroll, binding="unroll"))
    else:
        loops.append(Loop(dim="k", name="k.1", extent=k_tile))
    return LoopNest(loops=tuple(loops), domain=gemm_domain(m, n, k))
