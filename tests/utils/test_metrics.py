"""Tests for the process-local observability primitives."""

import json
import threading

import pytest

from repro.utils.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("queries")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative(self):
        counter = Counter("queries")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_thread_safe_under_contention(self):
        counter = Counter("queries")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestHistogram:
    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)

    def test_observe_tracks_exact_summaries(self):
        hist = Histogram("lat", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(2.55)
        assert hist.mean == pytest.approx(0.85)

    def test_bucket_assignment_including_overflow(self):
        hist = Histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.05)  # <= 0.1
        hist.observe(0.1)   # boundary counts in its bucket
        hist.observe(0.5)   # <= 1.0
        hist.observe(5.0)   # overflow
        snap = hist.snapshot()
        assert snap["bucket_counts"] == [2, 1, 1]
        assert snap["min"] == 0.05
        assert snap["max"] == 5.0

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1.0, 0.1))
        with pytest.raises(ValueError):
            Histogram("lat", bounds=())

    def test_quantiles(self):
        hist = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 8.0
        # the median falls in the second bucket -> its upper bound
        assert hist.quantile(0.5) == 2.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_empty(self):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_quantile_empty_at_extremes(self):
        hist = Histogram("lat")
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_quantile_all_overflow(self):
        """Every observation above the last bound: quantiles hit the max."""
        hist = Histogram("lat", bounds=(0.1, 1.0))
        for value in (5.0, 7.0, 9.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 5.0
        assert hist.quantile(0.5) == 9.0  # overflow bucket resolves to max
        assert hist.quantile(1.0) == 9.0

    def test_quantile_single_observation(self):
        hist = Histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.5)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(0.5) == pytest.approx(0.5)
        assert hist.quantile(1.0) == 0.5

    def test_reset_clears_in_place(self):
        hist = Histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.quantile(0.5) == 0.0
        snap = hist.snapshot()
        assert snap["bucket_counts"] == [0, 0, 0]
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        hist.observe(0.5)  # still usable after reset
        assert hist.count == 1

    def test_timer_records_elapsed(self):
        hist = Histogram("lat")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sum >= 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.histogram("a")
        registry.histogram("b")
        with pytest.raises(ValueError):
            registry.counter("b")

    def test_counter_value_without_creation(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never_seen") == 0.0
        registry.counter("seen").inc(3)
        assert registry.counter_value("seen") == 3.0

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(2)
        registry.histogram("lat", bounds=(0.1, 1.0)).observe(0.2)
        snap = registry.snapshot()
        json.dumps(snap)
        assert snap["counters"] == {"queries": 2.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(2)
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render_text()
        assert "queries 2" in text
        assert "lat_count 2" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == ""

    def test_reset_clears_values_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        counter.inc(5)
        hist.observe(0.5)
        registry.reset()
        # held references stay live and were reset in place
        assert counter.value == 0.0
        assert hist.count == 0
        # instruments remain registered (same objects returned)
        assert registry.counter("queries") is counter
        assert registry.histogram("lat") is hist
        counter.inc()
        assert registry.counter_value("queries") == 1.0

    def test_counter_reset(self):
        counter = Counter("queries")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0
        counter.inc()
        assert counter.value == 1.0

    def test_reset_empty_registry_is_noop(self):
        MetricsRegistry().reset()
