"""Training-array extraction from journaled ``engine_sample`` events.

A tracked run whose engine had a sample sink installed (``repro run
--record-samples``) journals one ``engine_sample`` event per analytical
cost-model computation: the hardware variables, the mapping key, the
layer shape, and the exact PPA the engine returned.  This module replays
those journals — across a whole :class:`~repro.tracking.store.RunStore`
or a hand-picked set of runs — into the fixed-width NumPy arrays the
:class:`~repro.learned.model.LearnedCostModel` trains on.

Extraction is deliberately forgiving, mirroring the journal's own crash
discipline: truncated tails stop a file early but never fail the build,
events with unknown schema versions or malformed payloads are counted
and skipped, and duplicate candidates (the same (hw, layer, mapping,
shape) evaluated by several runs) are deduplicated so re-running a seed
does not double-weight its samples.  Splitting is by run id, so
validation measures transfer to unseen searches rather than memorization
of a search's own trajectory.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.learned.features import FEATURE_VERSION, feature_dim, featurize
from repro.mapping.gemm_mapping import GemmMapping
from repro.tracking.journal import read_events
from repro.tracking.store import JOURNAL_NAME, RunHandle, RunStore
from repro.workloads.layers import GemmShape

#: Highest ``engine_sample`` payload schema this extractor understands.
SAMPLE_SCHEMA = 1


@dataclass
class LearnedDataset:
    """Feature/target arrays distilled from one or more run journals."""

    x: np.ndarray
    latency_s: np.ndarray
    energy_j: np.ndarray
    feasible: np.ndarray
    run_ids: List[str]
    #: extraction bookkeeping: events seen/deduped/skipped, damaged files
    stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: Sequence[int]) -> "LearnedDataset":
        indices = np.asarray(indices, dtype=np.intp)
        return LearnedDataset(
            x=self.x[indices],
            latency_s=self.latency_s[indices],
            energy_j=self.energy_j[indices],
            feasible=self.feasible[indices],
            run_ids=[self.run_ids[i] for i in indices],
            stats=dict(self.stats),
        )


def _journal_sources(
    source: Union[RunStore, RunHandle, str, pathlib.Path, Iterable],
) -> List[Tuple[str, pathlib.Path]]:
    """Normalize any accepted source into ``(run_id, journal_path)`` pairs."""
    if isinstance(source, RunStore):
        return [
            (handle.run_id, handle.journal_path)
            for handle in source.list_runs()
            if handle.journal_path.exists()
        ]
    if isinstance(source, RunHandle):
        return [(source.run_id, source.journal_path)]
    if isinstance(source, (str, pathlib.Path)):
        path = pathlib.Path(source)
        if path.is_file():
            return [(path.parent.name or path.stem, path)]
        if (path / JOURNAL_NAME).exists():
            return [(path.name, path / JOURNAL_NAME)]
        if path.is_dir():
            return _journal_sources(RunStore(path))
        raise ConfigurationError(f"no runs or journal found at {path}")
    pairs: List[Tuple[str, pathlib.Path]] = []
    for item in source:
        pairs.extend(_journal_sources(item))
    return pairs


def _decode_sample(event: Dict):
    """Decode one ``engine_sample`` payload; returns None when unusable."""
    if int(event.get("sample_schema", 1)) > SAMPLE_SCHEMA:
        return None
    try:
        hw = SimpleNamespace(**event["hw"])
        tile_m, tile_n, tile_k, order, spatial, unroll = event["mapping"]
        mapping = GemmMapping(
            tile_m=int(tile_m),
            tile_n=int(tile_n),
            tile_k=int(tile_k),
            loop_order=tuple(order),
            spatial=str(spatial),
            unroll=int(unroll),
        )
        m, n, k, reuse = event["shape"]
        shape = GemmShape(m=int(m), n=int(n), k=int(k), reuse_penalty=float(reuse))
        feasible = bool(event["feasible"])
        latency = event.get("latency_s")
        energy = event.get("energy_j")
        latency = float(latency) if latency is not None else float("inf")
        energy = float(energy) if energy is not None else float("inf")
    except (KeyError, TypeError, ValueError, ReproError):
        return None
    dedup_key = (
        tuple(sorted(event["hw"].items())),
        str(event.get("layer", "")),
        mapping.key(),
        (shape.m, shape.n, shape.k, shape.reuse_penalty),
    )
    return hw, mapping, shape, latency, energy, feasible, dedup_key


def build_dataset(
    source: Union[RunStore, RunHandle, str, pathlib.Path, Iterable],
    dedup: bool = True,
) -> LearnedDataset:
    """Replay ``engine_sample`` events from ``source`` into arrays.

    ``source`` may be a :class:`RunStore`, a runs-root path, a single run
    directory, a bare ``journal.jsonl`` path, or any iterable of those.
    """
    sources = _journal_sources(source)
    stats = {
        "journals": len(sources),
        "events": 0,
        "duplicates": 0,
        "skipped": 0,
        "truncated_journals": 0,
    }
    rows: List[np.ndarray] = []
    latency: List[float] = []
    energy: List[float] = []
    feasible: List[bool] = []
    run_ids: List[str] = []
    seen: set = set()
    for run_id, journal_path in sources:
        scan = read_events(journal_path)
        if scan.truncated_tail:
            stats["truncated_journals"] += 1
        for event in scan.events:
            if event.get("type") != "engine_sample":
                continue
            stats["events"] += 1
            decoded = _decode_sample(event)
            if decoded is None:
                stats["skipped"] += 1
                continue
            hw, mapping, shape, lat, eng, feas, dedup_key = decoded
            if dedup:
                if dedup_key in seen:
                    stats["duplicates"] += 1
                    continue
                seen.add(dedup_key)
            try:
                rows.append(featurize(hw, mapping, shape))
            except (AttributeError, TypeError, ValueError):
                stats["skipped"] += 1
                if dedup:
                    seen.discard(dedup_key)
                continue
            latency.append(lat)
            energy.append(eng)
            feasible.append(feas)
            run_ids.append(run_id)
    x = (
        np.vstack(rows)
        if rows
        else np.empty((0, feature_dim()), dtype=np.float64)
    )
    return LearnedDataset(
        x=x,
        latency_s=np.asarray(latency, dtype=np.float64),
        energy_j=np.asarray(energy, dtype=np.float64),
        feasible=np.asarray(feasible, dtype=bool),
        run_ids=run_ids,
        stats=stats,
    )


def split_by_run(
    dataset: LearnedDataset,
    val_fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[LearnedDataset, LearnedDataset]:
    """Split into (train, val) keeping whole runs on one side.

    With fewer than two distinct runs there is no run boundary to split
    on, so the fallback is a seeded row split (still deterministic).
    """
    if not 0.0 <= val_fraction < 1.0:
        raise ConfigurationError(
            f"val_fraction must be in [0, 1), got {val_fraction}"
        )
    count = len(dataset)
    rng = np.random.default_rng(seed)
    unique_runs = sorted(set(dataset.run_ids))
    if len(unique_runs) >= 2 and val_fraction > 0.0:
        order = list(rng.permutation(len(unique_runs)))
        target = val_fraction * count
        val_runs: set = set()
        val_rows = 0
        for index in order:
            if len(val_runs) >= len(unique_runs) - 1 or val_rows >= target:
                break
            run = unique_runs[index]
            val_runs.add(run)
            val_rows += sum(1 for rid in dataset.run_ids if rid == run)
        val_mask = np.asarray([rid in val_runs for rid in dataset.run_ids])
    else:
        val_mask = np.zeros(count, dtype=bool)
        n_val = int(round(val_fraction * count))
        if n_val:
            val_mask[rng.permutation(count)[:n_val]] = True
    return (
        dataset.subset(np.flatnonzero(~val_mask)),
        dataset.subset(np.flatnonzero(val_mask)),
    )


__all__ = [
    "FEATURE_VERSION",
    "SAMPLE_SCHEMA",
    "LearnedDataset",
    "build_dataset",
    "split_by_run",
]
