"""Multi-objective Bayesian optimization batch sampler (qParEGO style).

Section 3.2: "we sample a batch of N hardware candidates.  Each HW is
sampled with an acquisition function that balances exploration and
exploitation".  This module implements that step:

1. normalize the training objectives (whatever subset the high-fidelity
   update rule admitted) to [0, 1],
2. fit GP hyperparameters once per iteration on a uniform scalarization,
3. for each of the N batch slots, draw a random ParEGO weight vector,
   scalarize the training objectives, refit the GP solve (shared
   hyperparameters), and maximize Expected Improvement over a candidate
   pool of random configurations plus mutations of incumbent Pareto
   members,
4. de-duplicate against observed and already-selected configurations.

Random weight vectors give the batch its diversity (each slot optimizes a
different trade-off direction), the EI gives each slot its exploration/
exploitation balance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hw.space import DiscreteDesignSpace
from repro.obs.trace import NULL_TRACER
from repro.optim.acquisition import expected_improvement
from repro.optim.gp import GaussianProcess, GPHyperparameters
from repro.optim.scalarize import parego_scalars, sample_weight_vector, uniform_weights
from repro.utils.rng import SeedLike, as_generator


class MOBOSampler:
    """Batched hardware sampler guided by a GP surrogate."""

    def __init__(
        self,
        space: DiscreteDesignSpace,
        num_objectives: int,
        seed: SeedLike = None,
        kernel: str = "matern52",
        rho: float = 0.2,
        pool_size: int = 512,
        min_observations: int = 8,
    ):
        self.space = space
        self.num_objectives = num_objectives
        self.rng = as_generator(seed)
        self.kernel = kernel
        self.rho = rho
        self.pool_size = pool_size
        self.min_observations = min_observations
        self._shared_hyper: Optional[GPHyperparameters] = None
        #: span tracer; a traced co-optimizer installs its own at run start
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ pools
    def _candidate_pool(
        self,
        exclude_keys: Set[Tuple],
        incumbents: Sequence,
    ) -> List:
        """Random configs + local mutations of incumbents, de-duplicated."""
        pool: List = []
        keys = set(exclude_keys)
        attempts = 0
        target_random = self.pool_size
        while len(pool) < target_random and attempts < 20 * target_random:
            candidate = self.space.sample(self.rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                pool.append(candidate)
            attempts += 1
        for incumbent in incumbents:
            for _ in range(4):
                candidate = self.space.mutate(incumbent, self.rng, num_moves=1)
                key = self.space.config_key(candidate)
                if key not in keys:
                    keys.add(key)
                    pool.append(candidate)
        return pool

    # ---------------------------------------------------------------- suggest
    def suggest_batch(
        self,
        train_configs: Sequence,
        train_objectives: np.ndarray,
        batch_size: int,
        incumbents: Sequence = (),
    ) -> List:
        """Propose ``batch_size`` new configurations.

        Parameters
        ----------
        train_configs / train_objectives:
            The (high-fidelity) surrogate training set; objectives must be
            normalized to a shared scale and finite.
        incumbents:
            Current Pareto-front configurations, used to bias part of the
            candidate pool toward local refinement.
        """
        observed_keys = {self.space.config_key(c) for c in train_configs}
        if len(train_configs) < self.min_observations:
            return self._random_batch(batch_size, observed_keys)

        x_train = np.vstack([self.space.encode(c) for c in train_configs])
        y_train = np.asarray(train_objectives, dtype=float)
        if y_train.ndim != 2 or y_train.shape[1] != self.num_objectives:
            raise ValueError(
                f"expected objectives of shape (n, {self.num_objectives}), "
                f"got {y_train.shape}"
            )

        # one marginal-likelihood optimization per iteration, shared across slots
        with self.tracer.span("gp_fit", train_size=len(train_configs)):
            uniform_scalar = parego_scalars(
                y_train, uniform_weights(self.num_objectives), self.rho
            )
            shared_gp = GaussianProcess(self.kernel)
            shared_gp.fit(
                x_train,
                uniform_scalar,
                seed=int(self.rng.integers(0, 2**31)),
                num_restarts=1,
            )
            self._shared_hyper = shared_gp.hyper

        batch: List = []
        batch_keys: Set[Tuple] = set()
        for _slot in range(batch_size):
            # one ParEGO scalarization + GP refit + EI maximization per slot
            with self.tracer.span("acquisition", slot=_slot):
                weights = sample_weight_vector(self.num_objectives, self.rng)
                scalar = parego_scalars(y_train, weights, self.rho)
                gp = GaussianProcess(self.kernel)
                gp.fit(x_train, scalar, hyper=self._shared_hyper)
                pool = self._candidate_pool(
                    observed_keys | batch_keys, incumbents
                )
                if not pool:
                    break
                x_pool = np.vstack([self.space.encode(c) for c in pool])
                mean, std = gp.predict(x_pool)
                ei = expected_improvement(mean, std, best=float(scalar.min()))
                chosen = pool[int(np.argmax(ei))]
                batch.append(chosen)
                batch_keys.add(self.space.config_key(chosen))
        # top up with randoms if pools were exhausted
        if len(batch) < batch_size:
            batch.extend(
                self._random_batch(
                    batch_size - len(batch), observed_keys | batch_keys
                )
            )
        return batch

    def _random_batch(self, count: int, exclude_keys: Set[Tuple]) -> List:
        batch: List = []
        keys = set(exclude_keys)
        attempts = 0
        while len(batch) < count and attempts < max(1000, 100 * count):
            candidate = self.space.sample(self.rng)
            key = self.space.config_key(candidate)
            if key not in keys:
                keys.add(key)
                batch.append(candidate)
            attempts += 1
        return batch

    def predict_objectives(
        self,
        train_configs: Sequence,
        train_objectives: np.ndarray,
        query_configs: Sequence,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std per objective at ``query_configs``.

        Fits one GP per objective column (shared hyperparameters when
        available); used for surrogate-quality diagnostics and tests.
        """
        x_train = np.vstack([self.space.encode(c) for c in train_configs])
        y_train = np.asarray(train_objectives, dtype=float)
        x_query = np.vstack([self.space.encode(c) for c in query_configs])
        means = np.zeros((x_query.shape[0], self.num_objectives))
        stds = np.zeros_like(means)
        for j in range(self.num_objectives):
            gp = GaussianProcess(self.kernel)
            gp.fit(
                x_train,
                y_train[:, j],
                seed=j,
                num_restarts=1,
            )
            means[:, j], stds[:, j] = gp.predict(x_query)
        return means, stds
