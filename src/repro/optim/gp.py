"""Gaussian-process regression (the MOBO surrogate), from scratch.

A standard zero-mean GP with ARD kernels, Cholesky solves, and marginal-
likelihood hyperparameter fitting via multi-start L-BFGS-B on log-scale
parameters.  Inputs are the ``[0, 1]^d`` ordinal encodings produced by the
hardware design spaces; outputs are normalized objective values.

Only what MOBO needs is implemented — ``fit``, ``predict`` (mean/std) and
``sample_posterior`` for Thompson-flavoured batch diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.errors import SurrogateError

_JITTER = 1e-8


def rbf_kernel(
    x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray, variance: float
) -> np.ndarray:
    """ARD squared-exponential kernel matrix."""
    scaled1 = x1 / lengthscales
    scaled2 = x2 / lengthscales
    sq_dist = (
        np.sum(scaled1**2, axis=1)[:, None]
        + np.sum(scaled2**2, axis=1)[None, :]
        - 2.0 * scaled1 @ scaled2.T
    )
    return variance * np.exp(-0.5 * np.maximum(sq_dist, 0.0))


def matern52_kernel(
    x1: np.ndarray, x2: np.ndarray, lengthscales: np.ndarray, variance: float
) -> np.ndarray:
    """ARD Matérn-5/2 kernel matrix."""
    scaled1 = x1 / lengthscales
    scaled2 = x2 / lengthscales
    sq_dist = (
        np.sum(scaled1**2, axis=1)[:, None]
        + np.sum(scaled2**2, axis=1)[None, :]
        - 2.0 * scaled1 @ scaled2.T
    )
    dist = np.sqrt(np.maximum(sq_dist, 0.0))
    sqrt5 = np.sqrt(5.0)
    return (
        variance
        * (1.0 + sqrt5 * dist + (5.0 / 3.0) * dist**2)
        * np.exp(-sqrt5 * dist)
    )


_KERNELS = {"rbf": rbf_kernel, "matern52": matern52_kernel}


@dataclass
class GPHyperparameters:
    lengthscales: np.ndarray
    variance: float
    noise: float


class GaussianProcess:
    """Zero-mean GP regressor with y-standardization."""

    def __init__(self, kernel: str = "matern52", noise_floor: float = 1e-6):
        if kernel not in _KERNELS:
            raise SurrogateError(f"unknown kernel {kernel!r}; use {sorted(_KERNELS)}")
        self.kernel_name = kernel
        self.kernel = _KERNELS[kernel]
        self.noise_floor = noise_floor
        self.hyper: Optional[GPHyperparameters] = None
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    def _neg_log_marginal(
        self, log_params: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> float:
        d = x.shape[1]
        lengthscales = np.exp(log_params[:d])
        variance = np.exp(log_params[d])
        noise = np.exp(log_params[d + 1]) + self.noise_floor
        try:
            k = self.kernel(x, x, lengthscales, variance)
            k[np.diag_indices_from(k)] += noise + _JITTER
            chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            return 1e12
        alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, y))
        nll = (
            0.5 * float(y @ alpha)
            + float(np.sum(np.log(np.diag(chol))))
            + 0.5 * len(y) * np.log(2 * np.pi)
        )
        return nll if np.isfinite(nll) else 1e12

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        num_restarts: int = 2,
        seed: int = 0,
        optimize_hyper: bool = True,
        hyper: Optional[GPHyperparameters] = None,
    ) -> "GaussianProcess":
        """Fit hyperparameters (optionally) and precompute the solve.

        When ``hyper`` is given, the hyperparameters are taken as-is (used
        to share one marginal-likelihood optimization across the per-slot
        scalarized GPs of the batch sampler).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise SurrogateError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if x.shape[0] < 1:
            raise SurrogateError("cannot fit a GP on zero observations")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise SurrogateError("GP training data must be finite")
        self._x = x
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        y_std = (y - self._y_mean) / self._y_std

        d = x.shape[1]
        if hyper is not None:
            self.hyper = GPHyperparameters(
                np.asarray(hyper.lengthscales, dtype=float),
                float(hyper.variance),
                float(hyper.noise),
            )
            self._finalize_fit(x, y_std)
            return self
        initial = np.concatenate(
            [np.log(np.full(d, 0.4)), [np.log(1.0)], [np.log(1e-3)]]
        )
        best_params = initial
        if optimize_hyper and x.shape[0] >= 3:
            rng = np.random.default_rng(seed)
            best_nll = self._neg_log_marginal(initial, x, y_std)
            starts = [initial] + [
                initial + rng.normal(0.0, 0.7, size=initial.shape)
                for _ in range(num_restarts)
            ]
            for start in starts:
                result = optimize.minimize(
                    self._neg_log_marginal,
                    start,
                    args=(x, y_std),
                    method="L-BFGS-B",
                    bounds=[(np.log(1e-2), np.log(10.0))] * d
                    + [(np.log(1e-3), np.log(50.0)), (np.log(1e-8), np.log(1.0))],
                    options={"maxiter": 60},
                )
                if result.fun < best_nll:
                    best_nll = result.fun
                    best_params = result.x
        lengthscales = np.exp(best_params[:d])
        variance = float(np.exp(best_params[d]))
        noise = float(np.exp(best_params[d + 1])) + self.noise_floor
        self.hyper = GPHyperparameters(lengthscales, variance, noise)
        self._finalize_fit(x, y_std)
        return self

    def _finalize_fit(self, x: np.ndarray, y_std: np.ndarray) -> None:
        """Precompute the Cholesky solve for the current hyperparameters."""
        k = self.kernel(x, x, self.hyper.lengthscales, self.hyper.variance)
        k[np.diag_indices_from(k)] += self.hyper.noise + _JITTER
        try:
            self._chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            k[np.diag_indices_from(k)] += 1e-4
            self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, y_std)
        )

    # ---------------------------------------------------------------- inference
    def _require_fit(self) -> None:
        if self._x is None or self._alpha is None or self.hyper is None:
            raise SurrogateError("GP queried before fit()")

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        self._require_fit()
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(
            x_new, self._x, self.hyper.lengthscales, self.hyper.variance
        )
        mean_std = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        prior_var = self.hyper.variance
        var = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        mean = mean_std * self._y_std + self._y_mean
        std = np.sqrt(var) * self._y_std
        return mean, std

    def sample_posterior(
        self, x_new: np.ndarray, seed: int = 0
    ) -> np.ndarray:
        """One joint posterior sample at ``x_new`` (Thompson sampling)."""
        self._require_fit()
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(
            x_new, self._x, self.hyper.lengthscales, self.hyper.variance
        )
        mean = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        k_new = self.kernel(
            x_new, x_new, self.hyper.lengthscales, self.hyper.variance
        )
        cov = k_new - v.T @ v
        cov[np.diag_indices_from(cov)] += 1e-8
        rng = np.random.default_rng(seed)
        try:
            chol = np.linalg.cholesky(cov)
        except np.linalg.LinAlgError:
            cov[np.diag_indices_from(cov)] += 1e-4
            chol = np.linalg.cholesky(cov)
        draw = mean + chol @ rng.standard_normal(x_new.shape[0])
        return draw * self._y_std + self._y_mean

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else self._x.shape[0]
