"""Tests for the SLO rule engine: holds, hysteresis, builtin rules."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.alerts import AlertManager, Rule, builtin_rules
from repro.obs.timeseries import MetricsStore


def manager(*rules, **kwargs):
    transitions = []
    mgr = AlertManager(
        rules, on_transition=transitions.append, **kwargs
    )
    return mgr, transitions


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            Rule(name="r", series="s", kind="magic")

    def test_unknown_op(self):
        with pytest.raises(ConfigurationError):
            Rule(name="r", series="s", op="~")

    def test_ratio_rate_needs_denominator(self):
        with pytest.raises(ConfigurationError):
            Rule(name="r", series="s", mode="ratio_rate")

    def test_stall_needs_progress_series(self):
        with pytest.raises(ConfigurationError):
            Rule(name="r", series="s", kind="stall")

    def test_duplicate_rule_names_rejected(self):
        rule = Rule(name="r", series="s")
        with pytest.raises(ConfigurationError):
            AlertManager([rule, rule])

    def test_target_patterns(self):
        rule = Rule(name="r", series="s", targets=("replica:*", "fleet"))
        assert rule.matches("replica:a:1")
        assert rule.matches("fleet")
        assert not rule.matches("hub")


class TestThresholdStateMachine:
    RULE = Rule(
        name="hot", series="g", op=">", value=5.0,
        window_s=10.0, for_s=2.0, resolve_for_s=2.0,
    )

    def test_fire_after_hold_resolve_after_clear_hold(self):
        mgr, transitions = manager(self.RULE)
        store = MetricsStore()

        store.append("t", 0.0, {"g": 9.0})
        mgr.evaluate(store, now=0.0)
        assert mgr.active()[0]["state"] == "pending"
        assert transitions == []

        store.append("t", 2.0, {"g": 9.0})
        mgr.evaluate(store, now=2.0)  # hold elapsed
        assert mgr.firing()[0]["rule"] == "hot"
        assert [e["state"] for e in transitions] == ["firing"]

        store.append("t", 3.0, {"g": 1.0})
        mgr.evaluate(store, now=3.0)  # condition clear, hold running
        assert mgr.firing()  # still firing

        store.append("t", 5.0, {"g": 1.0})
        mgr.evaluate(store, now=5.0)  # resolve hold elapsed
        assert mgr.active() == []
        assert [e["state"] for e in transitions] == ["firing", "resolved"]

    def test_blip_shorter_than_hold_never_fires(self):
        mgr, transitions = manager(self.RULE)
        store = MetricsStore()
        store.append("t", 0.0, {"g": 9.0})
        mgr.evaluate(store, now=0.0)
        store.append("t", 1.0, {"g": 1.0})  # back below before for_s
        mgr.evaluate(store, now=1.0)
        assert mgr.active() == []
        assert transitions == []

    def test_hysteresis_prevents_flapping(self):
        rule = Rule(
            name="low", series="g", op="<", value=1.0,
            resolve_value=2.0, window_s=10.0, resolve_for_s=0.0,
        )
        mgr, transitions = manager(rule)
        store = MetricsStore()
        store.append("t", 0.0, {"g": 0.5})
        mgr.evaluate(store, now=0.0)
        assert mgr.firing()
        # 1.5 is above the firing threshold but below the resolve one:
        # without hysteresis this tick would resolve, the next re-fire
        store.append("t", 1.0, {"g": 1.5})
        mgr.evaluate(store, now=1.0)
        assert mgr.firing()
        store.append("t", 2.0, {"g": 3.0})
        mgr.evaluate(store, now=2.0)
        assert mgr.active() == []
        assert [e["state"] for e in transitions] == ["firing", "resolved"]

    def test_unseen_series_never_pages(self):
        mgr, transitions = manager(self.RULE)
        store = MetricsStore()
        store.append("t", 0.0, {"other": 1.0})
        mgr.evaluate(store, now=0.0)
        assert mgr.active() == []

    def test_signal_loss_drops_pending_keeps_firing(self):
        mgr, _ = manager(self.RULE)
        store = MetricsStore()
        store.append("t", 0.0, {"g": 9.0})
        mgr.evaluate(store, now=0.0)
        assert mgr.active()[0]["state"] == "pending"
        # series ages out of the window entirely -> condition None
        mgr.evaluate(store, now=100.0)
        assert mgr.active() == []


class TestOtherKinds:
    def test_absence_fires_when_seen_series_goes_silent(self):
        rule = Rule(name="gone", series="beat", kind="absence", window_s=5.0)
        mgr, transitions = manager(rule)
        store = MetricsStore()
        store.append("t", 0.0, {"beat": 1.0})
        mgr.evaluate(store, now=1.0)
        assert mgr.active() == []
        mgr.evaluate(store, now=10.0)  # silent for > window
        assert mgr.firing()[0]["rule"] == "gone"

    def test_rate_drop(self):
        rule = Rule(
            name="collapse", series="c_total", kind="rate_drop",
            value=0.5, window_s=10.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        # previous window: +100; current window: +10 -> ratio 0.1 <= 0.5
        for t, v in [(0.0, 0.0), (10.0, 100.0), (20.0, 110.0)]:
            store.append("t", t, {"c_total": v})
        mgr.evaluate(store, now=20.0)
        assert mgr.firing()

    def test_stall_fires_only_with_progress(self):
        rule = Rule(
            name="hv_stall", series="hv", kind="stall",
            value=1e-4, window_s=100.0,
            progress_series="iter", min_progress=3.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        # iterations advance 5x while HV is flat -> stall
        for i in range(6):
            store.append(
                "run:x", float(i * 10), {"iter": float(i), "hv": 1.0}
            )
        mgr.evaluate(store, now=50.0)
        assert mgr.firing()

    def test_stall_silent_when_iterations_do_not_advance(self):
        rule = Rule(
            name="hv_stall", series="hv", kind="stall",
            value=1e-4, window_s=100.0,
            progress_series="iter", min_progress=3.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        for i in range(6):
            store.append(
                "run:x", float(i * 10), {"iter": 1.0, "hv": 1.0}
            )
        mgr.evaluate(store, now=50.0)
        assert mgr.active() == []  # no work done: not a stall

    def test_activation_gate_arms_only_after_traffic(self):
        rule = Rule(
            name="floor", series="c_total", op="<", value=0.5,
            mode="rate", window_s=4.0, activation_window_s=100.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        # idle target: counter flat at 0 since the start -> gate closed
        for i in range(5):
            store.append("t", float(i), {"c_total": 0.0})
        mgr.evaluate(store, now=4.0)
        assert mgr.active() == []
        # traffic appears, then stops -> gate open, rule fires
        store.append("t", 5.0, {"c_total": 50.0})
        store.append("t", 10.0, {"c_total": 50.0})
        store.append("t", 12.0, {"c_total": 50.0})
        mgr.evaluate(store, now=12.0)
        assert mgr.firing()

    def test_activation_gate_arms_on_counter_born_in_window(self):
        """Counters register lazily on the first event: a series whose
        samples start flat at a positive value (the increase happened
        between two scrapes) still counts as traffic."""
        rule = Rule(
            name="floor", series="c_total", op="<", value=0.5,
            mode="rate", window_s=4.0, activation_window_s=100.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        store.append("t", 0.0, {"c_total": 3.0})
        store.append("t", 2.0, {"c_total": 3.0})
        mgr.evaluate(store, now=10.0)  # rate window empty -> stopped
        assert mgr.firing()

    def test_activation_gate_stays_closed_on_flat_old_counter(self):
        rule = Rule(
            name="floor", series="c_total", op="<", value=0.5,
            mode="rate", window_s=4.0, activation_window_s=10.0,
        )
        mgr, _ = manager(rule)
        store = MetricsStore()
        # born (and grew) long before the lookback, flat ever since
        store.append("t", 0.0, {"c_total": 3.0})
        store.append("t", 100.0, {"c_total": 3.0})
        mgr.evaluate(store, now=100.0)
        assert mgr.active() == []


class TestBuiltinRules:
    def test_shipped_rule_set(self):
        rules = {rule.name: rule for rule in builtin_rules(2.0)}
        assert set(rules) == {
            "replica_down", "breaker_open", "evals_per_sec_floor",
            "http_error_rate", "queue_depth", "hv_stall",
        }
        assert rules["replica_down"].targets == ("replica:*",)
        assert rules["hv_stall"].targets == ("run:*",)

    def test_replica_down_fires_and_resolves(self):
        rules = [r for r in builtin_rules(1.0) if r.name == "replica_down"]
        mgr, transitions = manager(*rules)
        store = MetricsStore()
        store.append("replica:a", 0.0, {"up": 1.0})
        mgr.evaluate(store, now=0.0)
        assert mgr.active() == []
        store.append("replica:a", 1.0, {"up": 0.0})
        mgr.evaluate(store, now=1.0)
        assert mgr.firing()[0]["target"] == "replica:a"
        store.append("replica:a", 2.0, {"up": 1.0})
        mgr.evaluate(store, now=2.0)
        store.append("replica:a", 3.0, {"up": 1.0})
        mgr.evaluate(store, now=3.0)
        assert mgr.active() == []
        assert [e["state"] for e in transitions] == ["firing", "resolved"]

    def test_history_is_bounded(self):
        rule = Rule(name="r", series="g", op=">", value=0.0, window_s=10.0)
        mgr, _ = manager(rule, history_limit=4)
        store = MetricsStore()
        for i in range(10):
            t = float(2 * i)
            store.append("t", t, {"g": 1.0 if i % 2 == 0 else -1.0})
            mgr.evaluate(store, now=t)
        assert len(mgr.history) <= 4
