"""Tests for the append-only metrics store and its query layer."""

import json
import os

import pytest

from repro.errors import TrackingError
from repro.obs.timeseries import (
    MetricsStore,
    counter_increase,
    flatten_families,
    histogram_quantile,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("up", {}) == "up"

    def test_labels_sorted(self):
        key = series_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'

    def test_replica_label_dropped(self):
        assert series_key("m", {"replica": "r0"}) == "m"
        assert series_key("m", {"replica": "r0", "path": "/x"}) == 'm{path="/x"}'


class TestFlattenFamilies:
    def test_prometheus_parse_round_trip(self):
        from repro.obs.prom import parse_prometheus_text

        text = (
            "# HELP service_requests_total total\n"
            "# TYPE service_requests_total counter\n"
            'service_requests_total{path="/evaluate"} 7\n'
            "# HELP request_seconds latency\n"
            "# TYPE request_seconds histogram\n"
            'request_seconds_bucket{le="0.1"} 3\n'
            'request_seconds_bucket{le="+Inf"} 5\n'
            "request_seconds_sum 0.4\n"
            "request_seconds_count 5\n"
        )
        flat = flatten_families(parse_prometheus_text(text))
        assert flat['service_requests_total{path="/evaluate"}'] == 7.0
        assert flat['request_seconds_bucket{le="0.1"}'] == 3.0
        assert flat["request_seconds_count"] == 5.0


class TestCounterIncrease:
    def test_monotone(self):
        assert counter_increase([(0, 1.0), (1, 4.0), (2, 9.0)]) == 8.0

    def test_reset_counts_post_restart_value(self):
        # 10 -> 2 is a restart: the 2 is new growth, not a -8 delta
        assert counter_increase([(0, 10.0), (1, 2.0), (2, 5.0)]) == 5.0

    def test_single_point_is_zero(self):
        assert counter_increase([(0, 10.0)]) == 0.0


class TestHistogramQuantile:
    BUCKETS = {"0.1": 10.0, "0.5": 20.0, "+Inf": 20.0}

    def test_median_interpolates(self):
        # rank 10 of 20 lands exactly on the 0.1 bound
        assert histogram_quantile(0.5, self.BUCKETS) == pytest.approx(0.1)

    def test_top_bucket_clamps_to_finite_bound(self):
        assert histogram_quantile(1.0, self.BUCKETS) == pytest.approx(0.5)

    def test_empty_window_is_none(self):
        assert histogram_quantile(0.5, {"0.1": 0.0, "+Inf": 0.0}) is None

    def test_missing_inf_bucket_is_none(self):
        assert histogram_quantile(0.5, {"0.1": 3.0}) is None

    def test_bad_q_rejected(self):
        with pytest.raises(TrackingError):
            histogram_quantile(1.5, self.BUCKETS)


class TestAppendRead:
    def test_memory_only_round_trip(self):
        store = MetricsStore()
        assert store.append("fleet", 1.0, {"up": 2.0}) == -1
        assert store.samples("fleet") == [(1.0, {"up": 2.0})]
        assert store.targets() == ["fleet"]

    def test_disk_round_trip_and_byte_cursor(self, tmp_path):
        with MetricsStore(tmp_path) as store:
            first = store.append("replica:a:1", 1.0, {"up": 1.0})
            second = store.append("replica:a:1", 2.0, {"up": 1.0})
            assert second > first
            samples, scan = store.read_from("replica:a:1", 0)
            assert [t for t, _s in samples] == [1.0, 2.0]
            assert scan.valid_bytes == second
            # incremental: resume from the first line's end cursor
            newer, _scan = store.read_from("replica:a:1", first)
            assert [t for t, _s in newer] == [2.0]

    def test_targets_discovered_from_disk(self, tmp_path):
        with MetricsStore(tmp_path) as store:
            store.append("fleet", 1.0, {"x": 1.0})
            store.append("hub", 1.0, {"y": 1.0})
        fresh = MetricsStore(tmp_path)
        assert fresh.targets() == ["fleet", "hub"]
        assert fresh.series("fleet", "x") == [(1.0, 1.0)]

    def test_unsafe_target_names_sanitized(self, tmp_path):
        with MetricsStore(tmp_path) as store:
            store.append("run/../evil name", 1.0, {"x": 1.0})
        files = [p.name for p in tmp_path.glob("*.jsonl")]
        assert files == ["run_.._evil_name.jsonl"]

    def test_empty_target_rejected(self, tmp_path):
        with pytest.raises(TrackingError):
            MetricsStore(tmp_path).append("", 1.0, {})


class TestCrashResume:
    def test_truncated_tail_survives_and_resumes_byte_consistently(
        self, tmp_path
    ):
        """Acceptance: a crash-torn final line is truncated on the next
        append and the file stays a clean sequence of complete lines."""
        with MetricsStore(tmp_path) as store:
            store.append("fleet", 1.0, {"x": 1.0})
            store.append("fleet", 2.0, {"x": 2.0})
        path = tmp_path / "fleet.jsonl"
        clean = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"t": 3.0, "s": {"x":')  # simulated crash

        resumed = MetricsStore(tmp_path)
        samples, scan = resumed.read_from("fleet", 0)
        assert [t for t, _s in samples] == [1.0, 2.0]
        assert scan.truncated_tail
        assert scan.valid_bytes == len(clean)

        offset = resumed.append("fleet", 4.0, {"x": 4.0})
        raw = path.read_bytes()
        assert raw.startswith(clean)  # damage truncated, history intact
        assert offset == len(raw)
        lines = [json.loads(line) for line in raw.splitlines()]
        assert [line["t"] for line in lines] == [1.0, 2.0, 4.0]
        resumed.close()

    def test_append_reopens_after_external_truncate(self, tmp_path):
        with MetricsStore(tmp_path) as store:
            store.append("fleet", 1.0, {"x": 1.0})
            os.truncate(tmp_path / "fleet.jsonl", 0)
            store.append("fleet", 2.0, {"x": 2.0})
        fresh = MetricsStore(tmp_path)
        # O_APPEND keeps writing at the (new) end: only the second survives
        assert [t for t, _s in fresh.samples("fleet")] == [2.0]


class TestQueries:
    def fill(self, store, target="replica:a"):
        for i in range(5):
            store.append(
                target, float(i),
                {"c_total": float(i * 2), "g": float(10 - i)},
            )

    def test_last_avg_max_min(self):
        store = MetricsStore()
        self.fill(store)
        q = lambda fn: store.query("replica:a", "g", fn, 10.0, now=4.0)
        assert q("last") == 6.0
        assert q("max") == 10.0
        assert q("min") == 6.0
        assert q("avg") == pytest.approx(8.0)

    def test_rate_and_increase(self):
        store = MetricsStore()
        self.fill(store)
        inc = store.query("replica:a", "c_total", "increase", 4.0, now=4.0)
        assert inc == 8.0
        rate = store.query("replica:a", "c_total", "rate", 4.0, now=4.0)
        assert rate == pytest.approx(2.0)

    def test_never_seen_series_is_none(self):
        store = MetricsStore()
        self.fill(store)
        assert store.query("replica:a", "nope", "rate", 4.0, now=4.0) is None
        assert store.query("replica:a", "nope", "last", 4.0, now=4.0) is None

    def test_stopped_counter_reads_zero_not_none(self):
        """A series seen historically but silent in the window is a
        stopped counter (rate 0) — the signal alert rules key on."""
        store = MetricsStore()
        self.fill(store)
        # window [96, 100] holds no points, but the series exists
        assert store.query("replica:a", "c_total", "rate", 4.0, now=100.0) == 0.0

    def test_unknown_fn_rejected(self):
        store = MetricsStore()
        self.fill(store)
        with pytest.raises(TrackingError):
            store.query("replica:a", "g", "stddev", 4.0, now=4.0)

    def test_quantile_from_histogram_series(self):
        store = MetricsStore()
        t0 = {
            'lat_bucket{le="0.1"}': 0.0,
            'lat_bucket{le="0.5"}': 0.0,
            'lat_bucket{le="+Inf"}': 0.0,
        }
        t1 = {
            'lat_bucket{le="0.1"}': 10.0,
            'lat_bucket{le="0.5"}': 20.0,
            'lat_bucket{le="+Inf"}': 20.0,
        }
        store.append("replica:a", 0.0, t0)
        store.append("replica:a", 1.0, t1)
        p50 = store.query(
            "replica:a", "lat", "quantile", 10.0, now=1.0, q=0.5
        )
        assert p50 == pytest.approx(0.1)

    def test_series_names_prefix(self):
        store = MetricsStore()
        self.fill(store)
        assert store.series_names("replica:a") == ["c_total", "g"]
        assert store.series_names("replica:a", prefix="c_") == ["c_total"]


class TestCompact:
    def test_retention_drops_and_downsamples(self, tmp_path):
        with MetricsStore(tmp_path) as store:
            now = 100_000.0
            # ancient (beyond retention), old (downsample band), recent
            store.append("fleet", now - 800.0, {"x": 1.0})
            for i in range(10):
                store.append("fleet", now - 400.0 + i, {"x": float(i)})
            store.append("fleet", now - 5.0, {"x": 99.0})
            kept = store.compact(
                "fleet", now,
                retention_s=600.0,
                downsample_after_s=100.0,
                downsample_to_s=60.0,
            )
            # 10 old samples collapse to one per 60s bucket (here: 1), +1 recent
            assert kept == 2
            samples = store.samples("fleet")
            assert samples[-1] == (now - 5.0, {"x": 99.0})
            # appends continue cleanly on the rewritten file
            store.append("fleet", now, {"x": 100.0})
        fresh = MetricsStore(tmp_path)
        assert len(fresh.samples("fleet")) == 3

    def test_memory_store_compacts_cache(self):
        store = MetricsStore()
        store.append("fleet", 0.0, {"x": 1.0})
        store.append("fleet", 1000.0, {"x": 2.0})
        assert store.compact("fleet", 1000.0, retention_s=100.0) == 1
        assert store.samples("fleet") == [(1000.0, {"x": 2.0})]


class TestObsCli:
    def test_obs_query_fn_flag_does_not_shadow_dispatch(self, tmp_path, capsys):
        # --fn must not land in args.fn: that slot holds the subcommand
        # handler, and overwriting it crashed dispatch with a TypeError
        from repro.cli import main

        with MetricsStore(tmp_path / "obs") as store:
            for i in range(4):
                store.append("fleet", float(i), {"c_total": float(2 * i)})
        rc = main([
            "obs", "query", "fleet", "c_total",
            "--fn", "rate", "--window", "3",
            "--obs-dir", str(tmp_path / "obs"),
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "2"
