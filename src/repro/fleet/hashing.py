"""Rendezvous (highest-random-weight) hashing for shard affinity.

The fleet router assigns every candidate key — ``(hw_key, layer,
mapping_key)`` — to one PPA-service replica so that replica's bounded-LRU
engine cache stays hot for its slice of the key space.  Rendezvous hashing
gives the two properties the router needs with no ring state to maintain:

* **Determinism** — every client computes the same owner for a key from
  the member list alone (``blake2b`` digests; Python's builtin ``hash`` is
  per-process salted and useless here).
* **Minimal remapping** — removing one of N shards reassigns *only* the
  keys that shard owned (~1/N of them); every other key keeps its owner
  because its score against the surviving shards did not change.  Adding
  a shard steals ~1/(N+1) of the keys, again leaving the rest untouched.

That second property is exactly what keeps the surviving replicas' caches
warm when a replica dies or drains for a restart.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

__all__ = ["candidate_key", "choose_shard", "rank_shards", "rendezvous_score"]


def rendezvous_score(key: str, shard_id: str) -> int:
    """Deterministic 64-bit weight of ``shard_id`` for ``key``."""
    digest = hashlib.blake2b(
        f"{shard_id}\x00{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rank_shards(key: str, shard_ids: Sequence[str]) -> List[str]:
    """Shards ordered by descending preference for ``key``.

    The full ranking (not just the winner) is the failover order: when the
    top shard is down or its breaker is open, the key falls to the next
    shard in this list — and returns to its original owner, unmoved, when
    the shard comes back.  Ties (astronomically unlikely with 64-bit
    scores) break on the shard id so every client agrees.
    """
    return sorted(
        shard_ids,
        key=lambda shard_id: (rendezvous_score(key, shard_id), shard_id),
        reverse=True,
    )


def choose_shard(key: str, shard_ids: Sequence[str]) -> str:
    """The preferred owner of ``key`` among ``shard_ids``."""
    if not shard_ids:
        raise ValueError("cannot choose a shard from an empty member list")
    best_id = shard_ids[0]
    best_score: Tuple[int, str] = (rendezvous_score(key, best_id), best_id)
    for shard_id in shard_ids[1:]:
        score = (rendezvous_score(key, shard_id), shard_id)
        if score > best_score:
            best_score = score
            best_id = shard_id
    return best_id


def candidate_key(hw_id, layer_name: str, mapping_key) -> str:
    """Stable string identity of one engine query for shard routing.

    Mirrors the engine's LRU cache key ``(hw_key(hw), layer,
    mapping.key())`` — both are built from the dataclasses' field values —
    so all queries that would share a cache entry route to the same
    replica.  ``repr`` of the tuples is stable across processes (ints,
    floats, strings and nested tuples only).
    """
    return repr((hw_id, layer_name, mapping_key))
