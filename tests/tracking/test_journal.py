"""Tests for the crash-safe JSONL event journal."""

import json

import pytest

from repro.errors import TrackingError
from repro.tracking.journal import (
    EventJournal,
    read_events,
    read_events_from,
    read_tail_events,
    verify_sequence,
)


def write_journal(path, count):
    with EventJournal(path) as journal:
        for i in range(count):
            journal.append("evaluation", {"iteration": i})


class TestAppendRead:
    def test_round_trip_preserves_order_and_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for i in range(5):
                seq = journal.append("iteration_start", {"iteration": i})
                assert seq == i
        scan = read_events(path)
        assert len(scan.events) == 5
        assert [e["seq"] for e in scan.events] == list(range(5))
        assert [e["iteration"] for e in scan.events] == list(range(5))
        assert scan.last_seq == 4
        assert not scan.truncated_tail
        verify_sequence(scan)

    def test_unknown_event_type_rejected(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        with pytest.raises(TrackingError):
            journal.append("made_up_event", {})

    def test_numpy_payloads_serialize(self, tmp_path):
        import numpy as np

        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append(
                "evaluation",
                {"objectives": np.array([1.5, 2.5]), "count": np.int64(3)},
            )
        event = read_events(path).events[0]
        assert event["objectives"] == [1.5, 2.5]
        assert event["count"] == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrackingError):
            read_events(tmp_path / "nope.jsonl")


class TestCrashSafety:
    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"a": 1})
            journal.append("iteration_start", {"iteration": 0})
        # simulate a kill mid-write: a partial line with no newline
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        scan = read_events(path)
        assert len(scan.events) == 2
        assert scan.truncated_tail
        verify_sequence(scan)

    def test_corrupt_middle_line_stops_scan(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            json.dumps({"seq": 0, "type": "run_start"}),
            "{not json at all",
            json.dumps({"seq": 2, "type": "run_end"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        scan = read_events(path)
        assert len(scan.events) == 1
        assert scan.truncated_tail

    def test_append_is_one_complete_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {"x": "y"})
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_fsync_mode_writes_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path, fsync=True) as journal:
            journal.append("run_start", {})
        assert len(read_events(path).events) == 1


class TestResumeSequencing:
    def test_open_resume_continues_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with EventJournal.open_resume(path) as journal:
            seq = journal.append("resume", {})
        assert seq == 2
        scan = read_events(path)
        verify_sequence(scan)
        assert scan.events[-1]["type"] == "resume"

    def test_open_resume_skips_truncated_tail_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 1, "type": "run_e')
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1

    def test_open_resume_truncates_partial_tail_before_append(self, tmp_path):
        """Post-resume appends must not weld onto crash-partial bytes —
        the journal has to be fully readable again afterwards."""
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
            journal.append("iteration_start", {"iteration": 0})
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "iterati')
        with EventJournal.open_resume(path) as journal:
            journal.append("resume", {})
            journal.append("iteration_start", {"iteration": 1})
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["type"] for e in scan.events] == [
            "run_start",
            "iteration_start",
            "resume",
            "iteration_start",
        ]
        verify_sequence(scan)

    def test_open_resume_truncates_mid_file_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            journal.append("run_start", {})
        with open(path, "ab") as handle:
            handle.write(b"{garbage line\n")
            handle.write(
                b'{"seq": 99, "type": "run_end"}\n'
            )  # untrustworthy: follows corruption
        with EventJournal.open_resume(path) as journal:
            assert journal.append("resume", {}) == 1
        scan = read_events(path)
        assert not scan.truncated_tail
        assert [e["seq"] for e in scan.events] == [0, 1]
        verify_sequence(scan)

    def test_verify_sequence_rejects_gap(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "type": "run_start"})
            + "\n"
            + json.dumps({"seq": 5, "type": "run_end"})
            + "\n"
        )
        with pytest.raises(TrackingError):
            verify_sequence(read_events(path))


class TestCursorReads:
    """read_events_from: the incremental (SSE/tail --follow) read path."""

    def test_offset_zero_matches_full_scan(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 4)
        full = read_events(path)
        partial = read_events_from(path, 0)
        assert partial.events == full.events
        assert partial.event_offsets == full.event_offsets
        assert partial.valid_bytes == full.valid_bytes

    def test_event_offsets_slice_back_to_exact_lines(self, tmp_path):
        """Each offset points just past its event's line — the property
        the hub's SSE byte-identity guarantee is built on."""
        path = tmp_path / "j.jsonl"
        write_journal(path, 5)
        raw = path.read_bytes()
        scan = read_events(path)
        previous = 0
        for event, end in zip(scan.events, scan.event_offsets):
            line = raw[previous:end]
            assert line.endswith(b"\n")
            assert json.loads(line) == event
            previous = end

    def test_resume_from_cursor_yields_exact_remainder(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 6)
        full = read_events(path)
        cursor = full.event_offsets[2]  # consumed the first three events
        rest = read_events_from(path, cursor)
        assert rest.start_offset == cursor
        assert rest.events == full.events[3:]
        assert rest.event_offsets == full.event_offsets[3:]
        assert rest.valid_bytes == full.valid_bytes

    def test_offset_at_eof_is_empty_not_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 2)
        scan = read_events_from(path, path.stat().st_size)
        assert scan.events == []
        assert scan.valid_bytes == path.stat().st_size
        assert not scan.truncated_tail

    def test_negative_offset_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 1)
        with pytest.raises(TrackingError):
            read_events_from(path, -1)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TrackingError):
            read_events_from(tmp_path / "nope.jsonl", 0)

    def test_sees_truncated_tail_past_cursor(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 2)
        cursor = read_events(path).valid_bytes
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 2, "type": "evalua')
        scan = read_events_from(path, cursor)
        assert scan.events == []
        assert scan.truncated_tail
        assert scan.valid_bytes == cursor


class TestTailReads:
    """read_tail_events: bounded backward reads for ``repro runs tail``."""

    def test_returns_last_n_events(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 20)
        scan = read_tail_events(path, 5)
        assert [e["iteration"] for e in scan.events] == [15, 16, 17, 18, 19]
        assert scan.last_seq == 19

    def test_limit_beyond_length_returns_all(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 3)
        scan = read_tail_events(path, 100)
        assert len(scan.events) == 3

    def test_zero_limit_returns_nothing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 3)
        assert read_tail_events(path, 0).events == []

    def test_small_window_widens_until_satisfied(self, tmp_path):
        """With a window smaller than one line the reader must double its
        way back instead of returning short."""
        path = tmp_path / "j.jsonl"
        write_journal(path, 50)
        scan = read_tail_events(path, 30, initial_window=1)
        assert [e["iteration"] for e in scan.events] == list(range(20, 50))

    def test_matches_full_scan_suffix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 40)
        full = read_events(path)
        tail = read_tail_events(path, 7, initial_window=256)
        assert tail.events == full.events[-7:]
        assert tail.event_offsets == full.event_offsets[-7:]

    def test_event_type_filter_applies_before_limit(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for i in range(10):
                journal.append("evaluation", {"iteration": i})
                journal.append("pareto_update", {"pareto_size": i})
        scan = read_tail_events(path, 3, event_type="pareto_update",
                                initial_window=64)
        assert [e["pareto_size"] for e in scan.events] == [7, 8, 9]
        assert all(e["type"] == "pareto_update" for e in scan.events)

    def test_truncated_tail_still_reported(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 8)
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 8, "type": "evalua')
        scan = read_tail_events(path, 3)
        assert scan.truncated_tail
        assert [e["iteration"] for e in scan.events] == [5, 6, 7]

    def test_negative_limit_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, 1)
        with pytest.raises(TrackingError):
            read_tail_events(path, -1)


class TestConcurrency:
    def test_threaded_appends_interleave_whole_lines(self, tmp_path):
        import threading

        path = tmp_path / "j.jsonl"
        journal = EventJournal(path)

        def writer(tag):
            for _ in range(50):
                journal.append("evaluation", {"tag": tag, "pad": "x" * 200})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        scan = read_events(path)
        assert len(scan.events) == 200
        assert not scan.truncated_tail
        verify_sequence(scan)


class TestSchemaGrowth:
    """The ``span`` event type (added for repro.obs) must not disturb any
    journal consumer: replay, verification and resume are type-agnostic."""

    def test_span_event_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        span = {
            "span_schema": 1,
            "name": "iteration",
            "trace_id": "t",
            "span_id": "abc-1",
            "parent_id": None,
            "wall_start_s": 1.0,
            "wall_dur_s": 0.5,
            "sim_start_s": 0.0,
            "sim_dur_s": 100.0,
            "thread": 1,
            "attrs": {"iteration": 0},
        }
        with EventJournal(path) as journal:
            journal.append("span", dict(span))
        event = read_events(path).of_type("span")[0]
        for key, value in span.items():
            assert event[key] == value

    def test_mixed_journal_replays_and_verifies(self, tmp_path):
        """A traced run's journal (spans interleaved with the decision
        events) still replays its iteration records and verify_runs."""
        from repro.experiments.harness import run_method
        from repro.tracking import (
            RunStore,
            replay_iteration_records,
            verify_run,
        )

        store = RunStore(tmp_path / "runs")
        result = run_method(
            "unico", "edge", "mobilenet", "smoke", seed=11,
            run_store=store, trace=True,
        )
        run = store.get(result.extras["run_id"])
        scan = read_events(run.journal_path)
        types = {e["type"] for e in scan.events}
        assert "span" in types and "iteration_end" in types
        verify_sequence(scan)
        health = verify_run(run)
        assert health["journal_iterations"] == 2
        assert (
            replay_iteration_records(run.journal_path)
            == result.extras["iteration_records"]
        )

    def test_mixed_journal_resumes(self, tmp_path):
        """Resume over a span-bearing journal: delete the last checkpoint
        so the journal is ahead, then resume and match the straight run."""
        from repro.experiments.harness import run_method
        from repro.tracking import RunStore, replay_iteration_records
        from repro.tracking.resume import resume_run

        straight = run_method("unico", "edge", "mobilenet", "smoke", seed=11)

        store = RunStore(tmp_path / "runs")
        result = run_method(
            "unico", "edge", "mobilenet", "smoke", seed=11,
            run_store=store, trace=True,
        )
        run = store.get(result.extras["run_id"])
        checkpoints = run.checkpoints()
        assert len(checkpoints) == 2
        checkpoints[-1].unlink()  # journal now one iteration ahead

        resumed = resume_run(run)
        assert resumed.extras["resumed_from_iteration"] == 1
        assert sorted(
            map(tuple, resumed.pareto.points.tolist())
        ) == sorted(map(tuple, straight.pareto.points.tolist()))
        assert (
            replay_iteration_records(run.journal_path)
            == straight.extras["iteration_records"]
        )
