"""Edge-case tests for figure/table helper functions."""

import numpy as np
import pytest

from repro.experiments.fig7 import speedup_to_reach
from repro.experiments.fig8 import select_comparable_pairs
from repro.experiments.tables import run_table_cell
from repro.utils.records import RunRecord


def _panel(grid, curves):
    record = RunRecord("fig7-test")
    record.put("time_grid_s", grid)
    for method, curve in curves.items():
        child = record.child(method)
        child.put("hv_diff_curve", curve)
        child.put("final_hv_diff", curve[-1])
    return record


class TestSpeedupToReach:
    def test_faster_method(self):
        panel = _panel(
            [1.0, 2.0, 3.0, 4.0],
            {"hasco": [0.9, 0.8, 0.7, 0.5], "unico": [0.5, 0.3, 0.2, 0.1]},
        )
        # unico hits hasco's final (0.5) already at t=1 -> 4x
        assert speedup_to_reach(panel) == pytest.approx(4.0)

    def test_never_reaches_is_infinite(self):
        panel = _panel(
            [1.0, 2.0],
            {"hasco": [0.5, 0.1], "unico": [0.9, 0.8]},
        )
        assert speedup_to_reach(panel) == float("inf")

    def test_reaches_only_at_end(self):
        panel = _panel(
            [1.0, 2.0],
            {"hasco": [0.5, 0.4], "unico": [0.9, 0.4]},
        )
        assert speedup_to_reach(panel) == pytest.approx(1.0)


class TestSelectComparablePairs:
    def _design(self, latency, power, area, r):
        from repro.core.base import HWDesign
        from repro.core.robustness import RobustnessResult
        from repro.costmodel.results import NetworkPPA

        ppa = NetworkPPA(
            latency_s=latency, energy_j=1.0, power_w=power, area_mm2=area,
            feasible=True,
        )
        rob = RobustnessResult(
            r_value=r, delta=r, theta=np.pi / 2,
            optimal_latency_s=latency, optimal_power_w=power,
            suboptimal_latency_s=latency, suboptimal_power_w=power,
        )
        return HWDesign(hw=object(), mapping={}, ppa=ppa, robustness=rob)

    def test_similar_ppa_different_r_selected(self):
        designs = [
            self._design(1.00, 1.00, 1.00, r=0.01),
            self._design(1.05, 1.02, 0.98, r=0.50),
            self._design(9.00, 9.00, 9.00, r=0.30),
        ]
        pairs = select_comparable_pairs(designs, tolerance=0.10)
        assert pairs == [(0, 1)]

    def test_equal_r_not_selected(self):
        designs = [
            self._design(1.0, 1.0, 1.0, r=0.2),
            self._design(1.01, 1.0, 1.0, r=0.2),
        ]
        assert select_comparable_pairs(designs, tolerance=0.10) == []

    def test_ranked_by_r_gap(self):
        designs = [
            self._design(1.00, 1.00, 1.00, r=0.01),
            self._design(1.01, 1.00, 1.00, r=0.90),  # big gap with 0
            self._design(1.02, 1.00, 1.00, r=0.05),  # small gap with 0
        ]
        pairs = select_comparable_pairs(designs, tolerance=0.10, max_pairs=1)
        assert pairs[0] in [(0, 1), (1, 2)]
        # the widest-gap pair must come first
        assert pairs[0] == (0, 1)

    def test_infinite_r_excluded(self):
        designs = [
            self._design(1.0, 1.0, 1.0, r=float("inf")),
            self._design(1.01, 1.0, 1.0, r=0.1),
        ]
        assert select_comparable_pairs(designs, tolerance=0.10) == []


class TestTableCellInfeasible:
    def test_infeasible_scenario_reports_inf(self, tiny_network, monkeypatch):
        """A scenario no design can satisfy reports infinite PPA cells."""
        from repro.experiments import harness

        original = harness.make_platform

        def strangled(scenario, network):
            space, engine, caps, tool, workers = original(scenario, network)
            caps = dict(caps)
            caps["power_cap_w"] = 1e-12  # nothing satisfies this
            return space, engine, caps, tool, workers

        monkeypatch.setattr(harness, "make_platform", strangled)
        cell = run_table_cell("random", "edge", tiny_network, "smoke", seed=0)
        assert cell["latency_ms"] == float("inf")
        assert cell["pareto_size"] == 0
        assert cell["cost_h"] > 0  # the search still burned time
