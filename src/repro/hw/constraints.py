"""Composable design constraints.

Scenarios constrain designs differently — the edge/cloud scenarios cap
power (Section 4.2), the industrial study caps area at 200 mm^2
(Section 4.6), and real deployments stack further rules (frequency floors,
buffer minimums).  A :class:`Constraint` judges a finished design's
(hardware, PPA) pair; a :class:`ConstraintSet` composes them and reports
*which* rule failed — feeding both the feasibility filter in
``assemble_objectives`` and human-readable diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.costmodel.results import NetworkPPA
from repro.errors import ConfigurationError


class Constraint:
    """One design rule; subclasses implement :meth:`satisfied`."""

    name = "constraint"

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class PowerCap(Constraint):
    """Total (dynamic + leakage) power must not exceed ``cap_w``."""

    cap_w: float
    name: str = "power-cap"

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise ConfigurationError(f"power cap must be positive, got {self.cap_w}")

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        return ppa.power_w <= self.cap_w

    def describe(self) -> str:
        return f"power <= {self.cap_w} W"


@dataclass(frozen=True)
class AreaCap(Constraint):
    """Silicon area must not exceed ``cap_mm2``."""

    cap_mm2: float
    name: str = "area-cap"

    def __post_init__(self) -> None:
        if self.cap_mm2 <= 0:
            raise ConfigurationError(f"area cap must be positive, got {self.cap_mm2}")

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        return ppa.area_mm2 <= self.cap_mm2

    def describe(self) -> str:
        return f"area <= {self.cap_mm2} mm^2"


@dataclass(frozen=True)
class LatencyCap(Constraint):
    """End-to-end latency must meet a real-time deadline."""

    cap_s: float
    name: str = "latency-cap"

    def __post_init__(self) -> None:
        if self.cap_s <= 0:
            raise ConfigurationError(f"latency cap must be positive, got {self.cap_s}")

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        return ppa.latency_s <= self.cap_s

    def describe(self) -> str:
        return f"latency <= {self.cap_s * 1e3:g} ms"


@dataclass(frozen=True)
class MinBufferBytes(Constraint):
    """A named buffer attribute of the HW config must be at least a floor.

    Useful for expert-imposed minimums (e.g. "never ship less than 32 KB
    of L1") in industrial searches.
    """

    attribute: str
    minimum: int
    name: str = "min-buffer"

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        return getattr(hw, self.attribute, 0) >= self.minimum

    def describe(self) -> str:
        return f"{self.attribute} >= {self.minimum}"


class ConstraintSet:
    """An all-of composition with per-rule failure reporting."""

    def __init__(self, constraints: Sequence[Constraint] = ()):
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)

    @classmethod
    def from_caps(
        cls,
        power_cap_w: Optional[float] = None,
        area_cap_mm2: Optional[float] = None,
        latency_cap_s: Optional[float] = None,
    ) -> "ConstraintSet":
        """Build the common cap set from optional scalar limits."""
        rules: List[Constraint] = []
        if power_cap_w is not None:
            rules.append(PowerCap(power_cap_w))
        if area_cap_mm2 is not None:
            rules.append(AreaCap(area_cap_mm2))
        if latency_cap_s is not None:
            rules.append(LatencyCap(latency_cap_s))
        return cls(rules)

    def __len__(self) -> int:
        return len(self.constraints)

    def check(self, hw, ppa: NetworkPPA) -> Tuple[bool, List[str]]:
        """Returns (all satisfied, descriptions of violated rules)."""
        violations = [
            rule.describe()
            for rule in self.constraints
            if not rule.satisfied(hw, ppa)
        ]
        return (not violations, violations)

    def satisfied(self, hw, ppa: NetworkPPA) -> bool:
        ok, _violations = self.check(hw, ppa)
        return ok

    def describe(self) -> str:
        if not self.constraints:
            return "unconstrained"
        return " AND ".join(rule.describe() for rule in self.constraints)
