"""PPA estimation engines.

Section 3.5 describes the PPA estimation engine as a standalone service that
takes (hardware configuration, SW mapping, tensor workload) and returns
power/performance/area.  This module provides that interface:

* :class:`PPAEngine` — the abstract service contract, bound to one workload.
* :class:`MaestroEngine` — the analytical engine (prototyping stage); each
  layer query charges ~5 s of modeled wall-clock (see ANALYTICAL_EVAL_COST_S).
* Caching is built in: identical (hw, layer, mapping) queries are computed
  once, while the simulated clock is still charged per call — mirroring a
  real deployment where the estimator service is invoked each time.  The
  cache is a bounded LRU (``cache_capacity``) so a multi-day search cannot
  grow it without limit; evictions are counted.
* Observability: every engine owns (or shares) a
  :class:`~repro.utils.metrics.MetricsRegistry`; queries, cache
  hits/misses/evictions, and real compute latency are recorded there and
  surfaced by the REST service's ``GET /metrics`` endpoint.

Engines are thread-safe for concurrent queries: the REST server handles
requests from a thread pool and the ``thread`` job-runner backend drives
several mapping searches against one shared engine.

The cycle-accurate engine for the Ascend-like platform lives in
:mod:`repro.camodel.engine` and implements the same contract.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.mapping.gemm_mapping import GemmMapping, NetworkMapping

from repro.costmodel.maestro import (
    LayerPPA,
    NetworkPPA,
    analyze_gemm,
    evaluate_network,
    spatial_area_mm2,
)
from repro.costmodel.maestro_batch import analyze_gemm_batch
from repro.costmodel.technology import DEFAULT_TECHNOLOGY, Technology
from repro.errors import ConfigurationError, EvaluationError
from repro.hw.spatial import SpatialHWConfig
from repro.obs.trace import NULL_TRACER
from repro.utils.clock import SimulatedClock
from repro.utils.metrics import (
    DEFAULT_BATCH_SIZE_BOUNDS,
    PER_ITEM_LATENCY_BOUNDS,
    MetricsRegistry,
)
from repro.workloads.layers import GemmShape
from repro.workloads.network import Network

#: Modeled evaluation wall-clock (seconds) per analytical layer query.
#: The MAESTRO call itself is milliseconds, but one mapping-candidate
#: evaluation in the HASCO/FlexTensor pipeline also pays schedule
#: concretization and tool overhead; 5 s/query puts the end-to-end search
#: costs of every method in the range Tables 1-2 report (tens of hours).
ANALYTICAL_EVAL_COST_S = 5.0

#: Default bound on the (hw, layer, mapping) result cache.  Generous enough
#: that no single co-search in the test/bench suites evicts, small enough
#: that a long-running service cannot grow without limit.
DEFAULT_CACHE_CAPACITY = 100_000


class PPAEngine(ABC):
    """Estimation service bound to a single workload.

    Subclasses must implement :meth:`evaluate_layer`; network-level
    aggregation, caching and clock charging are shared.
    """

    def __init__(
        self,
        network: Network,
        clock: Optional[SimulatedClock] = None,
        eval_cost_s: float = ANALYTICAL_EVAL_COST_S,
        tech: Technology = DEFAULT_TECHNOLOGY,
        cache_capacity: Optional[int] = DEFAULT_CACHE_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if cache_capacity is not None and cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1 or None, got {cache_capacity}"
            )
        self.network = network
        self.clock = clock if clock is not None else SimulatedClock()
        self.eval_cost_s = eval_cost_s
        self.tech = tech
        self.layer_shapes: Dict[str, Tuple[GemmShape, int]] = {
            layer.name: (layer.to_gemm(), layer.count) for layer in network.layers
        }
        #: bounded LRU over (hw_key, layer, mapping_key); None = unbounded
        self.cache_capacity = cache_capacity
        self._cache: "OrderedDict[Tuple, LayerPPA]" = OrderedDict()
        self._lock = threading.RLock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.num_queries = 0
        self.num_cache_hits = 0
        self.num_cache_evictions = 0
        #: batch-path accounting: calls to :meth:`evaluate_candidates` and
        #: the candidates they carried (for the mean batch size)
        self.num_batch_queries = 0
        self.num_batch_items = 0
        #: when False, a co-optimizer owns wall-clock accounting (e.g. to
        #: model parallel workers) and the engine only counts queries.
        self.charge_clock = True
        #: span tracer; the shared :data:`~repro.obs.trace.NULL_TRACER` by
        #: default, so untraced queries pay one attribute check.
        self.tracer = NULL_TRACER
        #: optional ``sink(hw, layer_name, mapping, shape, result)`` invoked
        #: once per *computed* (cache-miss) candidate — the opt-in source of
        #: ``engine_sample`` journal events for learned-model training.
        #: Cache hits are skipped: they would only duplicate a sample the
        #: sink already saw.
        self.sample_sink = None

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> Dict:
        """Process-backend support: engine copies travel to worker processes.

        Live observers stay behind: the lock is recreated on unpickle, the
        tracer resets to the null tracer and the sample sink to ``None``
        (both may hold open journal file handles), and the LRU cache ships
        *empty* — a child recomputes what it needs (engines are
        deterministic, so every value is bit-identical either way) instead
        of paying O(cache) pickling for every dispatched trial.  The
        shared cache lives server-side in a PPA-service fleet, which is
        the deployment that pairs with process-parallel rounds.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        state["_cache"] = OrderedDict()
        state["tracer"] = None
        state["sample_sink"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        if self.tracer is None:
            self.tracer = NULL_TRACER

    def absorb_external_queries(self, count: int) -> None:
        """Fold query counts earned by a process-backend round back in.

        Worker processes run trials against pickled engine *copies*; their
        per-trial deltas come back with the trial results and land here,
        so ``num_queries`` (and the matching counter) equals the serial
        backend's count exactly.  Cache statistics are intentionally not
        merged — the children's caches are their own.
        """
        if count <= 0:
            return
        with self._lock:
            self.num_queries += count
        self.metrics.counter("engine_queries_total").inc(count)

    # -- subclass contract ----------------------------------------------------
    @abstractmethod
    def _compute_layer(
        self, hw, mapping: "GemmMapping", shape: GemmShape
    ) -> LayerPPA:
        """Uncached single-layer analysis."""

    @abstractmethod
    def area_mm2(self, hw) -> float:
        """Silicon area of a hardware configuration."""

    def _compute_layer_by_name(
        self, hw, mapping: "GemmMapping", layer_name: str, shape: GemmShape
    ) -> LayerPPA:
        """Name-aware computation hook (remote engines dispatch by name)."""
        return self._compute_layer(hw, mapping, shape)

    def _compute_layer_batch(
        self,
        hw,
        mappings: Sequence["GemmMapping"],
        layer_name: str,
        shape: GemmShape,
    ) -> Optional[List[LayerPPA]]:
        """Uncached vectorized batch analysis, ordered like ``mappings``.

        Engines without a batch kernel return ``None`` and
        :meth:`evaluate_candidates` falls back to a scalar loop.
        """
        return None

    def hw_key(self, hw) -> Tuple:
        """Hashable identity of a hardware config (for the cache)."""
        return tuple(sorted(vars(hw).items()))

    # -- cache / accounting helpers ---------------------------------------------
    def _charge_query(self, layer_name: str) -> GemmShape:
        """Validate the layer, count the query, charge the clock."""
        if layer_name not in self.layer_shapes:
            raise EvaluationError(
                f"layer {layer_name!r} not in workload {self.network.name!r}"
            )
        shape, _count = self.layer_shapes[layer_name]
        with self._lock:
            self.num_queries += 1
        self.metrics.counter("engine_queries_total").inc()
        if self.charge_clock:
            self.clock.advance(self.eval_cost_s, label="ppa-eval")
        return shape

    def _cache_lookup(self, key: Tuple, count: bool = True) -> Optional[LayerPPA]:
        """LRU lookup; refreshes recency, optionally counts hit/miss stats."""
        with self._lock:
            result = self._cache.get(key)
            if result is not None:
                self._cache.move_to_end(key)
                if count:
                    self.num_cache_hits += 1
            if count:
                name = (
                    "engine_cache_hits_total"
                    if result is not None
                    else "engine_cache_misses_total"
                )
                self.metrics.counter(name).inc()
            return result

    def _cache_store(self, key: Tuple, result: LayerPPA) -> None:
        """Insert into the LRU, evicting oldest entries past capacity."""
        with self._lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            if self.cache_capacity is not None:
                while len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
                    self.num_cache_evictions += 1
                    self.metrics.counter("engine_cache_evictions_total").inc()

    def _timed_compute(
        self, hw, mapping: "GemmMapping", layer_name: str, shape: GemmShape
    ) -> LayerPPA:
        """Run the uncached computation, recording real latency."""
        start = time.perf_counter()
        result = self._compute_layer_by_name(hw, mapping, layer_name, shape)
        self.metrics.histogram("engine_compute_seconds").observe(
            time.perf_counter() - start
        )
        return result

    # -- service API ------------------------------------------------------------
    def evaluate_layer(self, hw, mapping: "GemmMapping", layer_name: str) -> LayerPPA:
        """Evaluate one layer; charges the clock, caches the computation."""
        # tracing uses the leaf fast path (tracer.record_leaf): this method
        # runs hundreds of thousands of times per search, and the full span
        # context manager costs several microseconds per call.  Untraced
        # queries pay only the ``tracer.enabled`` checks.
        tracer = self.tracer
        if tracer.enabled:
            clock = tracer.clock
            sim_start = clock.now_s if clock is not None else 0.0
            wall_start = time.perf_counter()
        shape = self._charge_query(layer_name)
        key = (self.hw_key(hw), layer_name, mapping.key())
        cached = self._cache_lookup(key)
        if cached is not None:
            if tracer.enabled:
                tracer.record_leaf(
                    "engine_eval", wall_start, sim_start,
                    layer=layer_name, cache_hit=True,
                )
            return cached
        result = self._timed_compute(hw, mapping, layer_name, shape)
        self._cache_store(key, result)
        if self.sample_sink is not None:
            self.sample_sink(hw, layer_name, mapping, shape, result)
        if tracer.enabled:
            tracer.record_leaf(
                "engine_eval", wall_start, sim_start,
                layer=layer_name, cache_hit=False,
            )
        return result

    def evaluate_layers(
        self, hw, requests: Sequence[Tuple["GemmMapping", str]]
    ) -> List[LayerPPA]:
        """Evaluate a batch of ``(mapping, layer_name)`` queries in order.

        Semantically identical to calling :meth:`evaluate_layer` per item
        (each item counts one query and charges one evaluation); remote
        engines override this to amortize HTTP round trips.
        """
        return [
            self.evaluate_layer(hw, mapping, layer_name)
            for mapping, layer_name in requests
        ]

    def evaluate_candidates(
        self, hw, layer_name: str, mappings: Sequence["GemmMapping"]
    ) -> List[LayerPPA]:
        """Evaluate B candidate mappings of one layer in a single pass.

        Query semantics match B :meth:`evaluate_layer` calls item for item:
        each candidate counts one query, charges one evaluation on the
        simulated clock, and hits or misses the LRU individually
        (within-batch duplicates of a missing key count as hits, mirroring
        the sequential order: first occurrence computes, the rest reuse).
        Only the misses reach the cost model — through the vectorized
        :meth:`_compute_layer_batch` kernel when the engine has one,
        otherwise through a scalar fallback loop — so an all-cache-hit
        batch records no compute time at all.
        """
        mappings = list(mappings)
        if self.tracer.enabled:
            with self.tracer.span(
                "engine_eval_batch", layer=layer_name, batch=len(mappings)
            ):
                return self._evaluate_candidates_impl(hw, layer_name, mappings)
        return self._evaluate_candidates_impl(hw, layer_name, mappings)

    def _evaluate_candidates_impl(
        self, hw, layer_name: str, mappings: List["GemmMapping"]
    ) -> List[LayerPPA]:
        """Untraced body of :meth:`evaluate_candidates`."""
        if layer_name not in self.layer_shapes:
            raise EvaluationError(
                f"layer {layer_name!r} not in workload {self.network.name!r}"
            )
        if not mappings:
            return []
        shape, _count = self.layer_shapes[layer_name]
        batch = len(mappings)
        with self._lock:
            self.num_queries += batch
            self.num_batch_queries += 1
            self.num_batch_items += batch
        self.metrics.counter("engine_queries_total").inc(batch)
        self.metrics.counter("engine_batch_queries_total").inc()
        self.metrics.histogram(
            "engine_batch_size", DEFAULT_BATCH_SIZE_BOUNDS
        ).observe(batch)
        if self.charge_clock:
            self.clock.advance(self.eval_cost_s * batch, label="ppa-eval")
        hw_id = self.hw_key(hw)
        results: List[Optional[LayerPPA]] = [None] * batch
        miss_keys: List[Tuple] = []
        miss_mappings: List["GemmMapping"] = []
        miss_positions: Dict[Tuple, List[int]] = {}
        for index, mapping in enumerate(mappings):
            key = (hw_id, layer_name, mapping.key())
            if key in miss_positions:
                miss_positions[key].append(index)
                with self._lock:
                    self.num_cache_hits += 1
                self.metrics.counter("engine_cache_hits_total").inc()
                continue
            cached = self._cache_lookup(key)
            if cached is not None:
                results[index] = cached
            else:
                miss_positions[key] = [index]
                miss_keys.append(key)
                miss_mappings.append(mapping)
        if miss_mappings:
            start = time.perf_counter()
            computed = self._compute_layer_batch(
                hw, miss_mappings, layer_name, shape
            )
            if computed is None:
                computed = [
                    self._compute_layer_by_name(hw, mapping, layer_name, shape)
                    for mapping in miss_mappings
                ]
            elapsed = time.perf_counter() - start
            self.metrics.histogram("engine_compute_seconds").observe(elapsed)
            self.metrics.histogram(
                "engine_batch_compute_seconds_per_item", PER_ITEM_LATENCY_BOUNDS
            ).observe(elapsed / len(miss_mappings))
            for key, mapping, result in zip(miss_keys, miss_mappings, computed):
                self._cache_store(key, result)
                if self.sample_sink is not None:
                    self.sample_sink(hw, layer_name, mapping, shape, result)
                for index in miss_positions[key]:
                    results[index] = result
        return results

    def evaluate_network(self, hw, mappings: "NetworkMapping") -> NetworkPPA:
        """Evaluate a complete per-layer mapping (charges one eval per layer)."""
        for layer_name in self.layer_shapes:
            if layer_name in mappings:
                self.evaluate_layer(hw, mappings[layer_name], layer_name)
        return self.aggregate(hw, mappings)

    def aggregate(self, hw, mappings: "NetworkMapping") -> NetworkPPA:
        """Combine cached layer results without charging the clock."""
        area = self.area_mm2(hw)
        total_latency = 0.0
        total_energy = 0.0
        feasible = True
        layer_results: Dict[str, LayerPPA] = {}
        for name, (shape, count) in self.layer_shapes.items():
            mapping = mappings.get(name)
            if mapping is None:
                feasible = False
                continue
            key = (self.hw_key(hw), name, mapping.key())
            result = self._cache_lookup(key, count=False)
            if result is None:
                result = self._timed_compute(hw, mapping, name, shape)
                self._cache_store(key, result)
            layer_results[name] = result
            if not result.feasible:
                feasible = False
                continue
            total_latency += count * result.latency_s
            total_energy += count * result.energy_j
        if not feasible or total_latency <= 0.0:
            return NetworkPPA(
                latency_s=float("inf"),
                energy_j=float("inf"),
                power_w=float("inf"),
                area_mm2=area,
                feasible=False,
                layer_results=layer_results,
            )
        power = total_energy / total_latency + self.tech.leakage_w_per_mm2 * area
        return NetworkPPA(
            latency_s=total_latency,
            energy_j=total_energy,
            power_w=power,
            area_mm2=area,
            feasible=True,
            layer_results=layer_results,
        )

    @property
    def cache_hit_rate(self) -> float:
        if self.num_queries == 0:
            return 0.0
        return self.num_cache_hits / self.num_queries

    @property
    def mean_batch_size(self) -> float:
        if self.num_batch_queries == 0:
            return 0.0
        return self.num_batch_items / self.num_batch_queries

    def stats(self) -> Dict:
        """Operational statistics for ``GET /metrics`` / ``repro stats``."""
        return {
            "engine": type(self).__name__,
            "workload": self.network.name,
            "num_queries": self.num_queries,
            "num_cache_hits": self.num_cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "num_cache_evictions": self.num_cache_evictions,
            "cache_size": len(self._cache),
            "cache_capacity": self.cache_capacity,
            "batch_queries": self.num_batch_queries,
            "batch_items": self.num_batch_items,
            "mean_batch_size": self.mean_batch_size,
        }


class MaestroEngine(PPAEngine):
    """Analytical engine for the open-source spatial accelerator."""

    def _compute_layer(
        self, hw: SpatialHWConfig, mapping: "GemmMapping", shape: GemmShape
    ) -> LayerPPA:
        return analyze_gemm(hw, mapping, shape, self.tech)

    def _compute_layer_batch(
        self,
        hw: SpatialHWConfig,
        mappings: Sequence["GemmMapping"],
        layer_name: str,
        shape: GemmShape,
    ) -> List[LayerPPA]:
        return analyze_gemm_batch(hw, mappings, shape, self.tech)

    def area_mm2(self, hw: SpatialHWConfig) -> float:
        return spatial_area_mm2(hw, self.tech)


__all__ = [
    "ANALYTICAL_EVAL_COST_S",
    "DEFAULT_CACHE_CAPACITY",
    "PPAEngine",
    "MaestroEngine",
    "LayerPPA",
    "NetworkPPA",
    "evaluate_network",
]
