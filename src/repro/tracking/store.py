"""Persistent run directories: the ``RunStore`` and its ``RunHandle``\\ s.

Layout (one directory per tracked run)::

    runs/
      20260805-143015-unico-resnet50-s0/
        manifest.json          # who/what/how: method, workload, seed, ...
        journal.jsonl          # append-only event journal
        checkpoints/
          ckpt-000002.json     # codec of repro.core.checkpoint, v2
          ckpt-000004.json

The manifest is the run's identity card — everything needed to rebuild
the optimizer for resume (method, scenario, workload, preset, seed, time
budget) plus provenance (code version, engine class, design-space name)
and a coarse lifecycle ``status``: ``created`` → ``running`` →
``completed`` / ``failed``.  A run found still ``running`` on disk while
no process owns it was interrupted — exactly the case ``repro runs
resume`` exists for.

Manifest writes go through a temp file + ``os.replace`` so a crash never
leaves a half-written manifest; checkpoints use the same pattern.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
from typing import Dict, List, Optional, Union

from repro.errors import TrackingError
from repro.version import __version__

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_DIR = "checkpoints"

#: Lifecycle states recorded in ``manifest.json``.  ``queued`` and
#: ``cancelled`` belong to hub-scheduled runs (:mod:`repro.hub.scheduler`):
#: queued runs sit in the scheduler's FIFO awaiting the single worker,
#: cancelled is the terminal state of an operator ``POST /runs/<id>/cancel``.
RUN_STATUSES = ("created", "queued", "running", "completed", "failed", "cancelled")

_CKPT_PATTERN = re.compile(r"^ckpt-(\d{6})\.json$")
_ID_SANITIZE = re.compile(r"[^A-Za-z0-9_.+-]+")


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunHandle:
    """One run directory: manifest access, journal path, checkpoints."""

    def __init__(self, directory: Union[str, pathlib.Path]):
        self.dir = pathlib.Path(directory)
        if not self.dir.is_dir():
            raise TrackingError(f"run directory {self.dir} does not exist")

    @property
    def run_id(self) -> str:
        return self.dir.name

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.dir / MANIFEST_NAME

    @property
    def journal_path(self) -> pathlib.Path:
        return self.dir / JOURNAL_NAME

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.dir / CHECKPOINT_DIR

    # ---------------------------------------------------------------- manifest
    def read_manifest(self) -> Dict:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise TrackingError(f"run {self.run_id} has no {MANIFEST_NAME}")
        except json.JSONDecodeError as error:
            raise TrackingError(
                f"run {self.run_id} has a corrupt manifest: {error}"
            )

    def write_manifest(self, manifest: Dict) -> None:
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True)
        )

    def update_manifest(self, **fields) -> Dict:
        manifest = self.read_manifest()
        manifest.update(fields)
        self.write_manifest(manifest)
        return manifest

    @property
    def status(self) -> str:
        return str(self.read_manifest().get("status", "created"))

    def set_status(self, status: str, **extra) -> None:
        if status not in RUN_STATUSES:
            raise TrackingError(
                f"unknown status {status!r}; use one of {RUN_STATUSES}"
            )
        self.update_manifest(status=status, **extra)

    # -------------------------------------------------------------- checkpoints
    def checkpoint_path(self, completed_iterations: int) -> pathlib.Path:
        return self.checkpoint_dir / f"ckpt-{completed_iterations:06d}.json"

    def checkpoints(self) -> List[pathlib.Path]:
        """Checkpoint files ordered by completed-iteration count."""
        if not self.checkpoint_dir.is_dir():
            return []
        found = []
        for path in self.checkpoint_dir.iterdir():
            match = _CKPT_PATTERN.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    def latest_checkpoint(self) -> Optional[pathlib.Path]:
        checkpoints = self.checkpoints()
        return checkpoints[-1] if checkpoints else None

    def prune_checkpoints(self, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` checkpoints."""
        if keep_last < 1:
            raise TrackingError(f"keep_last must be >= 1, got {keep_last}")
        checkpoints = self.checkpoints()
        removed = 0
        for path in checkpoints[:-keep_last]:
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunHandle({self.run_id!r})"


class RunStore:
    """Owns the ``runs/`` root: creates, lists and fetches run directories."""

    def __init__(self, root: Union[str, pathlib.Path] = "runs"):
        self.root = pathlib.Path(root)

    def create_run(
        self, manifest: Optional[Dict] = None, run_id: Optional[str] = None
    ) -> RunHandle:
        """Allocate a fresh run directory and write its initial manifest.

        ``run_id`` defaults to ``<utc-timestamp>-<method>-<workload>-s<seed>``
        built from the manifest; collisions get a numeric suffix.
        """
        manifest = dict(manifest or {})
        base_id = _sanitize_id(run_id) if run_id else _default_id(manifest)
        self.root.mkdir(parents=True, exist_ok=True)
        chosen = base_id
        for attempt in range(1, 1000):
            try:
                (self.root / chosen).mkdir()
                break
            except FileExistsError:
                chosen = f"{base_id}-{attempt}"
        else:  # pragma: no cover - pathological collision storm
            raise TrackingError(f"cannot allocate a run id from {base_id!r}")
        run_dir = self.root / chosen
        (run_dir / CHECKPOINT_DIR).mkdir()
        manifest.setdefault("run_id", chosen)
        manifest["run_id"] = chosen
        manifest.setdefault("created_at", _utc_now())
        manifest.setdefault("status", "created")
        manifest.setdefault("code_version", __version__)
        handle = RunHandle(run_dir)
        handle.write_manifest(manifest)
        return handle

    def get(self, run_id: str) -> RunHandle:
        path = self.root / run_id
        if not path.is_dir():
            known = ", ".join(h.run_id for h in self.list_runs()) or "none"
            raise TrackingError(
                f"no run {run_id!r} under {self.root} (known runs: {known})"
            )
        return RunHandle(path)

    def list_runs(self) -> List[RunHandle]:
        """Every run directory under the root, oldest first."""
        if not self.root.is_dir():
            return []
        handles = [
            RunHandle(path)
            for path in self.root.iterdir()
            if path.is_dir() and (path / MANIFEST_NAME).exists()
        ]
        return sorted(
            handles,
            key=lambda h: (h.read_manifest().get("created_at", ""), h.run_id),
        )


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _sanitize_id(raw: str) -> str:
    cleaned = _ID_SANITIZE.sub("-", raw.strip()).strip("-")
    if not cleaned:
        raise TrackingError(f"run id {raw!r} has no usable characters")
    return cleaned


def _default_id(manifest: Dict) -> str:
    parts = [time.strftime("%Y%m%d-%H%M%S", time.gmtime())]
    for key in ("method", "workload"):
        value = manifest.get(key)
        if isinstance(value, (list, tuple)):
            value = "+".join(str(v) for v in value)
        if value:
            parts.append(str(value))
    if "seed" in manifest:
        parts.append(f"s{manifest['seed']}")
    return _sanitize_id("-".join(parts))


__all__ = [
    "CHECKPOINT_DIR",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "RUN_STATUSES",
    "RunHandle",
    "RunStore",
    "atomic_write_text",
]
