"""Multi-objective quality indicators beyond hypervolume.

Hypervolume (the paper's metric) is reference-point sensitive; evaluation
practice pairs it with complementary indicators, all provided here for the
experiment records and the extension studies:

* **IGD** (inverted generational distance) — mean distance from reference-
  front points to the achieved front; measures convergence *and* coverage.
* **GD** (generational distance) — mean distance from achieved points to
  the reference front; pure convergence.
* **spacing** — standard deviation of nearest-neighbor gaps along the
  front; measures distribution uniformity.
* **coverage** (Zitzler's C-metric) — fraction of B's points weakly
  dominated by some point of A; a direct pairwise comparison.

All follow the minimization convention and operate on raw objective
matrices (normalize first when units differ).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.optim.pareto import dominates


def _pairwise_min_distances(from_points: np.ndarray, to_points: np.ndarray) -> np.ndarray:
    """Min Euclidean distance from each row of ``from_points`` to ``to_points``."""
    if to_points.shape[0] == 0:
        return np.full(from_points.shape[0], np.inf)
    diff = from_points[:, None, :] - to_points[None, :, :]
    return np.sqrt(np.sum(diff**2, axis=2)).min(axis=1)


def _clean(points: np.ndarray) -> np.ndarray:
    points = np.atleast_2d(np.asarray(points, dtype=float))
    finite = np.all(np.isfinite(points), axis=1)
    return points[finite]


def generational_distance(achieved: np.ndarray, reference: np.ndarray) -> float:
    """GD: mean distance from achieved points to the reference front."""
    achieved = _clean(achieved)
    reference = _clean(reference)
    if achieved.shape[0] == 0:
        return float("inf")
    return float(_pairwise_min_distances(achieved, reference).mean())


def inverted_generational_distance(
    achieved: np.ndarray, reference: np.ndarray
) -> float:
    """IGD: mean distance from reference points to the achieved front."""
    achieved = _clean(achieved)
    reference = _clean(reference)
    if reference.shape[0] == 0:
        raise ValueError("reference front must contain finite points")
    return float(_pairwise_min_distances(reference, achieved).mean())


def spacing(front: np.ndarray) -> float:
    """Schott's spacing: std of nearest-neighbor distances (0 = uniform)."""
    front = _clean(front)
    n = front.shape[0]
    if n < 2:
        return 0.0
    diff = front[:, None, :] - front[None, :, :]
    distance = np.sqrt(np.sum(diff**2, axis=2))
    distance[np.diag_indices_from(distance)] = np.inf
    nearest = distance.min(axis=1)
    return float(nearest.std())


def coverage(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """C(A, B): fraction of B weakly dominated by at least one point of A."""
    front_a = _clean(front_a)
    front_b = _clean(front_b)
    if front_b.shape[0] == 0:
        return 0.0
    covered = 0
    for b in front_b:
        for a in front_a:
            if dominates(a, b) or np.array_equal(a, b):
                covered += 1
                break
    return covered / front_b.shape[0]


def epsilon_indicator(achieved: np.ndarray, reference: np.ndarray) -> float:
    """Additive epsilon: smallest shift making ``achieved`` weakly dominate
    every reference point (0 = achieved matches/beats the reference)."""
    achieved = _clean(achieved)
    reference = _clean(reference)
    if achieved.shape[0] == 0:
        return float("inf")
    # for each reference point: the best achievable max-coordinate excess
    diff = achieved[:, None, :] - reference[None, :, :]
    per_pair = diff.max(axis=2)  # max over objectives
    per_reference = per_pair.min(axis=0)  # best achieved point per reference
    return float(max(0.0, per_reference.max()))
